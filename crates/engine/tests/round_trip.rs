//! Persistence round-trips over the crosscheck CNF corpus.
//!
//! The same 50-instance random corpus the compiler's crosscheck suite uses
//! (same generator, same seed) is compiled and pushed through both
//! persistence paths — binary serialize→deserialize and `.nnf` text
//! export→import — and every query the engine serves (`model_count`, `wmc`,
//! `wmc_marginals`) must come back **exactly** equal: both formats preserve
//! the arena node-for-node, so even the floating-point answers are
//! bit-identical.

use trl_compiler::DecisionDnnfCompiler;
use trl_core::{SplitMix64, Var};
use trl_engine::{read_binary, read_nnf, write_binary, write_nnf, Validation};
use trl_nnf::{Circuit, LitWeights};
use trl_prop::gen::random_cnf;

fn binary_round_trip(c: &Circuit) -> Circuit {
    let mut bytes = Vec::new();
    write_binary(c, &mut bytes).expect("serialize");
    read_binary(&mut bytes.as_slice(), Validation::Full).expect("deserialize")
}

fn text_round_trip(c: &Circuit) -> Circuit {
    read_nnf(&write_nnf(c), Validation::Full).expect("import")
}

fn skewed_weights(num_vars: usize, rng: &mut SplitMix64) -> LitWeights {
    let mut w = LitWeights::unit(num_vars);
    for v in 0..num_vars as u32 {
        let p = 0.05 + 0.9 * rng.uniform();
        w.set(Var(v).positive(), p);
        w.set(Var(v).negative(), 1.0 - p);
    }
    w
}

#[test]
fn crosscheck_corpus_round_trips_exactly() {
    // Same corpus shape as crates/compiler/tests/crosscheck.rs.
    let mut rng = SplitMix64::new(0x5eed_c0de);
    let mut weight_rng = SplitMix64::new(0xbead_feed);
    for i in 0..50 {
        let n = 4 + (i % 10);
        let m = 2 + ((i * 7) % (3 * n + 4));
        let cnf = random_cnf(&mut rng, n, m, 4);
        let label = format!("random_cnf #{i} (n={n}, m={m})");

        let original = DecisionDnnfCompiler::default().compile(&cnf);
        let w = skewed_weights(n, &mut weight_rng);
        let expected_count = original.model_count();
        let expected_wmc = original.wmc(&w);
        let expected_marginals = original.wmc_marginals(&w);

        for (path, restored) in [
            ("binary", binary_round_trip(&original)),
            ("text", text_round_trip(&original)),
        ] {
            assert_eq!(
                restored.model_count(),
                expected_count,
                "{label}: model_count via {path}"
            );
            // Node-exact restoration makes the float pipelines identical,
            // so exact equality is the right assertion — any tolerance
            // would mask a format bug.
            assert_eq!(restored.wmc(&w), expected_wmc, "{label}: wmc via {path}");
            assert_eq!(
                restored.wmc_marginals(&w),
                expected_marginals,
                "{label}: wmc_marginals via {path}"
            );
        }
    }
}

#[test]
fn smoothed_circuits_round_trip_too() {
    // Serving artifacts may be persisted post-smoothing; the formats must
    // not collapse the smoothing gadgets.
    let mut rng = SplitMix64::new(0xabcd);
    for i in 0..10 {
        let n = 5 + (i % 6);
        let cnf = random_cnf(&mut rng, n, 2 * n, 3);
        let smoothed = trl_nnf::smooth(&DecisionDnnfCompiler::default().compile(&cnf));
        for restored in [binary_round_trip(&smoothed), text_round_trip(&smoothed)] {
            assert!(trl_nnf::properties::is_smooth(&restored), "instance {i}");
            // Text export drops dead arena entries; everything reachable
            // (gadgets included) survives, so counts can only shrink.
            assert!(restored.node_count() <= smoothed.node_count());
            assert_eq!(
                restored.model_count_presmoothed(),
                smoothed.model_count_presmoothed()
            );
        }
    }
}

#[test]
fn every_flipped_byte_is_detected_or_harmless() {
    // Exhaustive single-byte corruption of a small artifact: each flip must
    // either fail loading with a typed error (the common case: checksums)
    // or — never — load successfully yet answer differently.
    let cnf = trl_prop::Cnf::parse_dimacs("p cnf 4 3\n1 2 0\n-1 3 0\n-2 -4 0\n").unwrap();
    let c = DecisionDnnfCompiler::default().compile(&cnf);
    let expected = c.model_count();
    let mut bytes = Vec::new();
    write_binary(&c, &mut bytes).expect("serialize");
    for at in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[at] ^= 0x40;
        if let Ok(loaded) = read_binary(&mut corrupt.as_slice(), Validation::Full) {
            assert_eq!(
                loaded.model_count(),
                expected,
                "byte {at}: corruption loaded and changed the answer"
            );
        }
    }
}
