//! Property-based tests (proptest) over the core invariants.

use proptest::prelude::*;
use three_roles::compiler::DecisionDnnfCompiler;
use three_roles::core::{Assignment, Lit, Var};
use three_roles::prop::{Cnf, Formula, TruthTable};
use three_roles::sdd::SddManager;

fn arb_formula(n: u32) -> impl Strategy<Value = Formula> {
    let leaf = (0..n).prop_map(|i| Formula::var(Var(i)));
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.xor(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

fn arb_cnf(n: usize) -> impl Strategy<Value = Cnf> {
    prop::collection::vec(
        prop::collection::vec((0..n as u32, any::<bool>()), 1..4),
        0..8,
    )
    .prop_map(move |clauses| {
        let mut cnf = Cnf::new(n);
        for c in clauses {
            let lits: Vec<Lit> = c.into_iter().map(|(v, s)| Var(v).literal(s)).collect();
            cnf.add_clause(lits);
        }
        cnf
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_count_equals_truth_table(cnf in arb_cnf(5)) {
        let circuit = DecisionDnnfCompiler::default().compile(&cnf);
        let tt = TruthTable::from_cnf(&cnf);
        prop_assert_eq!(circuit.model_count(), tt.count() as u128);
    }

    #[test]
    fn sdd_apply_matches_semantics(f in arb_formula(4)) {
        let mut m = SddManager::balanced(4);
        let r = m.build_formula(&f);
        for code in 0..16u64 {
            let a = Assignment::from_index(code, 4);
            prop_assert_eq!(m.eval(r, &a), f.eval(&a));
        }
    }

    #[test]
    fn sdd_negation_is_complement(f in arb_formula(4)) {
        let mut m = SddManager::balanced(4);
        let r = m.build_formula(&f);
        let nr = m.negate(r);
        let count = m.model_count(r);
        prop_assert_eq!(m.model_count(nr), 16 - count);
        prop_assert_eq!(m.negate(nr), r);
    }

    #[test]
    fn obdd_and_sdd_counts_coincide(f in arb_formula(5)) {
        let mut obdd = three_roles::obdd::Obdd::with_num_vars(5);
        let b = obdd.build_formula(&f);
        let mut sdd = SddManager::balanced(5);
        let s = sdd.build_formula(&f);
        prop_assert_eq!(obdd.count_models(b), sdd.model_count(s));
    }

    #[test]
    fn psdd_probabilities_normalize(f in arb_formula(4)) {
        let mut m = SddManager::balanced(4);
        let r = m.build_formula(&f);
        prop_assume!(r != three_roles::sdd::SddRef::False);
        let p = three_roles::psdd::Psdd::from_sdd(&m, r);
        let total: f64 = (0..16u64)
            .map(|c| p.probability(&Assignment::from_index(c, 4)))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reason_circuit_reasons_are_sufficient_and_minimal(f in arb_formula(4)) {
        let mut m = three_roles::obdd::Obdd::with_num_vars(4);
        let r = m.build_formula(&f);
        prop_assume!(!m.is_terminal(r));
        let tt = TruthTable::from_formula(&f, 4);
        for code in 0..16u64 {
            let x = Assignment::from_index(code, 4);
            let rc = three_roles::xai::ReasonCircuit::new(&mut m, r, &x);
            let got = rc.sufficient_reasons();
            let expected = three_roles::prop::sufficient_reasons(&tt, &x);
            prop_assert_eq!(got, expected);
        }
    }

    #[test]
    fn min_flips_equals_hamming_search(f in arb_formula(4), code in 0..16u64) {
        let mut m = three_roles::obdd::Obdd::with_num_vars(4);
        let r = m.build_formula(&f);
        let x = Assignment::from_index(code, 4);
        let cls = m.eval(r, &x);
        let brute = (0..16u64)
            .map(|c| Assignment::from_index(c, 4))
            .filter(|y| m.eval(r, y) != cls)
            .map(|y| x.hamming_distance(&y) as u32)
            .min();
        prop_assert_eq!(m.min_flips_to(r, &x, !cls), brute);
    }

    #[test]
    fn tseitin_preserves_counts(f in arb_formula(4)) {
        let brute = (0..16u64)
            .filter(|&c| f.eval(&Assignment::from_index(c, 4)))
            .count() as u128;
        let (cnf, _) = f.to_cnf_tseitin(4);
        let circuit = DecisionDnnfCompiler::default().compile(&cnf);
        prop_assert_eq!(circuit.model_count(), brute);
    }
}
