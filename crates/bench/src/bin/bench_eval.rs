//! Evaluation-kernel benchmark: scalar vs. tape vs. lane-batched (portable
//! and explicit-SIMD) vs. layer-parallel WMC sweeps across two circuit
//! size tiers, written to `BENCH_eval.json` at the repository root. Run
//! with `cargo run --release -p trl-bench --bin bench_eval`; pass
//! `--smoke` for the fast CI sanity leg (smaller streams, no-harm floors,
//! no JSON).
//!
//! The scalar baseline is the pre-kernel hot path — one
//! `wmc_presmoothed` arena walk per query on the smoothed circuit, so
//! smoothing cost is already amortized and the comparison isolates the
//! sweep itself. The tape variant runs the same single-query sweep over
//! the contiguous instruction tape; lane batching amortizes one tape scan
//! across `LANES` queries (measured both on the portable forced-scalar
//! backend and on the best detected SIMD backend); layer-parallel fans
//! each dependency layer across the persistent sweep pool. Every variant
//! must answer bit-for-bit identically to scalar, on both tiers and
//! across the crosscheck corpus.
//!
//! The **small** tier is the historical acceptance instance; the
//! **large** tier (~145k tape nodes) is where layer-parallelism has
//! enough per-layer work to amortize its barrier — its gates are
//! parallelism-aware (see `trl_engine::eval_bench`): a ≥1.5x layered win
//! is demanded only on multi-CPU hosts, a no-harm floor otherwise.

use trl_bench::{banner, chained_3cnf, check, random_3cnf, row, section, Rng};
use trl_compiler::DecisionDnnfCompiler;
use trl_engine::{eval_benchmark_tiers, EvalReport, TierSpec};

/// Queries in the full small-tier stream.
const QUERIES_SMALL: usize = 2048;
/// Queries in the full large-tier stream (each query is a ~145k-node
/// sweep, so the stream is shorter).
const QUERIES_LARGE: usize = 256;
/// Queries per tier in the `--smoke` streams.
const SMOKE_QUERIES_SMALL: usize = 256;
const SMOKE_QUERIES_LARGE: usize = 64;
/// Disjoint 3-CNF blocks in the large-tier instance; 600 blocks of
/// `random_3cnf(n=18, m=54)` compile to a tape of ~145k nodes.
const LARGE_COPIES: usize = 600;

fn print_tier(report: &EvalReport, i: usize) {
    let t = &report.tiers[i];
    section(&format!("{} tier: {}", t.name, t.instance));
    row(
        "tape (nodes/layers, build us)",
        format!(
            "{}/{} ({:.0} us)",
            t.tape_nodes, t.tape_layers, t.tape_build_us
        ),
    );
    row("queries", format!("{}", t.queries));
    for v in &t.variants {
        row(
            v.name,
            format!(
                "{:.0} qps ({:.2}x), p50 {:.1} us, p99 {:.1} us{}",
                v.qps,
                v.speedup,
                v.latency.p50_us,
                v.latency.p99_us,
                if v.identical { "" } else { "  [MISMATCH]" }
            ),
        );
    }
    row(
        "derived",
        format!(
            "simd_lane {:.2}x, layered_vs_lane {:.2}x",
            t.simd_lane_speedup(),
            t.layered_vs_lane()
        ),
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "bench_eval",
        "evaluation-kernel throughput: scalar vs tape vs lanes vs layers (BENCH_eval.json)",
        "lane batching, explicit SIMD, and the persistent sweep pool each pay for themselves",
    );

    let small_instance = "random_3cnf(seed=18, n=18, m=54)";
    let small_cnf = random_3cnf(&mut Rng::new(18), 18, 54);
    let large_instance = format!("chained_3cnf(seed=42, copies={LARGE_COPIES}, n=18, m=54)");
    let large_cnf = chained_3cnf(&mut Rng::new(42), LARGE_COPIES, 18, 54);
    let compiler = DecisionDnnfCompiler::default();
    let small_circuit = compiler.compile(&small_cnf);
    let large_circuit = compiler.compile(&large_cnf);

    let layer_threads = std::thread::available_parallelism().map_or(2, |p| p.get().max(2));
    let (q_small, q_large) = if smoke {
        (SMOKE_QUERIES_SMALL, SMOKE_QUERIES_LARGE)
    } else {
        (QUERIES_SMALL, QUERIES_LARGE)
    };
    let tiers = [
        TierSpec {
            name: "small",
            instance: small_instance.to_string(),
            circuit: &small_circuit,
            queries: q_small,
        },
        TierSpec {
            name: "large",
            instance: large_instance,
            circuit: &large_circuit,
            queries: q_large,
        },
    ];
    let report = eval_benchmark_tiers(&tiers, 0x5eed_0003, layer_threads);

    print_tier(&report, 0);
    print_tier(&report, 1);
    section("host");
    row(
        "parallelism / lane backend",
        format!("{} cpus, {}", report.host_parallelism, report.lane_backend),
    );
    row(
        "corpus identity sweep",
        format!(
            "{} instances, identical={}",
            report.corpus_instances, report.corpus_identical
        ),
    );

    section("criteria");
    let mut ok = check(
        "every kernel variant is bit-identical to scalar (both tiers + corpus)",
        report.all_identical(),
    );
    if smoke {
        // CI sanity floors: batching must never lose to scalar, and the
        // layered path must never lose to scalar on the large tier (it
        // regressed to 0.03x there before the persistent pool).
        ok &= check(
            "lane-batched throughput is at least the scalar baseline (small tier)",
            report.lane_batched_speedup() >= 1.0,
        );
        ok &= check(
            "layer-parallel is at least the scalar baseline on the large tier",
            report.tiers[1].speedup_of("layer_parallel") >= 1.0,
        );
    } else {
        ok &= check(
            &format!(
                "lane-batched kernel is >={:.1}x the scalar baseline (small tier)",
                trl_engine::eval_bench::LANE_SPEEDUP_FLOOR
            ),
            report.lane_batched_speedup() >= trl_engine::eval_bench::LANE_SPEEDUP_FLOOR,
        );
        ok &= check(
            &format!(
                "explicit SIMD beats the portable lane kernel ({:.2}x, floor {:.2}x)",
                report.simd_lane_speedup(),
                report.simd_floor()
            ),
            report.simd_lane_speedup() >= report.simd_floor(),
        );
        ok &= check(
            &format!(
                "layer-parallel vs lanes on the large tier ({:.2}x, floor {:.2}x for {} cpus)",
                report.layered_vs_lane_large(),
                report.layered_floor(),
                report.host_parallelism
            ),
            report.layered_vs_lane_large() >= report.layered_floor(),
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_eval.json");
        std::fs::write(path, report.to_json()).expect("write BENCH_eval.json");
        println!("\nwrote {path}");
    }
    std::process::exit(if ok { 0 } else { 1 });
}
