//! E-MAJSAT and MAJMAJSAT on constrained vtrees \[61\].
//!
//! §2.1 of the paper: with the circuit variables split into `Y` and `Z`,
//! E-MAJSAT asks whether some `y` makes the majority of `z` satisfying
//! (prototypical for NP^PP); MAJMAJSAT asks whether the majority of `y` do
//! (prototypical for PP^PP). If the SDD's vtree is *constrained* for `Z|Y`
//! (Fig. 10b — `Y` variables as left leaves along the right spine, node `u`
//! with exactly the `Z` variables terminating it), both reduce to one
//! linear-time traversal:
//!
//! * every spine decision node splits on a `Y`-prime, and all `y` inside a
//!   prime share the same residual function, so per-`y` counts collapse to
//!   per-element recursions;
//! * at node `u` the residual function ranges over `Z` only, where an
//!   ordinary (weighted) model count finishes the job.
//!
//! [`SddManager::spine_expectation`] exposes the general pattern — a
//! weighted sum over `y` of any function of the residual `Z`-circuit —
//! which also powers the same-decision-probability computation in
//! `trl-bayesnet` (D-SDP, the paper's PP^PP-complete example).

use crate::manager::{SddManager, SddRef};
use trl_core::FxHashMap;
use trl_nnf::LitWeights;
use trl_vtree::VtreeNodeId;

impl SddManager {
    /// Checks that `u` is a valid constrained node: reachable from the root
    /// by right children only.
    fn assert_on_spine(&self, u: VtreeNodeId) {
        let mut n = self.vtree().root();
        loop {
            if n == u {
                return;
            }
            if !self.vtree().is_internal(n) {
                panic!("node {u} is not on the right spine of the vtree");
            }
            n = self.vtree().right(n);
        }
    }

    /// `max_y #z : f(y, z)` — the optimization version of E-MAJSAT —
    /// where `Z` are the variables of constrained node `u` and `Y` the
    /// remaining (spine) variables. Linear in the SDD.
    pub fn emajsat_count(&self, f: SddRef, u: VtreeNodeId) -> u128 {
        self.assert_on_spine(u);
        let mut memo: FxHashMap<(SddRef, VtreeNodeId), u128> = FxHashMap::default();
        let mut count_memo = FxHashMap::default();
        self.emaj_rec(f, self.vtree().root(), u, &mut memo, &mut count_memo)
    }

    fn emaj_rec(
        &self,
        f: SddRef,
        v: VtreeNodeId,
        u: VtreeNodeId,
        memo: &mut FxHashMap<(SddRef, VtreeNodeId), u128>,
        count_memo: &mut FxHashMap<SddRef, u128>,
    ) -> u128 {
        if v == u {
            return self.count_in(f, u, count_memo);
        }
        if let Some(&r) = memo.get(&(f, v)) {
            return r;
        }
        let right = self.vtree().right(v);
        let r = match self.vtree_of(f) {
            // Constant or function living below on the spine: no Y decision
            // at this level.
            None => self.emaj_rec(f, right, u, memo, count_memo),
            Some(vf) if vf == v => {
                // Spine decision: the best y picks the best element.
                self.elements(f)
                    .to_vec()
                    .iter()
                    .map(|&(_, s)| self.emaj_rec(s, right, u, memo, count_memo))
                    .max()
                    .expect("decision nodes are non-empty")
            }
            Some(vf) if self.vtree().in_left_subtree(vf, v) => {
                // Pure Y-function at this level: some y satisfies it (it is
                // not ⊥), making the residual ⊤.
                self.emaj_rec(SddRef::True, right, u, memo, count_memo)
            }
            Some(_) => self.emaj_rec(f, right, u, memo, count_memo),
        };
        memo.insert((f, v), r);
        r
    }

    /// `#y : (#z : f(y,z)) ≥ threshold` — the counting version of
    /// MAJMAJSAT — for the constrained node `u`. Linear in the SDD.
    pub fn majmajsat_count(&self, f: SddRef, u: VtreeNodeId, threshold: u128) -> u128 {
        let count_z = move |m: &SddManager, g: SddRef| {
            let mut memo = FxHashMap::default();
            let c = m.count_in(g, u, &mut memo);
            if c >= threshold {
                1.0
            } else {
                0.0
            }
        };
        let w = LitWeights::unit(self.max_var_index() + 1);
        let total = self.spine_expectation(f, u, &w, &count_z);
        total.round() as u128
    }

    /// Decides E-MAJSAT with the strict-majority convention of §2.1:
    /// is there a `y` with more than half the `z` satisfying?
    pub fn emajsat(&self, f: SddRef, u: VtreeNodeId) -> bool {
        let z_count = self.vtree().vars(u).len() as u32;
        self.emajsat_count(f, u) * 2 > 1u128 << z_count
    }

    /// Decides MAJMAJSAT: do the majority of `y` make the majority of `z`
    /// satisfying?
    pub fn majmajsat(&self, f: SddRef, u: VtreeNodeId) -> bool {
        let z_count = self.vtree().vars(u).len() as u32;
        let y_count = (self.vtree().num_vars() - self.vtree().vars(u).len()) as u32;
        let threshold = (1u128 << (z_count - 1)) + 1; // strict majority of z
        self.majmajsat_count(f, u, threshold) * 2 > 1u128 << y_count
    }

    /// Max-product value of `f` over the variables of vtree node `scope`
    /// (MPE-style maximization; weights must be non-negative).
    pub fn max_weight_in(
        &self,
        f: SddRef,
        scope: VtreeNodeId,
        w: &LitWeights,
        memo: &mut FxHashMap<SddRef, f64>,
    ) -> f64 {
        let gap = |mentioned: Option<VtreeNodeId>| -> f64 {
            let mentioned_vars = mentioned
                .map(|m| self.vtree().vars(m).clone())
                .unwrap_or_default();
            self.vtree()
                .vars(scope)
                .difference(&mentioned_vars)
                .iter()
                .map(|v| w.get(v.positive()).max(w.get(v.negative())))
                .product()
        };
        match f {
            SddRef::False => 0.0,
            SddRef::True => gap(None),
            SddRef::Literal(l) => {
                let leaf = self.vtree().leaf_of_var(l.var());
                w.get(l) * gap(Some(leaf))
            }
            SddRef::Decision(_) => {
                let vf = self.vtree_of(f).unwrap();
                let below = if let Some(&c) = memo.get(&f) {
                    c
                } else {
                    let left = self.vtree().left(vf);
                    let right = self.vtree().right(vf);
                    let c = self
                        .elements(f)
                        .to_vec()
                        .iter()
                        .map(|&(p, s)| {
                            let mp = self.max_weight_in(p, left, w, memo);
                            let ms = self.max_weight_in(s, right, w, memo);
                            mp * ms
                        })
                        .fold(0.0f64, f64::max);
                    memo.insert(f, c);
                    c
                };
                below * gap(Some(vf))
            }
        }
    }

    /// `max_y W(y) · WMC_z(f|y)` for the constrained node `u` — the MAP
    /// computation of \[61\] (NP^PP): maximize over the outer (`Y`) block
    /// while weighted-counting the inner (`Z`) block.
    pub fn spine_max_wmc(&self, f: SddRef, u: VtreeNodeId, w: &LitWeights) -> f64 {
        self.assert_on_spine(u);
        let mut memo: FxHashMap<(SddRef, VtreeNodeId), f64> = FxHashMap::default();
        let mut wmc_memo = FxHashMap::default();
        let mut max_memo = FxHashMap::default();
        self.spine_max_rec(
            f,
            self.vtree().root(),
            u,
            w,
            &mut memo,
            &mut wmc_memo,
            &mut max_memo,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn spine_max_rec(
        &self,
        f: SddRef,
        v: VtreeNodeId,
        u: VtreeNodeId,
        w: &LitWeights,
        memo: &mut FxHashMap<(SddRef, VtreeNodeId), f64>,
        wmc_memo: &mut FxHashMap<SddRef, f64>,
        max_memo: &mut FxHashMap<SddRef, f64>,
    ) -> f64 {
        if v == u {
            return self.wmc_in(f, u, w, wmc_memo);
        }
        if let Some(&r) = memo.get(&(f, v)) {
            return r;
        }
        let left = self.vtree().left(v);
        let right = self.vtree().right(v);
        let free_left: f64 = self
            .vtree()
            .vars(left)
            .iter()
            .map(|x| w.get(x.positive()).max(w.get(x.negative())))
            .product();
        let r = match self.vtree_of(f) {
            None => free_left * self.spine_max_rec(f, right, u, w, memo, wmc_memo, max_memo),
            Some(vf) if vf == v => self
                .elements(f)
                .to_vec()
                .iter()
                .map(|&(p, s)| {
                    self.max_weight_in(p, left, w, max_memo)
                        * self.spine_max_rec(s, right, u, w, memo, wmc_memo, max_memo)
                })
                .fold(0.0f64, f64::max),
            Some(vf) if self.vtree().in_left_subtree(vf, v) => {
                // Pure Y-function: the best y satisfies it (residual ⊤)
                // unless ⊥ below beats it — but ⊥ yields 0.
                self.max_weight_in(f, left, w, max_memo)
                    * self.spine_max_rec(SddRef::True, right, u, w, memo, wmc_memo, max_memo)
            }
            Some(_) => free_left * self.spine_max_rec(f, right, u, w, memo, wmc_memo, max_memo),
        };
        memo.insert((f, v), r);
        r
    }

    fn max_var_index(&self) -> usize {
        self.vtree()
            .variable_order()
            .iter()
            .map(|v| v.index())
            .max()
            .unwrap_or(0)
    }

    /// The general constrained-vtree aggregation: computes
    /// `Σ_y W(y) · g(f|y)` where `g` is any function of the residual
    /// `Z`-circuit at node `u` and `W` multiplies the weights of the `y`
    /// literals. With unit weights and `g = [count ≥ T]` this is
    /// MAJMAJSAT's count; with `W = Pr` and `g` a threshold on conditional
    /// probabilities it is the same-decision probability (D-SDP, \[18, 61\]).
    pub fn spine_expectation(
        &self,
        f: SddRef,
        u: VtreeNodeId,
        w: &LitWeights,
        g: &dyn Fn(&SddManager, SddRef) -> f64,
    ) -> f64 {
        self.assert_on_spine(u);
        let mut memo: FxHashMap<(SddRef, VtreeNodeId), f64> = FxHashMap::default();
        let mut wmc_memo = FxHashMap::default();
        self.spine_rec(f, self.vtree().root(), u, w, g, &mut memo, &mut wmc_memo)
    }

    #[allow(clippy::too_many_arguments)]
    fn spine_rec(
        &self,
        f: SddRef,
        v: VtreeNodeId,
        u: VtreeNodeId,
        w: &LitWeights,
        g: &dyn Fn(&SddManager, SddRef) -> f64,
        memo: &mut FxHashMap<(SddRef, VtreeNodeId), f64>,
        wmc_memo: &mut FxHashMap<SddRef, f64>,
    ) -> f64 {
        if v == u {
            return g(self, f);
        }
        if let Some(&r) = memo.get(&(f, v)) {
            return r;
        }
        let left = self.vtree().left(v);
        let right = self.vtree().right(v);
        let left_weight = |m: &SddManager, x: SddRef, wmc_memo: &mut FxHashMap<SddRef, f64>| {
            m.wmc_in(x, left, w, wmc_memo)
        };
        let r = match self.vtree_of(f) {
            None => {
                // Constant: every y at this level contributes.
                let total_left = self.gap_weight(self.vtree().vars(left), &Default::default(), w);
                total_left * self.spine_rec(f, right, u, w, g, memo, wmc_memo)
            }
            Some(vf) if vf == v => self
                .elements(f)
                .to_vec()
                .iter()
                .map(|&(p, s)| {
                    left_weight(self, p, wmc_memo)
                        * self.spine_rec(s, right, u, w, g, memo, wmc_memo)
                })
                .sum(),
            Some(vf) if self.vtree().in_left_subtree(vf, v) => {
                // Pure Y-function: y ⊨ f → residual ⊤; y ⊭ f → residual ⊥.
                let pos = left_weight(self, f, wmc_memo);
                let total = self.gap_weight(self.vtree().vars(left), &Default::default(), w);
                pos * self.spine_rec(SddRef::True, right, u, w, g, memo, wmc_memo)
                    + (total - pos) * self.spine_rec(SddRef::False, right, u, w, g, memo, wmc_memo)
            }
            Some(_) => {
                let total_left = self.gap_weight(self.vtree().vars(left), &Default::default(), w);
                total_left * self.spine_rec(f, right, u, w, g, memo, wmc_memo)
            }
        };
        memo.insert((f, v), r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trl_core::{Assignment, Var};
    use trl_prop::Formula;
    use trl_vtree::Vtree;

    fn v(i: u32) -> Var {
        Var(i)
    }

    /// Brute-force: for each y over `y_vars`, count z over `z_vars` with
    /// f(y,z) true. All variables dense 0..n.
    fn brute_counts(f: &Formula, y_vars: &[Var], z_vars: &[Var], n: usize) -> Vec<u128> {
        let mut out = Vec::new();
        for ycode in 0..1u64 << y_vars.len() {
            let mut count = 0u128;
            for zcode in 0..1u64 << z_vars.len() {
                let mut a = Assignment::all_false(n);
                for (bit, &yv) in y_vars.iter().enumerate() {
                    a.set(yv, ycode >> bit & 1 == 1);
                }
                for (bit, &zv) in z_vars.iter().enumerate() {
                    a.set(zv, zcode >> bit & 1 == 1);
                }
                if f.eval(&a) {
                    count += 1;
                }
            }
            out.push(count);
        }
        out
    }

    fn setup(f: &Formula, y_vars: &[Var], z_vars: &[Var]) -> (SddManager, SddRef, VtreeNodeId) {
        let vt = Vtree::constrained(y_vars, z_vars);
        let z_set: trl_core::VarSet = z_vars.iter().copied().collect();
        let mut m = SddManager::new(vt);
        let r = m.build_formula(f);
        let u = m
            .vtree()
            .constrained_node(&z_set)
            .expect("constrained node");
        (m, r, u)
    }

    #[test]
    fn emajsat_and_majmajsat_match_brute_force() {
        // f over Y = {x0, x1}, Z = {x2, x3, x4}.
        let f = Formula::var(v(0))
            .implies(Formula::var(v(2)).and(Formula::var(v(3))))
            .and(Formula::var(v(1)).or(Formula::var(v(4))));
        let y = [v(0), v(1)];
        let z = [v(2), v(3), v(4)];
        let (m, r, u) = setup(&f, &y, &z);
        let brute = brute_counts(&f, &y, &z, 5);
        let best = *brute.iter().max().unwrap();
        assert_eq!(m.emajsat_count(r, u), best);
        assert_eq!(m.emajsat(r, u), best * 2 > 8);
        for threshold in [1u128, 2, 4, 5, 8] {
            let expected = brute.iter().filter(|&&c| c >= threshold).count() as u128;
            assert_eq!(
                m.majmajsat_count(r, u, threshold),
                expected,
                "threshold {threshold}"
            );
        }
    }

    #[test]
    fn random_formulas_spine_queries_sound() {
        let mut state = 0x55u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10 {
            let ny = 1 + (next() % 3) as usize;
            let nz = 1 + (next() % 3) as usize;
            let n = ny + nz;
            let mut fs: Vec<Formula> = (0..n as u32).map(|i| Formula::var(v(i))).collect();
            for _ in 0..5 {
                let i = (next() % fs.len() as u64) as usize;
                let j = (next() % fs.len() as u64) as usize;
                let g = match next() % 3 {
                    0 => fs[i].clone().and(fs[j].clone()),
                    1 => fs[i].clone().or(fs[j].clone()),
                    _ => fs[i].clone().xor(fs[j].clone()),
                };
                fs.push(g);
            }
            let f = fs.last().unwrap().clone();
            let y: Vec<Var> = (0..ny as u32).map(Var).collect();
            let z: Vec<Var> = (ny as u32..n as u32).map(Var).collect();
            let (m, r, u) = setup(&f, &y, &z);
            let brute = brute_counts(&f, &y, &z, n);
            assert_eq!(m.emajsat_count(r, u), *brute.iter().max().unwrap());
            let t = 1u128 << (nz - 1);
            assert_eq!(
                m.majmajsat_count(r, u, t),
                brute.iter().filter(|&&c| c >= t).count() as u128
            );
        }
    }

    #[test]
    fn spine_expectation_with_weights() {
        // Σ_y Pr(y) [count_z(f|y) ≥ 2] with a non-uniform distribution on Y.
        let f = Formula::var(v(0)).implies(Formula::var(v(1)).and(Formula::var(v(2))));
        let y = [v(0)];
        let z = [v(1), v(2)];
        let (m, r, u) = setup(&f, &y, &z);
        let mut w = LitWeights::unit(3);
        w.set(v(0).positive(), 0.3);
        w.set(v(0).negative(), 0.7);
        // f|y=1 = x1∧x2 (count 1); f|y=0 = ⊤ (count 4).
        let g = |m: &SddManager, s: SddRef| {
            let mut memo = FxHashMap::default();
            if m.count_in(s, u, &mut memo) >= 2 {
                1.0
            } else {
                0.0
            }
        };
        let got = m.spine_expectation(r, u, &w, &g);
        assert!((got - 0.7).abs() < 1e-12, "got {got}");
    }

    #[test]
    fn constants_through_the_spine() {
        let y = [v(0)];
        let z = [v(1)];
        let vt = Vtree::constrained(&y, &z);
        let z_set: trl_core::VarSet = z.iter().copied().collect();
        let m = SddManager::new(vt);
        let u = m.vtree().constrained_node(&z_set).unwrap();
        assert_eq!(m.emajsat_count(SddRef::True, u), 2);
        assert_eq!(m.emajsat_count(SddRef::False, u), 0);
        assert_eq!(m.majmajsat_count(SddRef::True, u, 1), 2);
        assert_eq!(m.majmajsat_count(SddRef::False, u, 1), 0);
    }
}
