//! End-to-end serving of the paper's roles 2 and 3 (ISSUE 7 satellite 4,
//! wire half): learn a PSDD, compile a structured space and a classifier
//! over the wire, then answer one query of every new kind and check each
//! answer is **bit-identical** to what a separate in-process engine
//! computes from the same inputs. The brute-force enumeration crosschecks
//! for the underlying semantics live next to the prepared forms
//! (`trl-psdd`, `trl-spaces`, `trl-xai` serve-module tests); this file
//! pins the wire to the in-process surface.

use std::sync::Arc;

use trl_core::{Assignment, PartialAssignment, Var};
use trl_engine::{Engine, Query};
use trl_nnf::LitWeights;
use trl_prop::Cnf;
use trl_server::{Client, Server, ServerConfig};

/// CNF constraining the PSDD / classifier universe of four variables.
fn sample_cnf() -> Cnf {
    Cnf::parse_dimacs("p cnf 4 3\n1 2 0\n-2 3 0\n-1 4 0\n").unwrap()
}

/// Complete weighted examples over the four-variable universe.
fn sample_dataset() -> Vec<(Assignment, f64)> {
    vec![
        (Assignment::from_values(&[true, false, true, true]), 4.0),
        (Assignment::from_values(&[false, true, true, false]), 2.0),
        (Assignment::from_values(&[true, true, true, true]), 1.0),
        (Assignment::from_values(&[false, true, true, true]), 0.5),
    ]
}

/// Diamond graph: 4 nodes, 5 edges (so the space universe has 5
/// edge-variables), simple paths from node 0 to node 3.
fn sample_graph() -> (u32, Vec<(u32, u32)>, u32, u32) {
    (4, vec![(0, 1), (1, 3), (0, 2), (2, 3), (1, 2)], 0, 3)
}

fn evidence(num_vars: usize, var: u32, value: bool) -> PartialAssignment {
    let mut pa = PartialAssignment::new(num_vars);
    pa.assign(if value {
        Var(var).positive()
    } else {
        Var(var).negative()
    });
    pa
}

#[test]
fn every_role_query_is_bit_identical_over_the_wire() {
    // The served engine and the reference engine are distinct instances;
    // agreement below is determinism of the pipeline, not cache sharing.
    let served = Arc::new(Engine::new(1 << 20, Some(2)));
    let reference = Engine::new(1 << 20, Some(2));
    let handle = Server::bind("127.0.0.1:0", served, ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let cnf = sample_cnf();
    let data = sample_dataset();
    let alpha = 1.0;

    // --- Role 2a: learned PSDD ---------------------------------------
    let learned = client.learn_psdd(&cnf, &data, alpha).unwrap();
    let (ref_key, ref_psdd) = reference.learn_psdd(&cnf, &data, alpha).unwrap();
    assert_eq!(
        learned.key, ref_key,
        "content-keyed fingerprints must agree"
    );
    assert_eq!(learned.num_vars, 4);
    assert_eq!(learned.nodes as usize, ref_psdd.node_count());
    assert_eq!(
        learned.log_likelihood.to_bits(),
        ref_psdd.train_log_likelihood().to_bits()
    );

    let psdd_queries = vec![
        Query::PsddLogLikelihood(data.clone()),
        Query::PsddMarginal(evidence(4, 2, true)),
    ];
    check_queries(&mut client, &reference, learned.key, psdd_queries);

    // --- Role 2b: structured space -----------------------------------
    let (num_nodes, edges, s, t) = sample_graph();
    let space = client.compile_space(num_nodes, &edges, s, t).unwrap();
    let (ref_key, ref_space) = reference
        .compile_space(num_nodes as usize, &edges, s, t)
        .unwrap();
    assert_eq!(space.key, ref_key);
    assert_eq!(space.num_edge_vars, 5);
    assert_eq!(space.nodes as usize, ref_space.node_count());
    assert_eq!(space.paths, ref_space.path_count());

    let mut weights = LitWeights::unit(5);
    weights.set(Var(1).positive(), 3.0);
    weights.set(Var(4).positive(), 0.25);
    let space_queries = vec![
        Query::SpaceCount(evidence(5, 0, true)),
        Query::SpaceTop(weights),
    ];
    check_queries(&mut client, &reference, space.key, space_queries);

    // --- Role 3: classifier explanations -----------------------------
    let classifier = client.compile_classifier(&cnf).unwrap();
    let (ref_key, ref_clf) = reference.compile_classifier(&cnf);
    assert_eq!(classifier.key, ref_key);
    assert_eq!(classifier.num_vars, 4);
    assert_eq!(classifier.nodes as usize, ref_clf.node_count());

    let instance = Assignment::from_values(&[true, false, true, true]);
    let xai_queries = vec![
        Query::SufficientReason(instance.clone()),
        Query::DecisionRobustness(instance),
        Query::ClassifierBias(vec![Var(0), Var(3)]),
    ];
    check_queries(&mut client, &reference, classifier.key, xai_queries);

    // Learning the same PSDD again must hit the registry, not re-learn:
    // the key is content-derived and the artifact is cached.
    let again = client.learn_psdd(&cnf, &data, alpha).unwrap();
    assert_eq!(again, learned);

    handle.shutdown();
}

/// Answers each query over the wire and in-process and asserts equality
/// (exact, including f64 bit patterns via `QueryAnswer`'s `PartialEq`).
fn check_queries(client: &mut Client, reference: &Engine, key: u64, queries: Vec<Query>) {
    let artifact = reference
        .get(key)
        .expect("reference engine should hold the artifact");
    let expected = reference
        .run_artifact_batch(&artifact, queries.clone())
        .unwrap();
    for (query, expect) in queries.into_iter().zip(expected) {
        let wire = client.query(key, query.clone()).unwrap();
        assert_eq!(wire, expect.answer, "{query:?}");
    }
}

#[test]
fn role_queries_against_the_wrong_artifact_kind_are_typed_errors() {
    let served = Arc::new(Engine::new(1 << 20, Some(2)));
    let handle = Server::bind("127.0.0.1:0", served, ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // A circuit artifact must reject role-2/role-3 queries, and a
    // classifier must reject circuit queries — as wire errors, not hangs.
    let compiled = client.compile(&sample_cnf()).unwrap();
    let err = client
        .query(
            compiled.key,
            Query::SufficientReason(Assignment::from_values(&[true; 4])),
        )
        .unwrap_err();
    assert!(
        format!("{err}").contains("artifact"),
        "unexpected error: {err}"
    );

    let classifier = client.compile_classifier(&sample_cnf()).unwrap();
    let err = client.query(classifier.key, Query::ModelCount).unwrap_err();
    assert!(
        format!("{err}").contains("artifact"),
        "unexpected error: {err}"
    );

    handle.shutdown();
}
