//! Serving-facing prepared form of a compiled classifier (role 3 over the
//! wire).
//!
//! [`PreparedClassifier`] freezes a classifier's decision function (given
//! as CNF) into an immutable OBDD artifact: the negation is precomputed at
//! compile time so every explanation query — sufficient reason, decision
//! robustness, classifier bias — takes `&self` and can be answered from an
//! `Arc` by any executor thread without locks.

use crate::explain::ReasonCircuit;
use crate::robustness::decision_robustness;
use trl_core::{Assignment, Cube, Var, VarSet};
use trl_obdd::{BddRef, Obdd};
use trl_prop::Cnf;

/// An immutable compiled classifier and its precomputed negation.
pub struct PreparedClassifier {
    manager: Obdd,
    root: BddRef,
    root_neg: BddRef,
    support: VarSet,
    num_vars: usize,
    node_count: usize,
}

impl PreparedClassifier {
    /// Compiles the decision function into a reduced OBDD over its natural
    /// variable order and precomputes the negation and support.
    pub fn compile(cnf: &Cnf) -> PreparedClassifier {
        let n = cnf.num_vars();
        let mut manager = Obdd::with_num_vars(n);
        let root = manager.build_cnf(cnf);
        let root_neg = manager.not(root);
        let support = manager.support(root);
        let node_count = manager.size(root);
        PreparedClassifier {
            manager,
            root,
            root_neg,
            support,
            num_vars: n,
            node_count,
        }
    }

    /// Number of input features.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Nodes in the compiled diagram (the registry charges this).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The classifier's decision on an instance.
    pub fn decide(&self, x: &Assignment) -> bool {
        self.manager.eval(self.root, x)
    }

    /// The decision and one **shortest sufficient reason** for it: a
    /// minimal set of instance characteristics that alone guarantees the
    /// decision (a prime implicant of `f` — or `¬f` for negative
    /// decisions — consistent with `x`). Deterministic: among shortest
    /// reasons the lexicographically first is returned, so wire and
    /// in-process answers agree bit for bit. `None` only when the target
    /// function is unsatisfiable (no reason exists).
    pub fn sufficient_reason(&self, x: &Assignment) -> (bool, Option<Cube>) {
        let rc = ReasonCircuit::with_negation(&self.manager, self.root, self.root_neg, x);
        let decision = rc.decision();
        // `sufficient_reasons` returns sorted cubes; the first shortest
        // one is therefore deterministic.
        let reason = rc.sufficient_reasons().into_iter().min_by_key(|c| c.len());
        (decision, reason)
    }

    /// Decision robustness at `x`: minimum feature flips that change the
    /// decision, `None` for constant classifiers.
    pub fn robustness(&self, x: &Assignment) -> Option<u32> {
        decision_robustness(&self.manager, self.root, x)
    }

    /// Classifier-level bias against protected features: the classifier is
    /// biased iff it makes a biased decision on *some* instance, which for
    /// a reduced diagram holds exactly when the decision function depends
    /// essentially on a protected feature (\[33\]'s Robin/Scott example:
    /// one unbiased decision does not make an unbiased classifier).
    pub fn is_biased(&self, protected: &[Var]) -> bool {
        protected.iter().any(|v| self.support.contains(*v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trl_core::Lit;

    /// (x1 ∨ x2) ∧ x3 as CNF.
    fn clf() -> PreparedClassifier {
        let mut cnf = Cnf::new(3);
        cnf.add_clause([Lit::new(Var(0), true), Lit::new(Var(1), true)]);
        cnf.add_clause([Lit::new(Var(2), true)]);
        PreparedClassifier::compile(&cnf)
    }

    fn implies(c: &PreparedClassifier, cube: &Cube, target: bool) -> bool {
        // Brute force: every completion of the cube decides `target`.
        (0..1u64 << c.num_vars())
            .map(|code| Assignment::from_index(code, c.num_vars()))
            .filter(|a| cube.consistent_with(a))
            .all(|a| c.decide(&a) == target)
    }

    #[test]
    fn sufficient_reason_is_a_minimal_consistent_implicant() {
        let c = clf();
        for code in 0..1u64 << 3 {
            let x = Assignment::from_index(code, 3);
            let (decision, reason) = c.sufficient_reason(&x);
            assert_eq!(decision, c.decide(&x));
            let reason = reason.expect("non-constant classifier always has a reason");
            assert!(reason.consistent_with(&x), "reason drawn from the instance");
            assert!(
                implies(&c, &reason, decision),
                "reason must trigger the decision"
            );
            // Minimality: dropping any literal breaks the guarantee.
            for drop in reason.literals() {
                let weaker =
                    Cube::from_lits(reason.literals().iter().copied().filter(|l| l != drop));
                assert!(
                    !implies(&c, &weaker, decision),
                    "reason {reason:?} not minimal at {x:?}"
                );
            }
        }
    }

    #[test]
    fn robustness_matches_brute_force_min_flips() {
        let c = clf();
        for code in 0..1u64 << 3 {
            let x = Assignment::from_index(code, 3);
            let d = c.decide(&x);
            let brute = (0..1u64 << 3)
                .map(|other| Assignment::from_index(other, 3))
                .filter(|a| c.decide(a) != d)
                .map(|a| a.hamming_distance(&x) as u32)
                .min();
            assert_eq!(c.robustness(&x), brute);
        }
    }

    #[test]
    fn bias_is_essential_dependence() {
        let c = clf();
        assert!(c.is_biased(&[Var(0)]));
        assert!(c.is_biased(&[Var(2)]));
        assert!(!c.is_biased(&[]));
        // A variable outside the universe of influence: add a 4th feature
        // the function ignores.
        let mut cnf = Cnf::new(4);
        cnf.add_clause([Lit::new(Var(0), true), Lit::new(Var(1), true)]);
        let c4 = PreparedClassifier::compile(&cnf);
        assert!(!c4.is_biased(&[Var(3)]));
        assert!(c4.is_biased(&[Var(1), Var(3)]));
    }
}
