//! E13 — Fig. 28: explaining the decisions of a neural network. A
//! binarized network trained on synthetic digit images is compiled into an
//! OBDD; a correctly classified image gets a sufficient reason touching
//! only a small fraction of the pixels (the paper: 3 of 256 pixels for a
//! 98.74%-accurate CNN).

use trl_bench::{banner, check, row, section};
use trl_xai::images::{digit_dataset, one_prototype, render, PIXELS};
use trl_xai::{Bnn, ReasonCircuit};

fn main() {
    banner(
        "E13",
        "Figure 28 (explaining the decisions of a neural network)",
        "a few pixels suffice to lock the network's classification, found \
         exactly on the compiled circuit",
    );
    let mut all_ok = true;

    section("train a binarized network on 4×4 digit images");
    let train = digit_dataset(60, 0.08, 2024);
    let test = digit_dataset(40, 0.08, 4048);
    let (net, train_acc) = Bnn::train(PIXELS, 3, &train, 11, 8);
    let test_acc =
        test.iter().filter(|(x, y)| net.classify(x) == *y).count() as f64 / test.len() as f64;
    row(
        "training / test accuracy",
        format!("{train_acc:.4} / {test_acc:.4}"),
    );
    all_ok &= check("the network learned the task (test ≥ 0.9)", test_acc >= 0.9);

    section("compile the network (input–output equivalent circuit)");
    let (mut m, f, layers) = net.compile();
    row("output OBDD size", m.size(f));
    row(
        "hidden-neuron OBDD sizes",
        layers[0]
            .iter()
            .map(|&h| m.size(h).to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    // Spot-check equivalence on the datasets (exhaustive equivalence is
    // guaranteed by construction and tested in the crate's unit tests).
    let spot = train
        .iter()
        .chain(&test)
        .all(|(x, _)| m.eval(f, x) == net.classify(x));
    all_ok &= check("circuit agrees with the network on every sample", spot);

    section("explain a correctly classified 'digit 1' image");
    let image = one_prototype();
    let classified = m.eval(f, &image);
    println!("{}", render(&image));
    row("classified as digit 1", classified);
    let rc = ReasonCircuit::new(&mut m, f, &image);
    let reasons = rc.sufficient_reasons();
    let smallest = reasons
        .iter()
        .min_by_key(|r| r.len())
        .expect("decision has at least one reason");
    row("number of sufficient reasons", reasons.len());
    row(
        "smallest sufficient reason",
        format!("{} of {PIXELS} pixels: {smallest}", smallest.len()),
    );
    all_ok &= check(
        "a small fraction of pixels suffices (≤ 1/2 of them)",
        smallest.len() <= PIXELS / 2,
    );

    // The defining property, verified directly: fixing only those pixels
    // forces the classification regardless of all others.
    let forced = {
        let cube = trl_core::Cube::from_lits(smallest.literals().iter().copied());
        let cond = m.condition(f, &cube);
        if classified {
            cond == trl_obdd::Obdd::TRUE
        } else {
            cond == trl_obdd::Obdd::FALSE
        }
    };
    all_ok &= check(
        "fixing those pixels forces the decision for all 2^k completions",
        forced,
    );

    section("neuron-level interpretation (§5.2)");
    for (j, &h) in layers[0].iter().enumerate() {
        let fires = m.count_models(h);
        let frac = fires as f64 / (1u128 << PIXELS) as f64;
        let p_bar = Bnn::neuron_input_proportion(&m, h, 5); // a bar pixel
        row(
            &format!("hidden neuron {j}"),
            format!(
                "fires on {frac:.3} of inputs; Pr(pixel 5 = 1 | fires) = {}",
                p_bar.map_or("n/a".into(), |p| format!("{p:.3}"))
            ),
        );
    }

    println!();
    check("E13 overall", all_ok);
}
