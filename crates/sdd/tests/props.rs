//! Property-based tests for the SDD algebra, on all three standard vtree
//! shapes: apply/negate/condition match semantics; canonicity holds.
//!
//! Gated behind the `proptest` feature (default on): `cargo test -p trl-sdd
//! --no-default-features` skips the randomized sweeps. Instances come from
//! the workspace's deterministic generator — on failure, rerun with the
//! seed printed in the assertion message.
#![cfg(feature = "proptest")]

use trl_core::{Assignment, SplitMix64, Var};
use trl_prop::gen::random_formula;
use trl_prop::TruthTable;
use trl_sdd::{SddManager, SddRef};
use trl_vtree::Vtree;

const N: usize = 4;
const CASES: u64 = 96;

fn manager(shape: u64) -> SddManager {
    let order: Vec<Var> = (0..N as u32).map(Var).collect();
    match shape % 3 {
        0 => SddManager::new(Vtree::balanced(&order)),
        1 => SddManager::new(Vtree::right_linear(&order)),
        _ => SddManager::new(Vtree::left_linear(&order)),
    }
}

#[test]
fn build_matches_truth_table() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let f = random_formula(&mut rng, N as u32, 10);
        let mut m = manager(seed);
        let r = m.build_formula(&f);
        let tt = TruthTable::from_formula(&f, N);
        for code in 0..1u64 << N {
            assert_eq!(
                m.eval(r, &Assignment::from_index(code, N)),
                tt.get(code),
                "seed {seed}, input {code:04b}"
            );
        }
        assert_eq!(m.model_count(r), tt.count() as u128, "seed {seed}");
    }
}

#[test]
fn conjoin_disjoin_are_pointwise() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let f = random_formula(&mut rng, N as u32, 10);
        let g = random_formula(&mut rng, N as u32, 10);
        let mut m = manager(seed);
        let rf = m.build_formula(&f);
        let rg = m.build_formula(&g);
        let and = m.and(rf, rg);
        let or = m.or(rf, rg);
        for code in 0..1u64 << N {
            let a = Assignment::from_index(code, N);
            assert_eq!(
                m.eval(and, &a),
                m.eval(rf, &a) && m.eval(rg, &a),
                "seed {seed}"
            );
            assert_eq!(
                m.eval(or, &a),
                m.eval(rf, &a) || m.eval(rg, &a),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn de_morgan_holds_by_canonicity() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let f = random_formula(&mut rng, N as u32, 10);
        let g = random_formula(&mut rng, N as u32, 10);
        let mut m = manager(seed);
        let rf = m.build_formula(&f);
        let rg = m.build_formula(&g);
        let and = m.and(rf, rg);
        let lhs = m.negate(and);
        let nf = m.negate(rf);
        let ng = m.negate(rg);
        let rhs = m.or(nf, ng);
        assert_eq!(lhs, rhs, "seed {seed}");
    }
}

#[test]
fn condition_is_semantic_cofactor() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let f = random_formula(&mut rng, N as u32, 10);
        let var = rng.below(N) as u32;
        let val = rng.coin();
        let mut m = manager(seed);
        let r = m.build_formula(&f);
        let lit = Var(var).literal(val);
        let c = m.condition(r, lit);
        for code in 0..1u64 << N {
            let mut a = Assignment::from_index(code, N);
            a.set(Var(var), val);
            assert_eq!(m.eval(c, &a), m.eval(r, &a), "seed {seed}");
        }
    }
}

#[test]
fn shannon_expansion_reconstructs() {
    // f = (x ∧ f|x) ∨ (¬x ∧ f|¬x), and canonicity makes it identical.
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let f = random_formula(&mut rng, N as u32, 10);
        let v = Var(rng.below(N) as u32);
        let mut m = manager(seed);
        let r = m.build_formula(&f);
        let hi = m.condition(r, v.positive());
        let lo = m.condition(r, v.negative());
        let pos = m.literal(v.positive());
        let neg = m.literal(v.negative());
        let a = m.and(pos, hi);
        let b = m.and(neg, lo);
        let rebuilt = m.or(a, b);
        assert_eq!(rebuilt, r, "seed {seed}");
    }
}

#[test]
fn satisfiable_iff_not_false() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let f = random_formula(&mut rng, N as u32, 10);
        let mut m = manager(seed);
        let r = m.build_formula(&f);
        let tt = TruthTable::from_formula(&f, N);
        assert_eq!(r != SddRef::False, tt.is_sat(), "seed {seed}");
        assert_eq!(r == SddRef::True, tt.count() == 1 << N, "seed {seed}");
    }
}
