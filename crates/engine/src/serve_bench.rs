//! The serving benchmark behind `three-roles bench-serve` and the
//! `bench_serve` binary (`BENCH_engine.json`).
//!
//! It contrasts two ways of answering the same stream of WMC queries
//! against one compiled circuit:
//!
//! * **baseline** — one query at a time on one thread, the way every
//!   pre-engine example in this repo did it: each query re-smooths the
//!   circuit internally;
//! * **served** — batches through the [`Executor`] against a
//!   [`PreparedCircuit`], which smooths **once**; the numeric pass is all
//!   that remains per query, and multiple workers overlap queries when
//!   cores allow.
//!
//! The speedup is therefore dominated by batch amortization of smoothing
//! (it holds even on a single-core host) with worker parallelism on top.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use crate::executor::{Executor, Query};
use crate::prepared::PreparedCircuit;
use trl_core::{SplitMix64, Var};
use trl_nnf::{Circuit, LitWeights};

// The nearest-rank summary was born here; it now lives in `trl-obs` as
// the workspace's single latency summary (shared with the bench harness
// and histogram rendering) and is re-exported for compatibility.
pub use trl_obs::LatencySummary;

/// Measurements for one (workers, batch size) configuration.
#[derive(Clone, Debug)]
pub struct ServeConfigReport {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Queries per `run_batch` call.
    pub batch_size: usize,
    /// Total queries answered.
    pub queries: usize,
    /// Wall-clock for the whole stream, seconds.
    pub wall_secs: f64,
    /// Throughput, queries per second.
    pub qps: f64,
    /// Per-query service latency distribution.
    pub latency: LatencySummary,
    /// Throughput relative to the baseline.
    pub speedup: f64,
}

/// The full benchmark result.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Human-readable instance name.
    pub instance: String,
    /// Nodes in the compiled circuit.
    pub raw_nodes: usize,
    /// Edges in the compiled circuit.
    pub raw_edges: usize,
    /// Nodes in the smoothed serving circuit.
    pub smoothed_nodes: usize,
    /// One-off preparation cost (smoothing + kernel tape), milliseconds.
    pub prepare_ms: f64,
    /// Queries answered per configuration (and by the baseline).
    pub queries_per_config: usize,
    /// Baseline wall-clock, seconds.
    pub baseline_wall_secs: f64,
    /// Baseline throughput, queries per second.
    pub baseline_qps: f64,
    /// Baseline per-query latency distribution.
    pub baseline_latency: LatencySummary,
    /// One row per (workers, batch size) configuration.
    pub configs: Vec<ServeConfigReport>,
    /// Whether every served answer bit-matched its baseline answer.
    pub answers_agree: bool,
    /// The executor [`crate::ParallelPolicy`] active during the run
    /// (see `ParallelPolicy::describe`).
    pub parallel_policy: String,
}

impl ServeReport {
    /// Best speedup among configurations that are genuinely batched
    /// (batch size > 1) and multi-worker (workers > 1) — the acceptance
    /// number for `bench-serve`.
    pub fn best_batched_multiworker_speedup(&self) -> f64 {
        self.configs
            .iter()
            .filter(|c| c.workers > 1 && c.batch_size > 1)
            .map(|c| c.speedup)
            .fold(0.0, f64::max)
    }

    /// Renders the report as the `BENCH_engine.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"bench_serve\",\n");
        let _ = writeln!(out, "  \"instance\": \"{}\",", self.instance);
        let _ = writeln!(out, "  \"parallel_policy\": \"{}\",", self.parallel_policy);
        let _ = writeln!(
            out,
            "  \"circuit\": {{ \"nodes\": {}, \"edges\": {}, \"smoothed_nodes\": {}, \"prepare_ms\": {:.3} }},",
            self.raw_nodes, self.raw_edges, self.smoothed_nodes, self.prepare_ms
        );
        let _ = writeln!(
            out,
            "  \"baseline\": {{ \"description\": \"one WMC query at a time, one thread, smoothing per query\", \"queries\": {}, \"wall_secs\": {:.6}, \"qps\": {:.1}, \"latency\": {} }},",
            self.queries_per_config,
            self.baseline_wall_secs,
            self.baseline_qps,
            self.baseline_latency.to_json_fragment()
        );
        out.push_str("  \"configs\": [\n");
        for (i, c) in self.configs.iter().enumerate() {
            let _ = write!(
                out,
                "    {{ \"workers\": {}, \"batch_size\": {}, \"queries\": {}, \"wall_secs\": {:.6}, \"qps\": {:.1}, \"latency\": {}, \"speedup\": {:.2} }}",
                c.workers,
                c.batch_size,
                c.queries,
                c.wall_secs,
                c.qps,
                c.latency.to_json_fragment(),
                c.speedup
            );
            out.push_str(if i + 1 < self.configs.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        let _ = writeln!(
            out,
            "  \"acceptance\": {{ \"answers_agree\": {}, \"best_batched_multiworker_speedup\": {:.2}, \"pass\": {} }}",
            self.answers_agree,
            self.best_batched_multiworker_speedup(),
            self.answers_agree && self.best_batched_multiworker_speedup() >= 2.0
        );
        out.push_str("}\n");
        out
    }
}

/// A deterministic stream of WMC queries with per-variable weights in
/// `(0, 1)` and complementary negative weights — the shape a Bayesian
/// network reduction produces.
fn query_stream(num_vars: usize, count: usize, seed: u64) -> Vec<Query> {
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| {
            let mut w = LitWeights::unit(num_vars);
            for v in 0..num_vars as u32 {
                let p = 0.05 + 0.9 * rng.uniform();
                w.set(Var(v).positive(), p);
                w.set(Var(v).negative(), 1.0 - p);
            }
            Query::Wmc(w)
        })
        .collect()
}

/// Runs the serving benchmark for one compiled circuit.
///
/// Every configuration answers the *same* deterministic query stream, and
/// every served answer is checked against the baseline's bit-for-bit.
pub fn serving_benchmark(
    instance: &str,
    circuit: &Circuit,
    worker_counts: &[usize],
    batch_sizes: &[usize],
    queries_per_config: usize,
    seed: u64,
) -> ServeReport {
    let queries = query_stream(circuit.num_vars(), queries_per_config, seed);

    // Baseline: one at a time, one thread, smoothing inside every query.
    let start = Instant::now();
    let mut baseline_latencies_us: Vec<f64> = Vec::with_capacity(queries.len());
    let baseline_answers: Vec<f64> = queries
        .iter()
        .map(|q| {
            let t = Instant::now();
            let answer = match q {
                Query::Wmc(w) => circuit.wmc(w),
                _ => unreachable!("stream is all WMC"),
            };
            baseline_latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
            answer
        })
        .collect();
    let baseline_wall_secs = start.elapsed().as_secs_f64().max(1e-12);
    let baseline_qps = queries.len() as f64 / baseline_wall_secs;
    let baseline_latency = LatencySummary::from_us(&mut baseline_latencies_us);

    // Prepare once; every served configuration shares the artifact. The
    // warm-up materializes smoothing and the kernel tape *inside* the
    // timed prepare step, so that one-off cost is recorded here instead
    // of surfacing as a max-latency outlier on an unlucky first query.
    let start = Instant::now();
    let prepared = Arc::new(PreparedCircuit::new(circuit.clone()));
    prepared.warm();
    let prepare_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut configs = Vec::new();
    let mut answers_agree = true;
    let mut parallel_policy = crate::ParallelPolicy::default().describe();
    for &workers in worker_counts {
        let executor = Executor::new(workers);
        parallel_policy = executor.parallel_policy().describe();
        for &batch_size in batch_sizes {
            let batch_size = batch_size.max(1);
            let start = Instant::now();
            let mut latencies_us: Vec<f64> = Vec::with_capacity(queries.len());
            let mut served: Vec<f64> = Vec::with_capacity(queries.len());
            for chunk in queries.chunks(batch_size) {
                let outcomes = executor.run_batch(&prepared, chunk.to_vec());
                for o in outcomes {
                    latencies_us.push(o.latency.as_secs_f64() * 1e6);
                    served.push(o.answer.wmc().expect("WMC stream"));
                }
            }
            let wall_secs = start.elapsed().as_secs_f64().max(1e-12);
            answers_agree &= served == baseline_answers;
            let qps = queries.len() as f64 / wall_secs;
            configs.push(ServeConfigReport {
                workers: executor.num_workers(),
                batch_size,
                queries: queries.len(),
                wall_secs,
                qps,
                latency: LatencySummary::from_us(&mut latencies_us),
                speedup: qps / baseline_qps,
            });
        }
    }

    ServeReport {
        instance: instance.to_string(),
        raw_nodes: circuit.node_count(),
        raw_edges: circuit.edge_count(),
        smoothed_nodes: prepared.smoothed().node_count(),
        prepare_ms,
        queries_per_config,
        baseline_wall_secs,
        baseline_qps,
        baseline_latency,
        configs,
        answers_agree,
        parallel_policy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trl_compiler::DecisionDnnfCompiler;
    use trl_prop::Cnf;

    #[test]
    fn report_is_consistent_and_answers_agree() {
        let cnf =
            Cnf::parse_dimacs("p cnf 6 5\n1 2 0\n-2 3 4 0\n-1 -4 0\n5 1 0\n-5 6 0\n").unwrap();
        let c = DecisionDnnfCompiler::default().compile(&cnf);
        let report = serving_benchmark("test instance", &c, &[1, 2], &[1, 8], 32, 7);
        assert!(report.answers_agree);
        assert_eq!(report.configs.len(), 4);
        assert!(report.configs.iter().all(|c| c.qps > 0.0));
        assert!(report.baseline_qps > 0.0);
        for l in
            std::iter::once(report.baseline_latency).chain(report.configs.iter().map(|c| c.latency))
        {
            assert!(l.p50_us <= l.p95_us && l.p95_us <= l.p99_us && l.p99_us <= l.max_us);
            assert!(l.max_us > 0.0);
        }
        // Multi-worker batched config exists and its speedup feeds acceptance.
        assert!(report
            .configs
            .iter()
            .any(|c| c.workers > 1 && c.batch_size > 1));
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"bench_serve\""));
        assert!(json.contains("\"best_batched_multiworker_speedup\""));
        assert!(json.contains("\"p99_us\""));
    }
}
