//! CNF → Decision-DNNF by exhaustive DPLL with component caching.
//!
//! The compiler is the "trace" construction of \[38\]: run a DPLL search that
//! does not stop at the first model, record unit implications as conjoined
//! literals, split the residual CNF into variable-disjoint *components*
//! (conjoined decomposably), branch on a variable (the deterministic
//! decision or-gate `(x ∧ Δ|x) ∨ (¬x ∧ Δ|¬x)`), and cache compiled
//! components so shared subproblems compile once. This is exactly how
//! Dsharp arises from sharpSAT \[56, 88\].
//!
//! The output [`Circuit`] is decomposable and deterministic **by
//! construction**, so every d-DNNF query of `trl-nnf` applies.

use trl_core::{FxHashMap, Lit, Var};
use trl_nnf::{Circuit, CircuitBuilder, LitWeights, NnfId};
use trl_prop::Cnf;

/// Component-cache configuration, the ablation knob of `exp15`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CacheMode {
    /// Cache compiled components keyed on their reduced clause sets.
    #[default]
    Components,
    /// No caching: pure search-tree trace (can be exponentially slower).
    None,
}

/// CNF → Decision-DNNF compiler.
#[derive(Clone, Copy, Debug, Default)]
pub struct DecisionDnnfCompiler {
    /// Cache configuration.
    pub cache: CacheMode,
}

impl DecisionDnnfCompiler {
    /// Creates a compiler with the given cache mode.
    pub fn new(cache: CacheMode) -> Self {
        DecisionDnnfCompiler { cache }
    }

    /// Compiles a CNF into a Decision-DNNF circuit over the CNF's variable
    /// universe.
    pub fn compile(&self, cnf: &Cnf) -> Circuit {
        let mut st = Compilation::new(cnf, self.cache);
        let all: Vec<u32> = (0..cnf.clauses().len() as u32).collect();
        let root = st.compile_component(&all);
        st.builder.finish(root)
    }
}

/// Signature of a reduced component: the sorted list of reduced clauses.
type ComponentKey = Vec<Vec<Lit>>;

struct Compilation<'a> {
    cnf: &'a Cnf,
    cache_mode: CacheMode,
    builder: CircuitBuilder,
    /// Current values: 0 = unset, 1 = false, 2 = true.
    value: Vec<u8>,
    trail: Vec<Var>,
    cache: FxHashMap<ComponentKey, NnfId>,
}

impl<'a> Compilation<'a> {
    fn new(cnf: &'a Cnf, cache_mode: CacheMode) -> Self {
        Compilation {
            cnf,
            cache_mode,
            builder: CircuitBuilder::new(cnf.num_vars()),
            value: vec![0; cnf.num_vars()],
            trail: Vec::new(),
            cache: FxHashMap::default(),
        }
    }

    fn lit_value(&self, l: Lit) -> u8 {
        match self.value[l.var().index()] {
            0 => 0,
            v => {
                let is_true = v == 2;
                if l.is_positive() == is_true {
                    2
                } else {
                    1
                }
            }
        }
    }

    fn assign(&mut self, l: Lit) {
        self.value[l.var().index()] = if l.is_positive() { 2 } else { 1 };
        self.trail.push(l.var());
    }

    fn backtrack_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let v = self.trail.pop().unwrap();
            self.value[v.index()] = 0;
        }
    }

    /// Unit propagation over the given clauses. Returns the implied
    /// literals, or `None` on conflict (caller must backtrack).
    fn propagate(&mut self, clauses: &[u32]) -> Option<Vec<Lit>> {
        let mut implied = Vec::new();
        loop {
            let mut progressed = false;
            'clauses: for &ci in clauses {
                let c = &self.cnf.clauses()[ci as usize];
                let mut unassigned = None;
                let mut n_un = 0;
                for &l in c.literals() {
                    match self.lit_value(l) {
                        2 => continue 'clauses,
                        1 => {}
                        _ => {
                            unassigned = Some(l);
                            n_un += 1;
                            if n_un > 1 {
                                continue 'clauses;
                            }
                        }
                    }
                }
                match (n_un, unassigned) {
                    (0, _) => return None,
                    (1, Some(l)) => {
                        self.assign(l);
                        implied.push(l);
                        progressed = true;
                    }
                    _ => unreachable!(),
                }
            }
            if !progressed {
                return Some(implied);
            }
        }
    }

    /// The clauses still active (not satisfied) under the current values.
    fn active_clauses(&self, clauses: &[u32]) -> Vec<u32> {
        clauses
            .iter()
            .copied()
            .filter(|&ci| {
                self.cnf.clauses()[ci as usize]
                    .literals()
                    .iter()
                    .all(|&l| self.lit_value(l) != 2)
            })
            .collect()
    }

    /// Partitions active clauses into connected components by shared
    /// unassigned variables (union-find over variables).
    fn components(&self, active: &[u32]) -> Vec<Vec<u32>> {
        let n = self.cnf.num_vars();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for &ci in active {
            let mut first: Option<u32> = None;
            for &l in self.cnf.clauses()[ci as usize].literals() {
                if self.lit_value(l) != 0 {
                    continue;
                }
                let v = l.var().0;
                match first {
                    None => first = Some(v),
                    Some(f) => {
                        let (a, b) = (find(&mut parent, f), find(&mut parent, v));
                        parent[a as usize] = b;
                    }
                }
            }
        }
        let mut groups: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for &ci in active {
            let rep = self.cnf.clauses()[ci as usize]
                .literals()
                .iter()
                .find(|&&l| self.lit_value(l) == 0)
                .map(|&l| find(&mut parent, l.var().0))
                .expect("active clause has an unassigned literal");
            groups.entry(rep).or_default().push(ci);
        }
        let mut out: Vec<Vec<u32>> = groups.into_values().collect();
        out.sort_by_key(|g| g[0]);
        out
    }

    fn component_key(&self, clauses: &[u32]) -> ComponentKey {
        let mut key: ComponentKey = clauses
            .iter()
            .map(|&ci| {
                self.cnf.clauses()[ci as usize]
                    .literals()
                    .iter()
                    .copied()
                    .filter(|&l| self.lit_value(l) == 0)
                    .collect::<Vec<Lit>>()
            })
            .collect();
        key.sort();
        key.dedup();
        key
    }

    /// Picks the unassigned variable occurring most often in the clauses.
    fn pick_branch(&self, clauses: &[u32]) -> Var {
        let mut counts: FxHashMap<Var, u32> = FxHashMap::default();
        for &ci in clauses {
            for &l in self.cnf.clauses()[ci as usize].literals() {
                if self.lit_value(l) == 0 {
                    *counts.entry(l.var()).or_insert(0) += 1;
                }
            }
        }
        counts
            .into_iter()
            .max_by_key(|&(v, c)| (c, std::cmp::Reverse(v.0)))
            .expect("no unassigned variable in active component")
            .0
    }

    /// Compiles the sub-CNF given by `clauses` under the current partial
    /// assignment, returning a circuit node over its unassigned variables
    /// conjoined with any literals it implies.
    fn compile_component(&mut self, clauses: &[u32]) -> NnfId {
        let mark = self.trail.len();
        let Some(implied) = self.propagate(clauses) else {
            self.backtrack_to(mark);
            return self.builder.false_();
        };
        let implied_cube: Vec<Lit> = implied.clone();
        let active = self.active_clauses(clauses);
        let result = if active.is_empty() {
            self.builder.cube(implied_cube.iter().copied())
        } else {
            let comps = self.components(&active);
            let mut parts: Vec<NnfId> = Vec::with_capacity(comps.len() + 1);
            parts.push(self.builder.cube(implied_cube.iter().copied()));
            let mut failed = false;
            for comp in comps {
                let sub = self.compile_one(&comp);
                if self.builder_is_false(sub) {
                    failed = true;
                    parts.clear();
                    break;
                }
                parts.push(sub);
            }
            if failed {
                self.builder.false_()
            } else {
                self.builder.and(parts)
            }
        };
        self.backtrack_to(mark);
        result
    }

    fn builder_is_false(&mut self, id: NnfId) -> bool {
        id == self.builder.false_()
    }

    /// Compiles a single connected component (no propagation pending).
    fn compile_one(&mut self, comp: &[u32]) -> NnfId {
        let key = if self.cache_mode == CacheMode::Components {
            let key = self.component_key(comp);
            if let Some(&id) = self.cache.get(&key) {
                return id;
            }
            Some(key)
        } else {
            None
        };
        let v = self.pick_branch(comp);
        let mark = self.trail.len();

        self.assign(v.positive());
        let pos_body = self.compile_component(comp);
        self.backtrack_to(mark);

        self.assign(v.negative());
        let neg_body = self.compile_component(comp);
        self.backtrack_to(mark);

        let pos_lit = self.builder.lit(v.positive());
        let neg_lit = self.builder.lit(v.negative());
        let pos = self.builder.and([pos_lit, pos_body]);
        let neg = self.builder.and([neg_lit, neg_body]);
        let id = self.builder.or([pos, neg]);
        if let Some(key) = key {
            self.cache.insert(key, id);
        }
        id
    }
}

/// A model counter in the compile-then-count architecture the paper
/// describes as the state of the art for (weighted) model counting.
#[derive(Default)]
pub struct ModelCounter {
    compiler: DecisionDnnfCompiler,
}

impl ModelCounter {
    /// A counter using the given compiler configuration.
    pub fn new(compiler: DecisionDnnfCompiler) -> Self {
        ModelCounter { compiler }
    }

    /// #SAT over the CNF's variable universe.
    pub fn count(&self, cnf: &Cnf) -> u128 {
        self.compiler.compile(cnf).model_count()
    }

    /// Weighted model count.
    pub fn wmc(&self, cnf: &Cnf, w: &LitWeights) -> f64 {
        self.compiler.compile(cnf).wmc(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trl_core::Assignment;
    use trl_nnf::properties;
    use trl_prop::Solver;

    fn lit(i: i32) -> Lit {
        Var(i.unsigned_abs() - 1).literal(i > 0)
    }

    #[test]
    fn compiles_equivalent_circuit() {
        let cnf = Cnf::parse_dimacs("p cnf 4 3\n1 2 0\n-1 3 0\n-2 -3 4 0\n").unwrap();
        let c = DecisionDnnfCompiler::default().compile(&cnf);
        for code in 0..16u64 {
            let a = Assignment::from_index(code, 4);
            assert_eq!(c.eval(&a), cnf.eval(&a), "at {code:04b}");
        }
    }

    #[test]
    fn output_is_decomposable_and_deterministic() {
        let cnf =
            Cnf::parse_dimacs("p cnf 5 4\n1 2 0\n-2 3 0\n4 5 0\n-4 -5 0\n").unwrap();
        let c = DecisionDnnfCompiler::default().compile(&cnf);
        assert!(properties::is_decomposable(&c));
        assert!(properties::is_deterministic_exhaustive(&c));
    }

    #[test]
    fn counts_match_dpll_baseline() {
        for dimacs in [
            "p cnf 3 2\n1 2 0\n-1 3 0\n",
            "p cnf 4 4\n1 2 0\n-1 -2 0\n3 4 0\n-3 -4 0\n",
            "p cnf 1 2\n1 0\n-1 0\n", // unsat
            "p cnf 3 0\n",            // valid
            "p cnf 6 3\n1 -2 3 0\n2 4 0\n-5 6 0\n",
        ] {
            let cnf = Cnf::parse_dimacs(dimacs).unwrap();
            let expected = Solver::new(&cnf).count_models() as u128;
            for mode in [CacheMode::Components, CacheMode::None] {
                let c = DecisionDnnfCompiler::new(mode).compile(&cnf);
                assert_eq!(c.model_count(), expected, "{dimacs:?} mode {mode:?}");
            }
        }
    }

    #[test]
    fn component_decomposition_produces_and_of_parts() {
        // Two independent blocks: (x0∨x1) and (x2∨x3). The compiler must
        // conjoin two separately compiled components rather than branching
        // across them — observable as a small circuit.
        let cnf = Cnf::parse_dimacs("p cnf 4 2\n1 2 0\n3 4 0\n").unwrap();
        let c = DecisionDnnfCompiler::default().compile(&cnf);
        assert_eq!(c.model_count(), 9);
        // With components, x0-branching never duplicates the x2/x3 block:
        // node count stays linear in the blocks.
        assert!(c.node_count() <= 14, "got {}", c.node_count());
    }

    #[test]
    fn caching_reuses_shared_components() {
        // A formula whose branches share a residual component.
        let mut cnf = Cnf::new(6);
        cnf.add_clause([lit(1), lit(2)]);
        cnf.add_clause([lit(-1), lit(2)]);
        cnf.add_clause([lit(3), lit(4)]);
        cnf.add_clause([lit(5), lit(6)]);
        let cached = DecisionDnnfCompiler::new(CacheMode::Components).compile(&cnf);
        let uncached = DecisionDnnfCompiler::new(CacheMode::None).compile(&cnf);
        assert_eq!(cached.model_count(), uncached.model_count());
        assert!(cached.node_count() <= uncached.node_count());
    }

    #[test]
    fn weighted_counting_through_the_counter() {
        let cnf = Cnf::parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        let mut w = LitWeights::unit(3);
        w.set(lit(1), 0.3);
        w.set(lit(-1), 0.7);
        let brute: f64 = (0..8u64)
            .map(|c| Assignment::from_index(c, 3))
            .filter(|a| cnf.eval(a))
            .map(|a| w.weight_of(&a))
            .sum();
        let got = ModelCounter::default().wmc(&cnf, &w);
        assert!((got - brute).abs() < 1e-12);
    }

    #[test]
    fn random_cnfs_agree_with_brute_force() {
        let mut state = 0x2468ace0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..40 {
            let n = 3 + (next() % 5) as usize;
            let m = 2 + (next() % 8) as usize;
            let mut cnf = Cnf::new(n);
            for _ in 0..m {
                let len = 1 + (next() % 3) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| Var((next() % n as u64) as u32).literal(next() % 2 == 0))
                    .collect();
                cnf.add_clause(lits);
            }
            let brute = (0..1u64 << n)
                .filter(|&c| cnf.eval(&Assignment::from_index(c, n)))
                .count() as u128;
            let circuit = DecisionDnnfCompiler::default().compile(&cnf);
            assert_eq!(circuit.model_count(), brute, "{}", cnf.to_dimacs());
            assert!(properties::is_decomposable(&circuit));
        }
    }

    #[test]
    fn tautological_clauses_are_harmless() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(1), lit(-1)]);
        cnf.add_clause([lit(2)]);
        let c = DecisionDnnfCompiler::default().compile(&cnf);
        assert_eq!(c.model_count(), 2);
    }
}
