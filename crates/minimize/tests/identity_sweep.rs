//! Pre- vs post-minimization identity sweep over the 50-CNF crosscheck
//! corpus (the same deterministic instances the compiler and kernel
//! suites sweep; any divergence pins to a seed).
//!
//! Every instance is minimized under the full default schedule, and every
//! query the engine serves is compared **bit-for-bit**: SAT, model count
//! (`u128`), model count under evidence, WMC, and marginals. Float probes
//! run in the exact dyadic regime ({0.5, 1.0} weights), where every
//! intermediate is exactly representable, so bit-equality is the correct
//! oracle even across restructured circuits. MPE compares optimal weight
//! bits and cross-validates each witness (tie-breaking is structural).
//! Brute-force model enumeration (n ≤ 13 here) independently confirms the
//! *function* is untouched.

use trl_compiler::DecisionDnnfCompiler;
use trl_core::{Assignment, PartialAssignment, SplitMix64, Var};
use trl_minimize::{
    dyadic_weights, minimize_circuit, mixed_dyadic_weights, MinimizeConfig, Strategy,
};
use trl_nnf::Circuit;

fn corpus() -> Vec<(usize, Circuit)> {
    let mut rng = SplitMix64::new(0x5eed_c0de);
    let compiler = DecisionDnnfCompiler::default();
    (0..50)
        .map(|i| {
            let n = 4 + (i % 10);
            let m = 2 + ((i * 7) % (3 * n + 4));
            let cnf = trl_prop::gen::random_cnf(&mut rng, n, m, 4);
            (n, compiler.compile(&cnf))
        })
        .collect()
}

/// Deterministic evidence: a couple of assigned variables per instance.
fn evidence(n: usize, i: usize) -> PartialAssignment {
    let mut pa = PartialAssignment::new(n);
    pa.assign(Var(0).literal(i.is_multiple_of(2)));
    if n > 2 {
        pa.assign(Var((1 + i % (n - 1)) as u32).literal(!i.is_multiple_of(3)));
    }
    pa
}

fn assert_identical(i: usize, n: usize, a: &Circuit, b: &Circuit) {
    assert_eq!(a.num_vars(), b.num_vars(), "instance {i}: universe");
    assert_eq!(a.sat_dnnf(), b.sat_dnnf(), "instance {i}: sat");
    assert_eq!(a.model_count(), b.model_count(), "instance {i}: count");
    let pa = evidence(n, i);
    assert_eq!(
        a.model_count_under(&pa),
        b.model_count_under(&pa),
        "instance {i}: count under evidence"
    );
    for w in [dyadic_weights(n), mixed_dyadic_weights(n)] {
        assert_eq!(
            a.wmc(&w).to_bits(),
            b.wmc(&w).to_bits(),
            "instance {i}: wmc bits"
        );
        let (wa, ma) = a.wmc_marginals(&w);
        let (wb, mb) = b.wmc_marginals(&w);
        assert_eq!(wa.to_bits(), wb.to_bits(), "instance {i}: marginal wmc");
        let bits = |m: &[(f64, f64)]| -> Vec<(u64, u64)> {
            m.iter().map(|(p, q)| (p.to_bits(), q.to_bits())).collect()
        };
        assert_eq!(bits(&ma), bits(&mb), "instance {i}: marginal bits");
    }
    // MPE: same optimal weight bitwise; witnesses cross-validate.
    let w = mixed_dyadic_weights(n);
    match (a.max_weight(&w), b.max_weight(&w)) {
        (None, None) => {}
        (Some((va, wa)), Some((vb, wb))) => {
            assert_eq!(va.to_bits(), vb.to_bits(), "instance {i}: mpe weight");
            assert!(a.eval(&wb), "instance {i}: minimized witness invalid");
            assert!(b.eval(&wa), "instance {i}: original witness invalid");
        }
        other => panic!("instance {i}: mpe satisfiability diverged: {other:?}"),
    }
    // Independent function check: brute force over all assignments.
    for code in 0..1u64 << n {
        let asn = Assignment::from_index(code, n);
        assert_eq!(
            a.eval(&asn),
            b.eval(&asn),
            "instance {i}: assignment {code}"
        );
    }
}

#[test]
fn full_schedule_identity_sweep() {
    let mut shrunk = 0usize;
    for (i, (n, circuit)) in corpus().into_iter().enumerate() {
        let (minimized, report) = minimize_circuit(&circuit, &MinimizeConfig::default());
        assert!(
            minimized.node_count() <= circuit.node_count(),
            "instance {i}: grew from {} to {}",
            circuit.node_count(),
            minimized.node_count()
        );
        assert_eq!(report.nodes_before, circuit.node_count(), "instance {i}");
        assert_eq!(report.nodes_after, minimized.node_count(), "instance {i}");
        if report.accepted {
            shrunk += 1;
            assert!(
                minimized.node_count() < circuit.node_count(),
                "instance {i}"
            );
        }
        assert_identical(i, n, &circuit, &minimized);
    }
    // The corpus must show real reductions, not a vacuous sweep.
    assert!(shrunk >= 10, "only {shrunk}/50 instances shrank");
}

#[test]
fn per_strategy_identity_spot_checks() {
    // Each individual strategy obeys the same contract on a corpus slice.
    for strategy in [Strategy::Compact, Strategy::Obdd, Strategy::Vtree] {
        let cfg = MinimizeConfig {
            strategy,
            ..MinimizeConfig::default()
        };
        for (i, (n, circuit)) in corpus().into_iter().enumerate().take(12) {
            let (minimized, _) = minimize_circuit(&circuit, &cfg);
            assert!(minimized.node_count() <= circuit.node_count());
            assert_identical(i, n, &circuit, &minimized);
        }
    }
}
