//! Criterion bench: (weighted) model counting per circuit type — the
//! "linear in the circuit" claim of Fig. 8 in wall-clock form.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trl_bench::{random_3cnf, Rng};
use trl_compiler::{compile_obdd, compile_sdd, DecisionDnnfCompiler};
use trl_nnf::properties::smooth;
use trl_nnf::LitWeights;

fn bench_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("count");
    for n in [12usize, 16] {
        let cnf = random_3cnf(&mut Rng::new(n as u64 + 1), n, (n as f64 * 3.0) as usize);
        let circuit = smooth(&DecisionDnnfCompiler::default().compile(&cnf));
        let w = LitWeights::unit(n);
        group.bench_with_input(BenchmarkId::new("ddnnf-wmc", n), &(), |b, _| {
            b.iter(|| circuit.wmc_presmoothed(&w))
        });
        let (obdd, root) = compile_obdd(&cnf);
        group.bench_with_input(BenchmarkId::new("obdd-count", n), &(), |b, _| {
            b.iter(|| obdd.count_models(root))
        });
        let (sdd, sroot) = compile_sdd(&cnf);
        group.bench_with_input(BenchmarkId::new("sdd-count", n), &(), |b, _| {
            b.iter(|| sdd.model_count(sroot))
        });
    }
    group.finish();
}

fn bench_marginals(c: &mut Criterion) {
    // All marginals in one derivative pass vs n separate WMC calls.
    let n = 16usize;
    let cnf = random_3cnf(&mut Rng::new(3), n, 44);
    let circuit = DecisionDnnfCompiler::default().compile(&cnf);
    let w = LitWeights::unit(n);
    let mut group = c.benchmark_group("count/marginals");
    group.bench_function("derivative-pass-all", |b| {
        b.iter(|| circuit.wmc_marginals(&w))
    });
    group.bench_function("wmc-per-literal", |b| {
        b.iter(|| {
            let smoothed = smooth(&circuit);
            (0..n)
                .map(|i| {
                    let mut wi = w.clone();
                    wi.set(trl_core::Var(i as u32).negative(), 0.0);
                    smoothed.wmc_presmoothed(&wi)
                })
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500)).sample_size(20);
    targets = bench_counting, bench_marginals
}
criterion_main!(benches);
