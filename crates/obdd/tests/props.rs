//! Property-based tests for the OBDD algebra: every operation is compared
//! against truth-table semantics on random formulas.

use proptest::prelude::*;
use trl_core::{Assignment, Var};
use trl_obdd::Obdd;
use trl_prop::{Formula, TruthTable};

fn arb_formula(n: u32) -> impl Strategy<Value = Formula> {
    let leaf = (0..n).prop_map(|i| Formula::var(Var(i)));
    leaf.prop_recursive(4, 20, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.xor(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

const N: usize = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn build_matches_truth_table(f in arb_formula(N as u32)) {
        let mut m = Obdd::with_num_vars(N);
        let r = m.build_formula(&f);
        let tt = TruthTable::from_formula(&f, N);
        for code in 0..1u64 << N {
            prop_assert_eq!(m.eval(r, &Assignment::from_index(code, N)), tt.get(code));
        }
        prop_assert_eq!(m.count_models(r), tt.count() as u128);
    }

    #[test]
    fn restrict_is_semantic_cofactor(f in arb_formula(N as u32), var in 0..N as u32, val in any::<bool>()) {
        let mut m = Obdd::with_num_vars(N);
        let r = m.build_formula(&f);
        let c = m.restrict(r, Var(var), val);
        for code in 0..1u64 << N {
            let mut a = Assignment::from_index(code, N);
            a.set(Var(var), val);
            // On the fixed-variable half-space the cofactor equals f…
            prop_assert_eq!(m.eval(c, &a), m.eval(r, &a));
            // …and elsewhere it repeats that half-space's values.
            prop_assert_eq!(m.eval(c, &a.flipped(Var(var))), m.eval(c, &a));
        }
        // The cofactor no longer depends on the variable.
        prop_assert!(!m.support(c).contains(Var(var)));
    }

    #[test]
    fn quantification_identities(f in arb_formula(N as u32), var in 0..N as u32) {
        let mut m = Obdd::with_num_vars(N);
        let r = m.build_formula(&f);
        let v = Var(var);
        let ex = m.exists(r, v);
        let fa = m.forall(r, v);
        // ∀x.f ⇒ f ⇒ ∃x.f
        let i1 = m.implies(fa, r);
        let i2 = m.implies(r, ex);
        prop_assert_eq!(i1, Obdd::TRUE);
        prop_assert_eq!(i2, Obdd::TRUE);
        // ¬∃x.f = ∀x.¬f (De Morgan for quantifiers)
        let nex = m.not(ex);
        let nr = m.not(r);
        let fanr = m.forall(nr, v);
        prop_assert_eq!(nex, fanr);
    }

    #[test]
    fn compose_matches_substitution(f in arb_formula(N as u32), g in arb_formula(N as u32), var in 0..N as u32) {
        let mut m = Obdd::with_num_vars(N);
        let rf = m.build_formula(&f);
        let rg = m.build_formula(&g);
        let composed = m.compose(rf, Var(var), rg);
        for code in 0..1u64 << N {
            let a = Assignment::from_index(code, N);
            let mut a2 = a.clone();
            a2.set(Var(var), m.eval(rg, &a));
            prop_assert_eq!(m.eval(composed, &a), m.eval(rf, &a2));
        }
    }

    #[test]
    fn flip_is_involutive_and_semantic(f in arb_formula(N as u32), var in 0..N as u32) {
        let mut m = Obdd::with_num_vars(N);
        let r = m.build_formula(&f);
        let v = Var(var);
        let flipped = m.flip_var(r, v);
        for code in 0..1u64 << N {
            let a = Assignment::from_index(code, N);
            prop_assert_eq!(m.eval(flipped, &a), m.eval(r, &a.flipped(v)));
        }
        let back = m.flip_var(flipped, v);
        prop_assert_eq!(back, r);
    }

    #[test]
    fn xor_cancellation(f in arb_formula(N as u32), g in arb_formula(N as u32)) {
        let mut m = Obdd::with_num_vars(N);
        let rf = m.build_formula(&f);
        let rg = m.build_formula(&g);
        let x = m.xor(rf, rg);
        let back = m.xor(x, rg);
        prop_assert_eq!(back, rf);
    }

    #[test]
    fn threshold_matches_weighted_sum(ws in prop::collection::vec(-4i64..=4, N), t in -6i64..=6) {
        let mut m = Obdd::with_num_vars(N);
        let r = m.threshold(&ws, t);
        for code in 0..1u64 << N {
            let a = Assignment::from_index(code, N);
            let s: i64 = (0..N).filter(|&i| a.value(Var(i as u32))).map(|i| ws[i]).sum();
            prop_assert_eq!(m.eval(r, &a), s >= t);
        }
    }
}
