#!/usr/bin/env bash
# Lint + format + feature-matrix + doc gate. Run from the repo root (or any
# subdirectory):
#
#   ci/check.sh          # clippy (all targets, warnings are errors), fmt,
#                        # no-default-features build+test, docs (warnings
#                        # are errors), kernel perf smoke (bench_eval --smoke)
#   ci/check.sh --fix    # apply clippy suggestions and rustfmt in place
#
# The same commands run in CI; keep them byte-for-byte in sync.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix" ]]; then
    cargo clippy --workspace --all-targets --fix --allow-dirty --allow-staged -- -D warnings
    cargo fmt --all
else
    cargo clippy --workspace --all-targets -- -D warnings
    cargo fmt --all --check
fi

# The umbrella crate's `proptest` feature is on by default; the workspace
# must also build and test cleanly without it.
cargo build --workspace --no-default-features --quiet
cargo test --workspace --no-default-features --quiet

# Rendered docs are part of the API surface: broken intra-doc links and
# malformed doc comments fail the gate.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# Perf smoke: the lane-batched evaluation kernels must answer bit-for-bit
# like the scalar queries and must never be *slower* than them (sanity
# floor — the tight >=4x gate lives in the full bench_eval run).
cargo run --release --quiet -p trl-bench --bin bench_eval -- --smoke

echo "ci/check.sh: OK"
