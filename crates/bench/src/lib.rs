//! Shared infrastructure for the experiment binaries (`exp01`–`exp19`) and
//! the wall-clock benches.
//!
//! Each binary regenerates one figure-level artifact of the paper; the
//! mapping is the per-experiment index in DESIGN.md, and the measured
//! numbers are recorded against the paper's in EXPERIMENTS.md. Run one with
//! `cargo run --release -p trl-bench --bin exp04_ddnnf_count`. The benches
//! under `benches/` use the self-contained [`harness`] module (no external
//! bench framework), so they build in offline environments.

pub mod harness;
pub mod seed_compiler;

use std::time::Instant;

/// Prints an experiment banner.
pub fn banner(id: &str, figure: &str, claim: &str) {
    println!("================================================================");
    println!("{id} — reproduces {figure}");
    println!("claim: {claim}");
    println!("================================================================");
}

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n--- {title} ---");
}

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Prints one row of a two-column result table.
pub fn row(label: &str, value: impl std::fmt::Display) {
    println!("{label:<46} {value}");
}

/// Checks a reproduction criterion and prints PASS/FAIL; returns success.
pub fn check(label: &str, ok: bool) -> bool {
    println!("[{}] {label}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// A deterministic xorshift64 stream for workload generation.
pub struct Rng(u64);

impl Rng {
    /// Creates a stream from a nonzero seed.
    pub fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Generates a random 3-CNF with `n` variables and `m` clauses.
pub fn random_3cnf(rng: &mut Rng, n: usize, m: usize) -> trl_prop::Cnf {
    use trl_core::{Lit, Var};
    let mut cnf = trl_prop::Cnf::new(n);
    for _ in 0..m {
        let mut lits: Vec<Lit> = Vec::with_capacity(3);
        while lits.len() < 3 {
            let v = Var(rng.below(n) as u32);
            if lits.iter().all(|l| l.var() != v) {
                lits.push(v.literal(rng.next_u64() & 1 == 0));
            }
        }
        cnf.add_clause(lits);
    }
    cnf
}

/// Generates a conjunction of `copies` independent random 3-CNF blocks
/// over disjoint variable ranges — the large-circuit benchmark instance:
/// the compiler's component decomposition compiles each block separately,
/// so tape size scales linearly with `copies` while per-block structure
/// stays realistic. Every block carries a planted satisfying assignment
/// (a clause violating it gets one literal flipped to agree), so no block
/// is ever UNSAT — one false block would collapse the whole circuit to
/// `⊥` and the tape to a single node.
pub fn chained_3cnf(rng: &mut Rng, copies: usize, n: usize, m: usize) -> trl_prop::Cnf {
    use trl_core::{Lit, Var};
    let mut cnf = trl_prop::Cnf::new(copies * n);
    for c in 0..copies {
        let base = (c * n) as u32;
        let planted: Vec<bool> = (0..n).map(|_| rng.next_u64() & 1 == 0).collect();
        for _ in 0..m {
            let mut lits: Vec<Lit> = Vec::with_capacity(3);
            while lits.len() < 3 {
                let v = rng.below(n);
                if lits.iter().all(|l| l.var() != Var(base + v as u32)) {
                    lits.push(Var(base + v as u32).literal(rng.next_u64() & 1 == 0));
                }
            }
            if !lits
                .iter()
                .any(|l| l.is_positive() == planted[l.var().index() - base as usize])
            {
                let flip = rng.below(3);
                let v = lits[flip].var();
                lits[flip] = v.literal(planted[v.index() - base as usize]);
            }
            cnf.add_clause(lits);
        }
    }
    cnf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(3);
        let mut b = Rng::new(3);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn random_cnf_shape() {
        let mut rng = Rng::new(1);
        let cnf = random_3cnf(&mut rng, 10, 20);
        assert_eq!(cnf.num_vars(), 10);
        assert_eq!(cnf.clauses().len(), 20);
        assert!(cnf.clauses().iter().all(|c| c.len() == 3));
    }

    #[test]
    fn chained_cnf_blocks_are_disjoint_and_satisfiable() {
        let mut rng = Rng::new(5);
        let cnf = chained_3cnf(&mut rng, 4, 6, 10);
        assert_eq!(cnf.num_vars(), 24);
        assert_eq!(cnf.clauses().len(), 40);
        for (i, clause) in cnf.clauses().iter().enumerate() {
            let block = i / 10;
            assert_eq!(clause.len(), 3);
            assert!(clause
                .literals()
                .iter()
                .all(|l| l.var().index() / 6 == block));
        }
        // Every block planted a solution, so the conjunction is SAT.
        let (c, _) = crate::seed_compiler::compile(&cnf);
        assert!(c.model_count() > 0);
    }

    #[test]
    fn timed_returns_result() {
        let (x, secs) = timed(|| 21 * 2);
        assert_eq!(x, 42);
        assert!(secs >= 0.0);
    }
}
