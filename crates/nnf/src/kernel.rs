//! Lane-batched, cache-blocked evaluation kernels over a linearized tape.
//!
//! The polytime queries of [`crate::queries`] are linear arena sweeps — the
//! same DAG walked again and again with different leaf values. That is the
//! hot path of a compile-once/query-many deployment, and it is
//! embarrassingly regular, so this module trades the pointer-chasing
//! `NnfNode` walk for a dense instruction tape built once per circuit:
//!
//! * **[`EvalTape`]** — the reachable arena linearized into struct-of-arrays
//!   form: one op tag per node, child edges in a single CSR arc array, and
//!   literals in a parallel column. A sweep is a forward scan over
//!   contiguous slices; nothing is re-discovered per query.
//! * **Lane batching** — [`EvalTape::wmc_batch`] and friends give every node
//!   a `[f64; LANES]` value plane and answer `LANES` queries per tape scan.
//!   One traversal is amortized over the whole lane group and the per-node
//!   inner loops are plain fixed-length array arithmetic, which the
//!   compiler auto-vectorizes.
//! * **Layer scheduling** — nodes are stored grouped by dependency depth
//!   (children always in strictly earlier layers), so each layer is a
//!   contiguous block that can be fanned out across threads
//!   ([`EvalTape::wmc_batch_layered`]) with one barrier per layer.
//!
//! Every kernel returns answers **bit-identical** to the corresponding
//! scalar entry point in [`crate::queries`] (`wmc_presmoothed`,
//! `model_count_presmoothed`, `model_count_under_presmoothed`,
//! `wmc_marginals_presmoothed`): per node, the same floating-point
//! operations run in the same order, and the order-sensitive derivative
//! accumulation of the marginal kernel replays the original arena order via
//! a stored permutation. `crates/nnf/tests/kernel_equiv.rs` asserts this
//! across the crosscheck corpus.
//!
//! Preconditions match the `_presmoothed` queries: the circuit must be
//! decomposable, deterministic, and already smooth with the root covering
//! the full universe (`trl-engine`'s `PreparedCircuit` guarantees this).

use std::cell::UnsafeCell;
use std::sync::Barrier;

use crate::circuit::{Circuit, NnfId, NnfNode};
use crate::queries::LitWeights;
use trl_core::{Lit, PartialAssignment, Var};

/// Queries answered per tape scan by the lane-batched kernels. Eight `f64`
/// lanes fill two AVX2 registers (or one AVX-512 register); the inner loops
/// are written so the compiler vectorizes them.
pub const LANES: usize = 8;

/// Publishes one batched-kernel entry to the process metrics: one sweep
/// per lane group, plus the lanes actually filled (dead lanes excluded) —
/// the ratio is the batch's lane utilization. A few relaxed atomic adds
/// per *batch*, not per query.
fn record_sweeps(queries: usize) {
    trl_obs::counter!("kernel.sweeps").add(queries.div_ceil(LANES) as u64);
    trl_obs::counter!("kernel.lanes_filled").add(queries as u64);
}

/// One instruction tag on the tape.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Op {
    /// The constant false.
    False,
    /// The constant true.
    True,
    /// A literal leaf; the literal lives in the parallel `lits` column.
    Lit,
    /// An and-gate over a CSR edge slice.
    And,
    /// An or-gate over a CSR edge slice.
    Or,
}

/// A value plane cell the layer-parallel kernels write through. Threads are
/// handed disjoint node ranges per layer and synchronize on a barrier
/// between layers, so no two threads ever touch the same cell concurrently.
#[repr(transparent)]
struct ValCell(UnsafeCell<[f64; LANES]>);

// SAFETY: shared across the scoped worker threads of the layered kernels
// only; the layer schedule assigns each cell to exactly one writer per
// sweep, and a barrier separates every layer's writes from the next
// layer's reads.
unsafe impl Sync for ValCell {}

/// The reachable arena of a smooth circuit, linearized into a contiguous,
/// layer-ordered instruction tape (struct-of-arrays). Build once per
/// circuit with [`EvalTape::new`], then answer any number of counting-style
/// queries through the kernels; see the module docs for the layout.
#[derive(Clone, Debug)]
pub struct EvalTape {
    num_vars: usize,
    /// Op tag per tape slot.
    ops: Vec<Op>,
    /// Literal per tape slot; meaningful only where `ops` says `Lit`.
    lits: Vec<Lit>,
    /// CSR offsets into `edges`, one entry per tape slot plus a sentinel.
    edge_start: Vec<u32>,
    /// Child tape indices of every gate, concatenated in gate-input order.
    edges: Vec<u32>,
    /// Layer boundaries: nodes `layer_start[l]..layer_start[l+1]` form
    /// dependency layer `l`; all their children sit in earlier layers.
    layer_start: Vec<u32>,
    /// Tape indices listed in original arena order — the replay schedule
    /// for the order-sensitive derivative pass of the marginal kernel.
    arena_order: Vec<u32>,
    /// The root's tape slot (always the last slot: the root is an ancestor
    /// of every reachable node, so it alone occupies the top layer).
    root: u32,
}

impl EvalTape {
    /// Linearizes the nodes reachable from the root of `circuit`.
    ///
    /// Unreachable arena nodes are dropped; the survivors are stored
    /// grouped by dependency layer (stable within a layer, so leaves keep
    /// their arena-relative order) with gate inputs rewritten to tape
    /// indices.
    pub fn new(circuit: &Circuit) -> EvalTape {
        let root = circuit.root().index();
        // Reachability: the arena is topological, so one reverse scan from
        // the root marks every reachable node.
        let mut reach = vec![false; root + 1];
        reach[root] = true;
        for i in (0..=root).rev() {
            if !reach[i] {
                continue;
            }
            if let NnfNode::And(xs) | NnfNode::Or(xs) = circuit.node(NnfId(i as u32)) {
                for x in xs {
                    reach[x.index()] = true;
                }
            }
        }

        // Dependency depth per reachable node: leaves are layer 0, gates
        // sit one past their deepest input.
        let mut level = vec![0u32; root + 1];
        let mut max_level = 0u32;
        for i in 0..=root {
            if !reach[i] {
                continue;
            }
            if let NnfNode::And(xs) | NnfNode::Or(xs) = circuit.node(NnfId(i as u32)) {
                let l = xs.iter().map(|x| level[x.index()] + 1).max().unwrap_or(0);
                level[i] = l;
                max_level = max_level.max(l);
            }
        }

        // Stable counting sort by layer: `slot[i]` is node `i`'s tape index.
        let layers = max_level as usize + 1;
        let mut layer_start = vec![0u32; layers + 1];
        for i in 0..=root {
            if reach[i] {
                layer_start[level[i] as usize + 1] += 1;
            }
        }
        for l in 0..layers {
            layer_start[l + 1] += layer_start[l];
        }
        let mut cursor = layer_start.clone();
        let mut slot = vec![u32::MAX; root + 1];
        let mut arena_order = Vec::with_capacity(layer_start[layers] as usize);
        for i in 0..=root {
            if reach[i] {
                let s = cursor[level[i] as usize];
                cursor[level[i] as usize] += 1;
                slot[i] = s;
                arena_order.push(s);
            }
        }

        // Fill the tape columns in tape order.
        let count = layer_start[layers] as usize;
        let mut ops = vec![Op::False; count];
        let mut lits = vec![Var(0).positive(); count];
        let mut edge_start = vec![0u32; count + 1];
        let mut edges = Vec::new();
        let mut inverse = vec![0u32; count];
        for i in 0..=root {
            if reach[i] {
                inverse[slot[i] as usize] = i as u32;
            }
        }
        for t in 0..count {
            let node = circuit.node(NnfId(inverse[t]));
            edge_start[t] = edges.len() as u32;
            ops[t] = match node {
                NnfNode::False => Op::False,
                NnfNode::True => Op::True,
                NnfNode::Lit(l) => {
                    lits[t] = *l;
                    Op::Lit
                }
                NnfNode::And(xs) => {
                    edges.extend(xs.iter().map(|x| slot[x.index()]));
                    Op::And
                }
                NnfNode::Or(xs) => {
                    edges.extend(xs.iter().map(|x| slot[x.index()]));
                    Op::Or
                }
            };
        }
        edge_start[count] = edges.len() as u32;

        debug_assert_eq!(slot[root] as usize, count - 1, "root tops the tape");
        trl_obs::counter!("kernel.tape_builds").inc();
        trl_obs::counter!("kernel.tape_nodes").add(count as u64);
        EvalTape {
            num_vars: circuit.num_vars(),
            ops,
            lits,
            edge_start,
            edges,
            layer_start,
            arena_order,
            root: (count - 1) as u32,
        }
    }

    /// Number of tape slots (reachable circuit nodes).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the tape is empty (never: even `⊥` occupies one slot).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of dependency layers.
    pub fn num_layers(&self) -> usize {
        self.layer_start.len() - 1
    }

    /// The variable universe size of the underlying circuit.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The tape's child slice for slot `i`.
    #[inline]
    fn children(&self, i: usize) -> &[u32] {
        &self.edges[self.edge_start[i] as usize..self.edge_start[i + 1] as usize]
    }

    // ------------------------------------------------------------------
    // Scalar tape kernels: one query per scan, no `NnfNode` dispatch.
    // ------------------------------------------------------------------

    /// Weighted model count: bit-identical to
    /// [`Circuit::wmc_presmoothed`](crate::circuit::Circuit).
    pub fn wmc(&self, w: &LitWeights) -> f64 {
        let mut val = vec![0.0f64; self.len()];
        for i in 0..self.len() {
            val[i] = match self.ops[i] {
                Op::False => 0.0,
                Op::True => 1.0,
                Op::Lit => w.get(self.lits[i]),
                Op::And => {
                    let mut acc = 1.0;
                    for &ch in self.children(i) {
                        acc *= val[ch as usize];
                    }
                    acc
                }
                Op::Or => {
                    let mut acc = 0.0;
                    for &ch in self.children(i) {
                        acc += val[ch as usize];
                    }
                    acc
                }
            };
        }
        val[self.root as usize]
    }

    /// Model count: equal to
    /// [`Circuit::model_count_presmoothed`](crate::circuit::Circuit).
    pub fn model_count(&self) -> u128 {
        self.count_with(|_| 1)
    }

    /// Model count under evidence: equal to
    /// [`Circuit::model_count_under_presmoothed`](crate::circuit::Circuit).
    pub fn model_count_under(&self, pa: &PartialAssignment) -> u128 {
        self.count_with(|l| (pa.eval(l) != Some(false)) as u128)
    }

    fn count_with(&self, leaf: impl Fn(Lit) -> u128) -> u128 {
        let mut val = vec![0u128; self.len()];
        for i in 0..self.len() {
            val[i] = match self.ops[i] {
                Op::False => 0,
                Op::True => 1,
                Op::Lit => leaf(self.lits[i]),
                Op::And => self
                    .children(i)
                    .iter()
                    .map(|&ch| val[ch as usize])
                    .product(),
                Op::Or => self.children(i).iter().map(|&ch| val[ch as usize]).sum(),
            };
        }
        val[self.root as usize]
    }

    /// WMC plus all literal marginals: bit-identical to
    /// [`Circuit::wmc_marginals_presmoothed`](crate::circuit::Circuit).
    pub fn marginals(&self, w: &LitWeights) -> (f64, Vec<(f64, f64)>) {
        let mut out = self.marginals_batch(&[w]);
        out.pop().expect("one lane in, one answer out")
    }

    // ------------------------------------------------------------------
    // Lane-batched kernels: LANES queries per scan.
    // ------------------------------------------------------------------

    /// Answers one WMC query per weight table, `LANES` at a time: a single
    /// tape scan fills every lane of a `[f64; LANES]` value plane, so the
    /// traversal cost is amortized across the group and the per-node
    /// arithmetic vectorizes. Answers are bit-identical to calling
    /// [`EvalTape::wmc`] per table.
    pub fn wmc_batch(&self, weights: &[&LitWeights]) -> Vec<f64> {
        record_sweeps(weights.len());
        let mut out = Vec::with_capacity(weights.len());
        let mut plane = vec![[0.0f64; LANES]; self.len()];
        for group in weights.chunks(LANES) {
            self.wmc_lanes(group, &mut plane);
            let root = &plane[self.root as usize];
            out.extend_from_slice(&root[..group.len()]);
        }
        out
    }

    /// One lane-group forward sweep; `group.len() <= LANES`, dead lanes
    /// evaluate under all-zero weights (harmlessly finite).
    fn wmc_lanes(&self, group: &[&LitWeights], plane: &mut [[f64; LANES]]) {
        debug_assert!(group.len() <= LANES && plane.len() == self.len());
        for i in 0..self.len() {
            plane[i] = self.node_lanes(i, group, |ch, lane| plane[ch][lane]);
        }
    }

    /// Computes one tape slot's `[f64; LANES]` value, reading child values
    /// through `read` (direct indexing for the sequential kernels, a
    /// cell read for the layered ones).
    #[inline]
    fn node_lanes(
        &self,
        i: usize,
        group: &[&LitWeights],
        read: impl Fn(usize, usize) -> f64,
    ) -> [f64; LANES] {
        match self.ops[i] {
            Op::False => [0.0; LANES],
            Op::True => [1.0; LANES],
            Op::Lit => {
                let l = self.lits[i];
                let mut v = [0.0; LANES];
                for (lane, w) in group.iter().enumerate() {
                    v[lane] = w.get(l);
                }
                v
            }
            Op::And => {
                let mut acc = [1.0; LANES];
                for &ch in self.children(i) {
                    for (lane, a) in acc.iter_mut().enumerate() {
                        *a *= read(ch as usize, lane);
                    }
                }
                acc
            }
            Op::Or => {
                let mut acc = [0.0; LANES];
                for &ch in self.children(i) {
                    for (lane, a) in acc.iter_mut().enumerate() {
                        *a += read(ch as usize, lane);
                    }
                }
                acc
            }
        }
    }

    /// Lane-batched model counting under evidence: one `[u128; LANES]`
    /// plane scan per group of partial assignments. Counts are exact, so
    /// agreement with the scalar kernels is plain equality.
    pub fn model_count_under_batch(&self, evidence: &[&PartialAssignment]) -> Vec<u128> {
        record_sweeps(evidence.len());
        let mut out = Vec::with_capacity(evidence.len());
        let mut plane = vec![[0u128; LANES]; self.len()];
        for group in evidence.chunks(LANES) {
            for i in 0..self.len() {
                plane[i] = match self.ops[i] {
                    Op::False => [0; LANES],
                    Op::True => [1; LANES],
                    Op::Lit => {
                        let l = self.lits[i];
                        let mut v = [0; LANES];
                        for (lane, pa) in group.iter().enumerate() {
                            v[lane] = (pa.eval(l) != Some(false)) as u128;
                        }
                        v
                    }
                    Op::And => {
                        let mut acc = [1u128; LANES];
                        for &ch in self.children(i) {
                            let v = plane[ch as usize];
                            for (lane, a) in acc.iter_mut().enumerate() {
                                *a *= v[lane];
                            }
                        }
                        acc
                    }
                    Op::Or => {
                        let mut acc = [0u128; LANES];
                        for &ch in self.children(i) {
                            let v = plane[ch as usize];
                            for (lane, a) in acc.iter_mut().enumerate() {
                                *a += v[lane];
                            }
                        }
                        acc
                    }
                };
            }
            let root = &plane[self.root as usize];
            out.extend_from_slice(&root[..group.len()]);
        }
        out
    }

    /// Lane-batched marginals: one upward plane sweep plus one downward
    /// derivative sweep per group of `LANES` weight tables. Bit-identical
    /// to [`Circuit::wmc_marginals_presmoothed`](crate::circuit::Circuit)
    /// per lane: the downward pass replays the original arena order and
    /// skips zero derivatives exactly like the scalar code.
    pub fn marginals_batch(&self, weights: &[&LitWeights]) -> Vec<(f64, Vec<(f64, f64)>)> {
        record_sweeps(weights.len());
        let n = self.num_vars;
        let mut out = Vec::with_capacity(weights.len());
        let mut plane = vec![[0.0f64; LANES]; self.len()];
        let mut der = vec![[0.0f64; LANES]; self.len()];
        let mut prefix: Vec<[f64; LANES]> = Vec::new();
        for group in weights.chunks(LANES) {
            self.wmc_lanes(group, &mut plane);
            self.derivative_lanes(&plane, &mut der, &mut prefix);
            // Per-lane literal marginal accumulation, leaves in arena order
            // (layer 0 is stably sorted, so tape order agrees).
            let mut marginals = vec![vec![(0.0f64, 0.0f64); n]; group.len()];
            self.accumulate_lit_marginals(group, &der, &mut marginals);
            let root = plane[self.root as usize];
            for (lane, m) in marginals.into_iter().enumerate() {
                out.push((root[lane], m));
            }
        }
        out
    }

    /// Folds each literal slot's weighted derivative into the per-lane
    /// marginal table (positive/negative split per variable).
    fn accumulate_lit_marginals(
        &self,
        group: &[&LitWeights],
        der: &[[f64; LANES]],
        marginals: &mut [Vec<(f64, f64)>],
    ) {
        for ((op, l), d) in self.ops.iter().zip(&self.lits).zip(der) {
            if *op != Op::Lit {
                continue;
            }
            for (lane, w) in group.iter().enumerate() {
                let m = w.get(*l) * d[lane];
                let slot = &mut marginals[lane][l.var().index()];
                if l.is_positive() {
                    slot.0 += m;
                } else {
                    slot.1 += m;
                }
            }
        }
    }

    /// The downward derivative sweep shared by the marginal kernels. The
    /// accumulation into a child's derivative is order-sensitive, so the
    /// sweep replays the reverse of the original arena order.
    fn derivative_lanes(
        &self,
        plane: &[[f64; LANES]],
        der: &mut Vec<[f64; LANES]>,
        prefix: &mut Vec<[f64; LANES]>,
    ) {
        der.clear();
        der.resize(self.len(), [0.0; LANES]);
        der[self.root as usize] = [1.0; LANES];
        for &t in self.arena_order.iter().rev() {
            let i = t as usize;
            let d = der[i];
            if d.iter().all(|&x| x == 0.0) {
                continue;
            }
            match self.ops[i] {
                Op::Or => {
                    for &ch in self.children(i) {
                        for lane in 0..LANES {
                            if d[lane] != 0.0 {
                                der[ch as usize][lane] += d[lane];
                            }
                        }
                    }
                }
                Op::And => {
                    // ∂(∏ v_i)/∂v_j via prefix and suffix products, exactly
                    // as the scalar pass: d * prefix[i] * suffix, in order.
                    let children = self.children(i);
                    let k = children.len();
                    prefix.clear();
                    prefix.resize(k + 1, [1.0; LANES]);
                    for (c, &ch) in children.iter().enumerate() {
                        let v = plane[ch as usize];
                        for lane in 0..LANES {
                            prefix[c + 1][lane] = prefix[c][lane] * v[lane];
                        }
                    }
                    let mut suffix = [1.0f64; LANES];
                    for c in (0..k).rev() {
                        let ch = children[c] as usize;
                        for lane in 0..LANES {
                            if d[lane] != 0.0 {
                                der[ch][lane] += d[lane] * prefix[c][lane] * suffix[lane];
                            }
                            suffix[lane] *= plane[ch][lane];
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Layer-parallel kernels: one lane group, many cores.
    // ------------------------------------------------------------------

    /// [`EvalTape::wmc_batch`] with each dependency layer fanned out
    /// across `threads` scoped worker threads (one barrier per layer).
    /// Intended for large circuits, where a layer holds enough nodes to
    /// amortize the synchronization; answers remain bit-identical because
    /// every node still runs the same per-node arithmetic, only the
    /// schedule changes. `threads <= 1` falls back to the sequential
    /// lane-batched kernel.
    pub fn wmc_batch_layered(&self, weights: &[&LitWeights], threads: usize) -> Vec<f64> {
        if threads <= 1 || self.len() < 2 {
            return self.wmc_batch(weights);
        }
        record_sweeps(weights.len());
        let mut plane: Vec<ValCell> = (0..self.len())
            .map(|_| ValCell(UnsafeCell::new([0.0; LANES])))
            .collect();
        let mut out = Vec::with_capacity(weights.len());
        for group in weights.chunks(LANES) {
            self.forward_lanes_layered(group, &plane, threads);
            let root = plane[self.root as usize].0.get_mut();
            out.extend_from_slice(&root[..group.len()]);
        }
        out
    }

    /// Layer-parallel marginals: the upward sweep fans out across
    /// `threads`; the order-sensitive downward sweep stays sequential so
    /// the derivative accumulation replays the arena order bit-for-bit.
    pub fn marginals_batch_layered(
        &self,
        weights: &[&LitWeights],
        threads: usize,
    ) -> Vec<(f64, Vec<(f64, f64)>)> {
        if threads <= 1 || self.len() < 2 {
            return self.marginals_batch(weights);
        }
        record_sweeps(weights.len());
        let n = self.num_vars;
        let mut cells: Vec<ValCell> = (0..self.len())
            .map(|_| ValCell(UnsafeCell::new([0.0; LANES])))
            .collect();
        let mut der = vec![[0.0f64; LANES]; self.len()];
        let mut prefix: Vec<[f64; LANES]> = Vec::new();
        let mut plane = vec![[0.0f64; LANES]; self.len()];
        let mut out = Vec::with_capacity(weights.len());
        for group in weights.chunks(LANES) {
            self.forward_lanes_layered(group, &cells, threads);
            for (dst, cell) in plane.iter_mut().zip(cells.iter_mut()) {
                *dst = *cell.0.get_mut();
            }
            self.derivative_lanes(&plane, &mut der, &mut prefix);
            let mut marginals = vec![vec![(0.0f64, 0.0f64); n]; group.len()];
            self.accumulate_lit_marginals(group, &der, &mut marginals);
            let root = plane[self.root as usize];
            for (lane, m) in marginals.into_iter().enumerate() {
                out.push((root[lane], m));
            }
        }
        out
    }

    /// The shared layered forward sweep: spawns `threads` scoped workers;
    /// worker `t` computes an equal share of each contiguous layer block,
    /// then waits on a barrier before anyone reads that layer.
    fn forward_lanes_layered(&self, group: &[&LitWeights], plane: &[ValCell], threads: usize) {
        trl_obs::counter!("kernel.layered_sweeps").inc();
        trl_obs::counter!("kernel.layered_threads").add(threads as u64);
        let barrier = Barrier::new(threads);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let barrier = &barrier;
                scope.spawn(move || {
                    for l in 0..self.num_layers() {
                        let (a, b) = (
                            self.layer_start[l] as usize,
                            self.layer_start[l + 1] as usize,
                        );
                        let len = b - a;
                        let lo = a + len * t / threads;
                        let hi = a + len * (t + 1) / threads;
                        for i in lo..hi {
                            let v = self.node_lanes(i, group, |ch, lane| {
                                // SAFETY: `ch` sits in a strictly earlier
                                // layer, fully written before the previous
                                // barrier; nobody writes it now.
                                unsafe { (*plane[ch].0.get())[lane] }
                            });
                            // SAFETY: slot `i` belongs to this thread's
                            // exclusive share of layer `l`; no other
                            // thread reads it until after the barrier.
                            unsafe { *plane[i].0.get() = v };
                        }
                        barrier.wait();
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use crate::properties::smooth;
    use trl_core::SplitMix64;

    fn v(i: u32) -> Var {
        Var(i)
    }

    /// A small smooth d-DNNF: ((x0 ∧ (x1 ∨ ¬x1)) ∨ (¬x0 ∧ x1)).
    fn small_smooth() -> Circuit {
        let mut b = CircuitBuilder::new(2);
        let x0 = b.var(v(0));
        let x1 = b.var(v(1));
        let nx0 = b.lit(v(0).negative());
        let nx1 = b.lit(v(1).negative());
        let taut = b.or_raw([x1, nx1]);
        let left = b.and([x0, taut]);
        let right = b.and([nx0, x1]);
        let root = b.or_raw([left, right]);
        b.finish(root)
    }

    fn skewed(n: usize, seed: u64) -> LitWeights {
        let mut rng = SplitMix64::new(seed);
        let mut w = LitWeights::unit(n);
        for i in 0..n as u32 {
            let p = 0.05 + 0.9 * rng.uniform();
            w.set(v(i).positive(), p);
            w.set(v(i).negative(), 1.0 - p);
        }
        w
    }

    #[test]
    fn tape_matches_scalar_queries_on_small_circuit() {
        let c = small_smooth();
        let tape = EvalTape::new(&c);
        assert_eq!(tape.num_vars(), 2);
        assert_eq!(tape.model_count(), c.model_count_presmoothed());
        let w = skewed(2, 7);
        assert_eq!(tape.wmc(&w).to_bits(), c.wmc_presmoothed(&w).to_bits());
        let (total, marg) = tape.marginals(&w);
        let (total2, marg2) = c.wmc_marginals_presmoothed(&w);
        assert_eq!(total.to_bits(), total2.to_bits());
        assert_eq!(marg, marg2);
    }

    #[test]
    fn tape_drops_unreachable_nodes() {
        let mut b = CircuitBuilder::new(2);
        let x0 = b.var(v(0));
        let x1 = b.var(v(1));
        let _orphan = b.and([x0, x1]); // never referenced by the root
        let nx0 = b.lit(v(0).negative());
        let root = b.or_raw([x0, nx0]);
        let c = b.finish(root);
        let tape = EvalTape::new(&c);
        assert!(tape.len() < c.node_count());
        assert_eq!(tape.model_count(), c.model_count_presmoothed());
    }

    #[test]
    fn batch_kernels_agree_with_scalar_tape() {
        let c = smooth(&small_smooth());
        let tape = EvalTape::new(&c);
        let weights: Vec<LitWeights> = (0..19).map(|s| skewed(2, 100 + s)).collect();
        let refs: Vec<&LitWeights> = weights.iter().collect();
        let batched = tape.wmc_batch(&refs);
        let layered = tape.wmc_batch_layered(&refs, 3);
        for (i, w) in weights.iter().enumerate() {
            let scalar = tape.wmc(w);
            assert_eq!(batched[i].to_bits(), scalar.to_bits(), "lane {i}");
            assert_eq!(layered[i].to_bits(), scalar.to_bits(), "layered {i}");
        }
        let marg_b = tape.marginals_batch(&refs);
        let marg_l = tape.marginals_batch_layered(&refs, 3);
        for (i, w) in weights.iter().enumerate() {
            let scalar = c.wmc_marginals_presmoothed(w);
            assert_eq!(marg_b[i].0.to_bits(), scalar.0.to_bits());
            assert_eq!(marg_b[i].1, scalar.1);
            assert_eq!(marg_l[i].0.to_bits(), scalar.0.to_bits());
            assert_eq!(marg_l[i].1, scalar.1);
        }
    }

    #[test]
    fn evidence_counts_match_conditioning() {
        let c = small_smooth();
        let tape = EvalTape::new(&c);
        let mut pa = PartialAssignment::new(2);
        assert_eq!(tape.model_count_under(&pa), 3);
        pa.assign(v(0).positive());
        assert_eq!(tape.model_count_under(&pa), 2);
        assert_eq!(
            tape.model_count_under(&pa),
            c.model_count_under_presmoothed(&pa)
        );
        let mut pb = PartialAssignment::new(2);
        pb.assign(v(0).negative());
        pb.assign(v(1).negative());
        let empty = PartialAssignment::new(2);
        let batch = tape.model_count_under_batch(&[&empty, &pa, &pb]);
        assert_eq!(batch, vec![3, 2, 0]);
    }

    #[test]
    fn single_node_circuits_linearize() {
        type Build = fn(&mut CircuitBuilder) -> NnfId;
        let cases: [(Build, u128); 2] = [(|b| b.true_(), 2), (|b| b.false_(), 0)];
        for (build, expect) in cases {
            let mut b = CircuitBuilder::new(1);
            let root = build(&mut b);
            let c = b.finish(root);
            let tape = EvalTape::new(&smooth(&c));
            assert!(!tape.is_empty());
            assert_eq!(tape.model_count(), expect);
            let unit = LitWeights::unit(1);
            assert_eq!(tape.wmc_batch_layered(&[&unit], 2), vec![expect as f64]);
        }
    }
}
