//! E11 — Fig. 26: prime implicants and sufficient reasons for the paper's
//! example f = (A + ¬C)(B + C)(A + B), computed two independent ways:
//! Quine–McCluskey on the truth table, and reason circuits on the OBDD.

use trl_bench::{banner, check, row, section};
use trl_core::{Assignment, Var};
use trl_obdd::Obdd;
use trl_prop::{prime_implicants, sufficient_reasons, Formula, TruthTable};
use trl_xai::ReasonCircuit;

fn fig26() -> Formula {
    let (a, b, c) = (
        Formula::var(Var(0)),
        Formula::var(Var(1)),
        Formula::var(Var(2)),
    );
    Formula::conj([
        a.clone().or(c.clone().not()),
        b.clone().or(c.clone()),
        a.or(b),
    ])
}

fn main() {
    banner(
        "E11",
        "Figure 26 (prime implicants of Boolean functions)",
        "PIs of f are {AB, AC, B¬C}; the positive instance AB¬C has \
         sufficient reasons {AB, B¬C}; the negative instance has exactly one",
    );
    let mut all_ok = true;
    let f = fig26();
    let tt = TruthTable::from_formula(&f, 3);

    section("prime implicants of f (paper: AB, AC, B¬C)");
    let pis = prime_implicants(&tt);
    for pi in &pis {
        println!("  {pi}");
    }
    all_ok &= check("three prime implicants", pis.len() == 3);
    let has = |lits: &[(u32, bool)]| {
        let cube = trl_core::Cube::from_lits(lits.iter().map(|&(v, pos)| Var(v).literal(pos)));
        pis.contains(&cube)
    };
    all_ok &= check("AB is prime", has(&[(0, true), (1, true)]));
    all_ok &= check("AC is prime", has(&[(0, true), (2, true)]));
    all_ok &= check("B¬C is prime", has(&[(1, true), (2, false)]));

    section("prime implicants of ¬f");
    let neg_pis = prime_implicants(&tt.complement());
    for pi in &neg_pis {
        println!("  {pi}");
    }
    all_ok &= check(
        "three prime implicants of the complement",
        neg_pis.len() == 3,
    );

    section("sufficient reasons, via both routes");
    let mut m = Obdd::with_num_vars(3);
    let obdd = m.build_formula(&f);
    // Positive instance AB¬C: decision 1, reasons {AB, B¬C} (paper).
    let pos = Assignment::from_values(&[true, true, false]);
    let from_tt = sufficient_reasons(&tt, &pos);
    let from_rc = ReasonCircuit::new(&mut m, obdd, &pos).sufficient_reasons();
    row("instance AB¬C (decision 1)", format!("{from_rc:?}"));
    all_ok &= check("oracle and reason circuit agree", from_tt == from_rc);
    all_ok &= check("two sufficient reasons", from_rc.len() == 2);

    // Negative instance ¬A,B,C: exactly one sufficient reason ¬A∧C
    // (exact computation; the figure's overline placement is ambiguous in
    // the scan — see EXPERIMENTS.md).
    let neg = Assignment::from_values(&[false, true, true]);
    let from_tt = sufficient_reasons(&tt, &neg);
    let from_rc = ReasonCircuit::new(&mut m, obdd, &neg).sufficient_reasons();
    row("instance ¬A,B,C (decision 0)", format!("{from_rc:?}"));
    all_ok &= check("oracle and reason circuit agree", from_tt == from_rc);
    all_ok &= check("exactly one sufficient reason (¬A∧C)", {
        from_rc.len() == 1
            && from_rc[0] == trl_core::Cube::from_lits([Var(0).negative(), Var(2).positive()])
    });

    section("exhaustive agreement across every instance");
    let mut agree = true;
    for code in 0..8u64 {
        let x = Assignment::from_index(code, 3);
        let a = sufficient_reasons(&tt, &x);
        let b = ReasonCircuit::new(&mut m, obdd, &x).sufficient_reasons();
        agree &= a == b;
    }
    all_ok &= check("all 8 instances agree across both routes", agree);

    println!();
    check("E11 overall", all_ok);
}
