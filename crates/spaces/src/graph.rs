//! Undirected graphs and grid maps whose edges are Boolean variables
//! (the encoding of Fig. 16).

use trl_core::{Assignment, Var};

/// An undirected graph with a fixed edge order; edge `i` is Boolean
/// variable `Var(i)` in every compiled circuit.
#[derive(Clone, Debug)]
pub struct Graph {
    num_nodes: usize,
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Builds a graph; edges are `(u, v)` with `u ≠ v`.
    pub fn new(num_nodes: usize, edges: Vec<(usize, usize)>) -> Self {
        assert!(edges
            .iter()
            .all(|&(u, v)| u != v && u < num_nodes && v < num_nodes));
        Graph { num_nodes, edges }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The edges, in variable order.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of edges (= number of Boolean variables).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The Boolean variable of edge `i`.
    pub fn edge_var(&self, i: usize) -> Var {
        Var(i as u32)
    }

    /// The index of the edge between two nodes, if present.
    pub fn edge_between(&self, a: usize, b: usize) -> Option<usize> {
        self.edges
            .iter()
            .position(|&(u, v)| (u, v) == (a, b) || (u, v) == (b, a))
    }

    /// Decodes an assignment into the set of chosen edge indices.
    pub fn chosen_edges(&self, a: &Assignment) -> Vec<usize> {
        (0..self.num_edges())
            .filter(|&i| a.value(self.edge_var(i)))
            .collect()
    }

    /// Encodes a set of edges as an assignment over the edge variables.
    pub fn assignment_of(&self, edges: &[usize]) -> Assignment {
        let mut a = Assignment::all_false(self.num_edges());
        for &e in edges {
            a.set(self.edge_var(e), true);
        }
        a
    }

    /// Whether the chosen edges form a simple path from `s` to `t`:
    /// connected, `s`/`t` of degree 1, all other used nodes of degree 2.
    pub fn is_simple_path(&self, a: &Assignment, s: usize, t: usize) -> bool {
        let chosen = self.chosen_edges(a);
        if chosen.is_empty() {
            return false;
        }
        let mut degree = vec![0usize; self.num_nodes];
        for &e in &chosen {
            let (u, v) = self.edges[e];
            degree[u] += 1;
            degree[v] += 1;
        }
        if degree[s] != 1 || degree[t] != 1 {
            return false;
        }
        for (n, &d) in degree.iter().enumerate() {
            if n != s && n != t && d != 0 && d != 2 {
                return false;
            }
        }
        // Connectivity: walk from s.
        let mut used: Vec<bool> = vec![false; chosen.len()];
        let mut current = s;
        let mut steps = 0;
        loop {
            let next = chosen.iter().enumerate().find(|&(k, &e)| {
                !used[k] && (self.edges[e].0 == current || self.edges[e].1 == current)
            });
            match next {
                Some((k, &e)) => {
                    used[k] = true;
                    let (u, v) = self.edges[e];
                    current = if u == current { v } else { u };
                    steps += 1;
                }
                None => break,
            }
        }
        current == t && steps == chosen.len()
    }

    /// Enumerates all simple `s`–`t` paths by DFS (the brute-force oracle;
    /// exponential). Returns each path as a sorted edge-index set.
    pub fn enumerate_simple_paths(&self, s: usize, t: usize) -> Vec<Vec<usize>> {
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.num_nodes];
        for (i, &(u, v)) in self.edges.iter().enumerate() {
            adj[u].push((v, i));
            adj[v].push((u, i));
        }
        let mut out = Vec::new();
        let mut visited = vec![false; self.num_nodes];
        let mut path = Vec::new();
        fn dfs(
            adj: &[Vec<(usize, usize)>],
            visited: &mut [bool],
            path: &mut Vec<usize>,
            out: &mut Vec<Vec<usize>>,
            current: usize,
            t: usize,
        ) {
            if current == t {
                let mut p = path.clone();
                p.sort_unstable();
                out.push(p);
                return;
            }
            visited[current] = true;
            for &(next, edge) in &adj[current] {
                if !visited[next] {
                    path.push(edge);
                    dfs(adj, visited, path, out, next, t);
                    path.pop();
                }
            }
            visited[current] = false;
        }
        dfs(&adj, &mut visited, &mut path, &mut out, s, t);
        out.sort();
        out.dedup();
        out
    }
}

/// A rectangular grid map (Fig. 16): `rows × cols` intersections, with
/// street edges between horizontal and vertical neighbors.
#[derive(Clone, Debug)]
pub struct GridMap {
    rows: usize,
    cols: usize,
    graph: Graph,
}

impl GridMap {
    /// Builds a grid; edges are ordered row by row (all edges incident to
    /// earlier rows first), which keeps the frontier of the path compiler
    /// small.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 1);
        let node = |r: usize, c: usize| r * cols + c;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((node(r, c), node(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((node(r, c), node(r + 1, c)));
                }
            }
        }
        GridMap {
            rows,
            cols,
            graph: Graph::new(rows * cols, edges),
        }
    }

    /// The node id of an intersection.
    pub fn node(&self, r: usize, c: usize) -> usize {
        assert!(r < self.rows && c < self.cols);
        r * self.cols + c
    }

    /// Grid dimensions.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_structure() {
        let g = GridMap::new(2, 3);
        // 2x3 grid: 6 nodes, horizontal 2*2=4 + vertical 3 = 7 edges.
        assert_eq!(g.graph().num_nodes(), 6);
        assert_eq!(g.graph().num_edges(), 7);
        assert!(g.graph().edge_between(g.node(0, 0), g.node(0, 1)).is_some());
        assert!(g.graph().edge_between(g.node(0, 0), g.node(1, 1)).is_none());
    }

    #[test]
    fn simple_path_recognition() {
        let g = GridMap::new(2, 2);
        let gr = g.graph();
        let (s, t) = (g.node(0, 0), g.node(1, 1));
        // Path right then down.
        let e1 = gr.edge_between(g.node(0, 0), g.node(0, 1)).unwrap();
        let e2 = gr.edge_between(g.node(0, 1), g.node(1, 1)).unwrap();
        let a = gr.assignment_of(&[e1, e2]);
        assert!(gr.is_simple_path(&a, s, t));
        // Disconnected pair of edges is not a path (Fig. 16's orange case).
        let e3 = gr.edge_between(g.node(0, 0), g.node(1, 0)).unwrap();
        let e4 = gr.edge_between(g.node(0, 1), g.node(1, 1)).unwrap();
        let bad = gr.assignment_of(&[e3, e4]);
        assert!(!gr.is_simple_path(&bad, s, t));
        // Empty set is not a path.
        assert!(!gr.is_simple_path(&gr.assignment_of(&[]), s, t));
    }

    #[test]
    fn enumerate_paths_on_2x2() {
        let g = GridMap::new(2, 2);
        let paths = g.graph().enumerate_simple_paths(g.node(0, 0), g.node(1, 1));
        // Two paths across a 2x2 grid.
        assert_eq!(paths.len(), 2);
        for p in &paths {
            let a = g.graph().assignment_of(p);
            assert!(g.graph().is_simple_path(&a, g.node(0, 0), g.node(1, 1)));
        }
    }

    #[test]
    fn enumerate_paths_on_3x3() {
        let g = GridMap::new(3, 3);
        let paths = g.graph().enumerate_simple_paths(g.node(0, 0), g.node(2, 2));
        // Known: 12 simple paths corner-to-corner on a 3x3 grid graph.
        assert_eq!(paths.len(), 12);
    }

    #[test]
    fn cycle_plus_path_is_rejected() {
        // A path with an extra 4-cycle elsewhere must not count.
        let g = GridMap::new(2, 3);
        let gr = g.graph();
        let (s, t) = (g.node(0, 0), g.node(1, 0));
        let direct = gr.edge_between(s, t).unwrap();
        let cyc = [
            gr.edge_between(g.node(0, 1), g.node(0, 2)).unwrap(),
            gr.edge_between(g.node(0, 2), g.node(1, 2)).unwrap(),
            gr.edge_between(g.node(1, 2), g.node(1, 1)).unwrap(),
            gr.edge_between(g.node(1, 1), g.node(0, 1)).unwrap(),
        ];
        let mut edges = vec![direct];
        edges.extend_from_slice(&cyc);
        let a = gr.assignment_of(&edges);
        assert!(!gr.is_simple_path(&a, s, t));
        assert!(gr.is_simple_path(&gr.assignment_of(&[direct]), s, t));
    }
}
