//! The compile-once / query-many inference engine.
//!
//! The point of knowledge compilation (§2–3 of the paper) is to pay the
//! compilation cost *once* and then answer many poly-time queries against
//! the compiled circuit. This crate turns the workspace's substrates into a
//! long-lived serving architecture around that contract:
//!
//! * [`binary`] — a versioned, checksummed binary artifact format for
//!   `trl-nnf` circuits, so a compiled d-DNNF outlives the process;
//! * [`text`] — c2d-compatible `.nnf` and SDD-library-compatible `.vtree`
//!   text formats for interop with external compilers;
//! * [`validate`] — load-time re-verification of the tractability
//!   properties (decomposability, determinism) that the poly-time queries
//!   rely on, so a corrupted or foreign artifact is rejected with a typed
//!   [`EngineError`] instead of silently answering wrong;
//! * [`prepared`] — [`PreparedCircuit`]: a circuit smoothed and linearized
//!   into a [`trl_nnf::EvalTape`] lazily, **once**, then queried many
//!   times through scalar or lane-batched kernels;
//! * [`registry`] — a bounded LRU artifact store keyed on CNF
//!   [`fingerprint`], compiling on miss and evicting by retained node count;
//! * [`artifact`] — [`Artifact`]: the typed registry entry generalizing
//!   "compiled circuit" to the paper's other two roles — learned PSDDs
//!   (role 2), compiled structured spaces (role 2), and compiled
//!   classifiers (role 3) — each with kind-salted fingerprints;
//! * [`executor`] — a fixed worker pool (std threads + channels) that
//!   groups compatible [`Query`] values per circuit and answers each group
//!   with one lane-batched kernel sweep, reporting per-query latency;
//! * [`engine`] — [`Engine`]: the registry and executor bundled behind one
//!   `Arc`-shareable handle with a [`StatsSnapshot`] counter surface — what
//!   a serving frontend (`trl-server`) holds;
//! * [`serve_bench`] — the serving benchmark behind `three-roles
//!   bench-serve` and the `bench_serve` binary (`BENCH_engine.json`),
//!   plus the kernel-comparison benchmark behind `bench_eval`
//!   (`BENCH_eval.json`).
//!
//! ```
//! use trl_engine::{Executor, PreparedCircuit, Query, Registry};
//! use trl_prop::Cnf;
//! use std::sync::Arc;
//!
//! let cnf = Cnf::parse_dimacs("p cnf 2 2\n1 2 0\n-1 2 0\n").unwrap();
//! let mut registry = Registry::new(1 << 20);
//! let circuit = registry.get_or_compile(&cnf); // compiles: miss
//! let again = registry.get_or_compile(&cnf);   // hit: same Arc
//! assert!(Arc::ptr_eq(&circuit, &again));
//!
//! let executor = Executor::new(2);
//! let outcomes = executor.run_batch(&circuit, vec![Query::ModelCount, Query::Sat]);
//! assert_eq!(outcomes[0].answer.model_count(), Some(2));
//! ```

pub mod artifact;
pub mod binary;
pub mod engine;
pub mod error;
pub mod eval_bench;
pub mod executor;
pub mod prepared;
pub mod registry;
pub mod serve_bench;
pub mod text;
pub mod validate;

pub use artifact::{
    classifier_fingerprint, psdd_fingerprint, space_fingerprint, Artifact, ArtifactKind,
};
pub use binary::{load_binary, read_binary, save_binary, write_binary, FORMAT_VERSION};
pub use engine::{Engine, StatsSnapshot};
pub use error::EngineError;
pub use eval_bench::{
    eval_benchmark, eval_benchmark_tiers, kernel_identity_sweep, EvalReport, EvalTierReport,
    EvalVariantReport, TierSpec,
};
pub use executor::{
    Executor, ParallelPolicy, Query, QueryAnswer, QueryOutcome, DEFAULT_LAYERED_MIN_NODES,
    QUERY_KINDS,
};
pub use prepared::PreparedCircuit;
pub use registry::{fingerprint, Registry, RegistryStats};
pub use serve_bench::{serving_benchmark, LatencySummary, ServeConfigReport, ServeReport};
pub use text::{
    load_nnf, load_vtree, read_nnf, read_vtree, save_nnf, save_vtree, write_nnf, write_vtree,
};
pub use validate::{check_ddnnf, Validation};
