//! Variable elimination: the "dedicated algorithms" tradition of §2.
//!
//! These routines are the exact baselines every circuit-based query in the
//! workspace is validated against: MAR and MPE by (max-)product
//! elimination, MAP by constrained elimination (sum out non-MAP variables
//! first, then maximize), and the same-decision probability by enumerating
//! the observation space with MAR as a subroutine.

use crate::factor::Factor;
use crate::net::BayesNet;

/// Evidence: fixed values for a subset of variables.
pub type Evidence = Vec<(usize, usize)>;

impl BayesNet {
    fn cpt_factor(&self, var: usize) -> Factor {
        // Factor vars must be sorted; the CPT's natural order is
        // (parents..., var) with first parent most significant. Build by
        // explicit enumeration to handle arbitrary parent orders.
        let mut fvars: Vec<usize> = self.parents(var).to_vec();
        fvars.push(var);
        let mut sorted = fvars.clone();
        sorted.sort_unstable();
        let cards: Vec<usize> = sorted.iter().map(|&v| self.cardinality(v)).collect();
        let total: usize = cards.iter().product();
        let mut data = vec![0.0; total];
        let mut values = vec![0usize; sorted.len()];
        for slot in data.iter_mut() {
            let value_of = |v: usize| values[sorted.iter().position(|&u| u == v).unwrap()];
            let pv: Vec<usize> = self.parents(var).iter().map(|&p| value_of(p)).collect();
            *slot = self.cpt_entry(var, value_of(var), &pv);
            for k in (0..sorted.len()).rev() {
                values[k] += 1;
                if values[k] < cards[k] {
                    break;
                }
                values[k] = 0;
            }
        }
        Factor::new(sorted, cards, data)
    }

    fn factors_with_evidence(&self, evidence: &Evidence) -> Vec<Factor> {
        (0..self.num_vars())
            .map(|v| {
                let mut f = self.cpt_factor(v);
                for &(ev, val) in evidence {
                    if f.vars().contains(&ev) {
                        f = f.restrict(ev, val);
                    }
                }
                f
            })
            .collect()
    }

    /// Eliminates all variables not in `keep` by summation, multiplying as
    /// needed (min-degree style: smallest resulting factor first).
    fn eliminate_all(&self, mut factors: Vec<Factor>, keep: &[usize]) -> Factor {
        let mut to_eliminate: Vec<usize> = (0..self.num_vars())
            .filter(|v| !keep.contains(v) && factors.iter().any(|f| f.vars().contains(v)))
            .collect();
        while let Some(&var) = to_eliminate.iter().min_by_key(|&&v| {
            // Greedy: eliminate the variable whose product factor is smallest.
            let mut vars: Vec<usize> = Vec::new();
            for f in &factors {
                if f.vars().contains(&v) {
                    vars.extend_from_slice(f.vars());
                }
            }
            vars.sort_unstable();
            vars.dedup();
            vars.iter().map(|&u| self.cardinality(u)).product::<usize>()
        }) {
            let (involved, rest): (Vec<Factor>, Vec<Factor>) =
                factors.into_iter().partition(|f| f.vars().contains(&var));
            let mut prod = Factor::scalar(1.0);
            for f in involved {
                prod = prod.multiply(&f);
            }
            factors = rest;
            factors.push(prod.sum_out(var));
            to_eliminate.retain(|&v| v != var);
        }
        let mut result = Factor::scalar(1.0);
        for f in factors {
            result = result.multiply(&f);
        }
        result
    }

    /// `Pr(evidence)` by variable elimination.
    pub fn pr_evidence(&self, evidence: &Evidence) -> f64 {
        self.eliminate_all(self.factors_with_evidence(evidence), &[])
            .value()
    }

    /// The posterior `Pr(var | evidence)` as a vector over the variable's
    /// values (MAR, the paper's most common query).
    pub fn posterior(&self, var: usize, evidence: &Evidence) -> Vec<f64> {
        if let Some(&(_, val)) = evidence.iter().find(|&&(v, _)| v == var) {
            let mut out = vec![0.0; self.cardinality(var)];
            out[val] = 1.0;
            return out;
        }
        let f = self.eliminate_all(self.factors_with_evidence(evidence), &[var]);
        let total: f64 = (0..self.cardinality(var)).map(|x| f.get(&[x])).sum();
        assert!(total > 0.0, "evidence has zero probability");
        (0..self.cardinality(var))
            .map(|x| f.get(&[x]) / total)
            .collect()
    }

    /// MPE: a most probable complete instantiation consistent with the
    /// evidence, and its (joint, unnormalized) probability.
    pub fn mpe(&self, evidence: &Evidence) -> (Vec<usize>, f64) {
        // Max-product value, then greedy argmax by fixing one variable at a
        // time and re-evaluating (simple and exact).
        let value = self.max_product(evidence);
        let mut fixed: Evidence = evidence.clone();
        for v in 0..self.num_vars() {
            if fixed.iter().any(|&(u, _)| u == v) {
                continue;
            }
            for val in 0..self.cardinality(v) {
                fixed.push((v, val));
                if self.max_product(&fixed) >= value - 1e-12 * value.abs() - 1e-300 {
                    break;
                }
                fixed.pop();
            }
        }
        let mut inst = vec![0usize; self.num_vars()];
        for &(v, val) in &fixed {
            inst[v] = val;
        }
        (inst, value)
    }

    fn max_product(&self, evidence: &Evidence) -> f64 {
        let mut factors = self.factors_with_evidence(evidence);
        for v in 0..self.num_vars() {
            if evidence.iter().any(|&(u, _)| u == v) {
                continue;
            }
            if !factors.iter().any(|f| f.vars().contains(&v)) {
                continue;
            }
            let (involved, rest): (Vec<Factor>, Vec<Factor>) =
                factors.into_iter().partition(|f| f.vars().contains(&v));
            let mut prod = Factor::scalar(1.0);
            for f in involved {
                prod = prod.multiply(&f);
            }
            factors = rest;
            factors.push(prod.max_out(v));
        }
        let mut result = Factor::scalar(1.0);
        for f in factors {
            result = result.multiply(&f);
        }
        result.value()
    }

    /// MAP: a most probable instantiation of `map_vars` given the evidence,
    /// and its (unnormalized) probability `Pr(map_vars, evidence)`.
    ///
    /// Exact constrained elimination: all other variables are summed out
    /// first, then the MAP variables maximized (the NP^PP query, \[64\]).
    pub fn map(&self, map_vars: &[usize], evidence: &Evidence) -> (Vec<usize>, f64) {
        let value = self.map_value(map_vars, evidence);
        let mut fixed: Evidence = evidence.clone();
        let mut assignment = Vec::with_capacity(map_vars.len());
        for &v in map_vars {
            for val in 0..self.cardinality(v) {
                fixed.push((v, val));
                let remaining: Vec<usize> = map_vars
                    .iter()
                    .copied()
                    .filter(|u| !fixed.iter().any(|&(w, _)| w == *u))
                    .collect();
                if self.map_value(&remaining, &fixed) >= value - 1e-12 * value.abs() - 1e-300 {
                    assignment.push(val);
                    break;
                }
                fixed.pop();
            }
        }
        (assignment, value)
    }

    fn map_value(&self, map_vars: &[usize], evidence: &Evidence) -> f64 {
        // Sum out everything else, then max out the MAP variables.
        let summed = self.eliminate_all(self.factors_with_evidence(evidence), map_vars);
        let mut f = summed;
        for &v in map_vars {
            if f.vars().contains(&v) {
                f = f.max_out(v);
            }
        }
        f.value()
    }

    /// The same-decision probability (SDP, \[18, 31\]): the probability that
    /// the threshold decision `Pr(d = d_val | e, Y) ≥ threshold` agrees with
    /// the current decision on `Pr(d = d_val | e)`, after observing the
    /// variables `observables`.
    ///
    /// Computed by enumerating the observation space with MAR as a
    /// subroutine — exponential in `observables.len()`, the PP^PP baseline.
    pub fn sdp(
        &self,
        d: usize,
        d_val: usize,
        threshold: f64,
        observables: &[usize],
        evidence: &Evidence,
    ) -> f64 {
        let current = self.posterior(d, evidence)[d_val] >= threshold;
        let mut total = 0.0;
        let pr_e = self.pr_evidence(evidence);
        assert!(pr_e > 0.0, "evidence has zero probability");
        let mut stack: Vec<(usize, Evidence)> = vec![(0, evidence.clone())];
        while let Some((i, ev)) = stack.pop() {
            if i == observables.len() {
                let pr_ye = self.pr_evidence(&ev);
                if pr_ye == 0.0 {
                    continue;
                }
                let decision = self.posterior(d, &ev)[d_val] >= threshold;
                if decision == current {
                    total += pr_ye / pr_e;
                }
                continue;
            }
            for val in 0..self.cardinality(observables[i]) {
                let mut next = ev.clone();
                next.push((observables[i], val));
                stack.push((i + 1, next));
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The chain/fork network of Fig. 4: A → B, A → C.
    fn abc() -> BayesNet {
        crate::models::abc()
    }

    fn brute_pr(bn: &BayesNet, pred: impl Fn(&[usize]) -> bool) -> f64 {
        bn.instantiations()
            .filter(|i| pred(i))
            .map(|i| bn.joint(&i))
            .sum()
    }

    #[test]
    fn pr_evidence_matches_brute_force() {
        let bn = abc();
        assert!((bn.pr_evidence(&vec![]) - 1.0).abs() < 1e-9);
        let p = bn.pr_evidence(&vec![(1, 1)]);
        let brute = brute_pr(&bn, |i| i[1] == 1);
        assert!((p - brute).abs() < 1e-9);
        let p = bn.pr_evidence(&vec![(1, 1), (2, 0)]);
        let brute = brute_pr(&bn, |i| i[1] == 1 && i[2] == 0);
        assert!((p - brute).abs() < 1e-9);
    }

    #[test]
    fn posterior_matches_brute_force() {
        let bn = abc();
        let post = bn.posterior(0, &vec![(1, 1)]);
        let num = brute_pr(&bn, |i| i[0] == 1 && i[1] == 1);
        let den = brute_pr(&bn, |i| i[1] == 1);
        assert!((post[1] - num / den).abs() < 1e-9);
        assert!((post[0] + post[1] - 1.0).abs() < 1e-12);
        // Evidence on the queried variable short-circuits.
        assert_eq!(bn.posterior(1, &vec![(1, 0)]), vec![1.0, 0.0]);
    }

    #[test]
    fn mpe_matches_exhaustive_search() {
        let bn = abc();
        let (inst, value) = bn.mpe(&vec![]);
        let (best_inst, best_val) = bn
            .instantiations()
            .map(|i| (i.clone(), bn.joint(&i)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        assert!((value - best_val).abs() < 1e-12);
        assert_eq!(inst, best_inst);
        // With evidence.
        let (inst, value) = bn.mpe(&vec![(2, 0)]);
        let best = bn
            .instantiations()
            .filter(|i| i[2] == 0)
            .map(|i| bn.joint(&i))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((value - best).abs() < 1e-12);
        assert_eq!(inst[2], 0);
        assert!((bn.joint(&inst) - best).abs() < 1e-12);
    }

    #[test]
    fn map_matches_exhaustive_search() {
        let bn = abc();
        // MAP over {B} with evidence C=1: max_b Pr(b, C=1).
        let (assignment, value) = bn.map(&[1], &vec![(2, 1)]);
        let mut best = (0usize, f64::NEG_INFINITY);
        for b in 0..2 {
            let p = brute_pr(&bn, |i| i[1] == b && i[2] == 1);
            if p > best.1 {
                best = (b, p);
            }
        }
        assert!((value - best.1).abs() < 1e-12);
        assert_eq!(assignment, vec![best.0]);
        // MAP over {A, B} without evidence.
        let (assignment, value) = bn.map(&[0, 1], &vec![]);
        let mut best = (vec![0, 0], f64::NEG_INFINITY);
        for a in 0..2 {
            for b in 0..2 {
                let p = brute_pr(&bn, |i| i[0] == a && i[1] == b);
                if p > best.1 {
                    best = (vec![a, b], p);
                }
            }
        }
        assert!((value - best.1).abs() < 1e-12);
        assert_eq!(assignment, best.0);
    }

    #[test]
    fn sdp_basic_properties() {
        let bn = abc();
        // Decision: Pr(A=1 | ·) ≥ 0.5; observe B. SDP must lie in [0,1].
        let sdp = bn.sdp(0, 1, 0.5, &[1], &vec![]);
        assert!((0.0..=1.0).contains(&sdp));
        // Observing nothing: the decision trivially sticks.
        let sdp_none = bn.sdp(0, 1, 0.5, &[], &vec![]);
        assert!((sdp_none - 1.0).abs() < 1e-12);
        // Brute-force check with one observable.
        let current = bn.posterior(0, &vec![])[1] >= 0.5;
        let mut expected = 0.0;
        for b in 0..2 {
            let ev = vec![(1, b)];
            let pr = bn.pr_evidence(&ev);
            let dec = bn.posterior(0, &ev)[1] >= 0.5;
            if dec == current {
                expected += pr;
            }
        }
        assert!((sdp - expected).abs() < 1e-9);
    }
}
