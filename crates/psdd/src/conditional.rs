//! Conditional PSDDs \[78\] (Figs. 21 and 24 of the paper).
//!
//! A conditional PSDD represents a *conditional space*: a distribution over
//! variables `C` whose support depends on the state of other variables `P`.
//! It has two components — an SDD over `P` whose evaluation *selects* a
//! PSDD root (the yellow selector of Fig. 21), and the selected PSDDs over
//! `C` (the green multi-rooted component). States of `P` that select the
//! same residual knowledge share one PSDD, exactly as `p₁`/`p₂` are shared
//! in Fig. 24.
//!
//! Conditional PSDDs quantify the cluster DAGs of hierarchical maps
//! (Fig. 19); `trl-spaces` assembles them into structured Bayesian
//! networks.

use crate::structure::Psdd;
use trl_core::{Assignment, Error, Result};
use trl_sdd::{SddManager, SddRef};

/// A conditional PSDD: a partition of the parent space into classes, each
/// selecting a PSDD over the child variables.
pub struct ConditionalPsdd {
    /// Manager of the selector SDDs (over parent variables).
    selector: SddManager,
    /// `(class, index into distributions)`: the classes partition the
    /// parent space; several classes may share a distribution.
    classes: Vec<(SddRef, usize)>,
    /// The multi-rooted PSDD component.
    distributions: Vec<Psdd>,
}

impl ConditionalPsdd {
    /// Builds a conditional PSDD from selector classes. The classes must
    /// partition the parent space: pairwise inconsistent and exhaustive.
    pub fn new(
        selector: SddManager,
        classes: Vec<(SddRef, usize)>,
        distributions: Vec<Psdd>,
    ) -> Result<Self> {
        let mut m = selector;
        // Verify the partition property.
        let mut union = SddRef::False;
        for (i, &(c, d)) in classes.iter().enumerate() {
            if c == SddRef::False {
                return Err(Error::Invalid("empty selector class".into()));
            }
            if d >= distributions.len() {
                return Err(Error::Invalid(format!(
                    "class {i} selects missing distribution {d}"
                )));
            }
            for &(c2, _) in &classes[i + 1..] {
                if m.and(c, c2) != SddRef::False {
                    return Err(Error::Invalid(format!(
                        "selector classes overlap (class {i})"
                    )));
                }
            }
            union = m.or(union, c);
        }
        if union != SddRef::True {
            return Err(Error::Invalid(
                "selector classes do not cover the parent space".into(),
            ));
        }
        Ok(ConditionalPsdd {
            selector: m,
            classes,
            distributions,
        })
    }

    /// Number of selector classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// The distributions (multi-rooted PSDD component).
    pub fn distributions(&self) -> &[Psdd] {
        &self.distributions
    }

    /// The index of the class selected by a parent assignment
    /// (Fig. 24's evaluation of the SDD component).
    pub fn class_of(&self, parents: &Assignment) -> usize {
        self.classes
            .iter()
            .position(|&(c, _)| self.selector.eval(c, parents))
            .expect("classes partition the parent space")
    }

    /// The PSDD selected by a parent assignment.
    pub fn select(&self, parents: &Assignment) -> &Psdd {
        let class = self.class_of(parents);
        &self.distributions[self.classes[class].1]
    }

    /// `Pr(children | parents)`.
    pub fn conditional_probability(&self, children: &Assignment, parents: &Assignment) -> f64 {
        self.select(parents).probability(children)
    }

    /// Learns all class distributions from complete `(parents, children)`
    /// data: each example trains the PSDD its parent state selects, in one
    /// pass (the modular learning of \[78\]).
    ///
    /// Distributions shared between classes pool the data of those classes.
    pub fn learn(&mut self, data: &[(Assignment, Assignment, f64)], alpha: f64) -> f64 {
        let mut per_dist: Vec<Vec<(Assignment, f64)>> = vec![Vec::new(); self.distributions.len()];
        let mut outside = 0.0;
        for (parents, children, w) in data {
            let class = self.class_of(parents);
            let d = self.classes[class].1;
            if self.distributions[d].supports(children) {
                per_dist[d].push((children.clone(), *w));
            } else {
                outside += w;
            }
        }
        for (d, dataset) in per_dist.into_iter().enumerate() {
            self.distributions[d].learn(&dataset, alpha);
        }
        outside
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trl_core::Var;
    use trl_prop::Formula;

    fn v(i: u32) -> Var {
        Var(i)
    }

    /// The Fig. 21 example: parents {A=0, B=1}, children {X=2, Y=3}.
    /// State (a₀, b₀) owns the space x₀ ∨ y₀ (i.e. ¬X ∨ ¬Y); all other
    /// parent states own x₁ ∨ y₁ (X ∨ Y).
    fn fig21() -> ConditionalPsdd {
        let mut selector = SddManager::balanced(4);
        let a0b0 = {
            let f = Formula::var(v(0)).not().and(Formula::var(v(1)).not());
            selector.build_formula(&f)
        };
        let rest = selector.negate(a0b0);

        // Child distributions range over the child variables only.
        let dist = |f: Formula| {
            let mut m = SddManager::new(trl_vtree::Vtree::balanced(&[v(2), v(3)]));
            let r = m.build_formula(&f);
            Psdd::from_sdd(&m, r)
        };
        let p2 = dist(Formula::var(v(2)).not().or(Formula::var(v(3)).not()));
        let p1 = dist(Formula::var(v(2)).or(Formula::var(v(3))));
        ConditionalPsdd::new(selector, vec![(a0b0, 0), (rest, 1)], vec![p2, p1]).unwrap()
    }

    fn pa(a: bool, b: bool) -> Assignment {
        Assignment::from_values(&[a, b, false, false])
    }

    fn ch(x: bool, y: bool) -> Assignment {
        Assignment::from_values(&[false, false, x, y])
    }

    #[test]
    fn selector_routes_to_the_right_distribution() {
        let c = fig21();
        assert_eq!(c.class_of(&pa(false, false)), 0);
        assert_eq!(c.class_of(&pa(true, false)), 1);
        assert_eq!(c.class_of(&pa(false, true)), 1);
        assert_eq!(c.class_of(&pa(true, true)), 1);
    }

    #[test]
    fn conditional_distributions_normalize_per_parent_state() {
        let c = fig21();
        for (a, b) in [(false, false), (true, false), (false, true), (true, true)] {
            let total: f64 = [(false, false), (false, true), (true, false), (true, true)]
                .into_iter()
                .map(|(x, y)| c.conditional_probability(&ch(x, y), &pa(a, b)))
                .sum();
            assert!((total - 1.0).abs() < 1e-12, "at ({a},{b})");
        }
    }

    #[test]
    fn supports_differ_by_class() {
        let c = fig21();
        // Under (a₀,b₀): X∧Y is impossible; otherwise ¬X∧¬Y is impossible.
        assert_eq!(
            c.conditional_probability(&ch(true, true), &pa(false, false)),
            0.0
        );
        assert!(c.conditional_probability(&ch(false, false), &pa(false, false)) > 0.0);
        assert_eq!(
            c.conditional_probability(&ch(false, false), &pa(true, true)),
            0.0
        );
        assert!(c.conditional_probability(&ch(true, true), &pa(true, true)) > 0.0);
    }

    #[test]
    fn overlapping_or_incomplete_classes_rejected() {
        let selector = SddManager::balanced(2);
        let a = selector.literal(v(0).positive());
        let dist = {
            let m = SddManager::balanced(2);
            Psdd::from_sdd(&m, SddRef::True)
        };
        // Incomplete: only covers A.
        let err = ConditionalPsdd::new(selector, vec![(a, 0)], vec![dist]);
        assert!(err.is_err());
        // Overlapping: A and ⊤.
        let selector = SddManager::balanced(2);
        let a = selector.literal(v(0).positive());
        let dist = {
            let m = SddManager::balanced(2);
            Psdd::from_sdd(&m, SddRef::True)
        };
        let err = ConditionalPsdd::new(selector, vec![(a, 0), (SddRef::True, 0)], vec![dist]);
        assert!(err.is_err());
    }

    #[test]
    fn learning_partitions_data_by_class() {
        let mut c = fig21();
        // Feed data: under (a0,b0) children always (¬X, Y); otherwise (X, Y).
        let data = vec![
            (pa(false, false), ch(false, true), 10.0),
            (pa(true, true), ch(true, true), 20.0),
            (pa(true, false), ch(true, true), 5.0),
        ];
        let outside = c.learn(&data, 0.0);
        assert_eq!(outside, 0.0);
        assert!(
            (c.conditional_probability(&ch(false, true), &pa(false, false)) - 1.0).abs() < 1e-12
        );
        assert!((c.conditional_probability(&ch(true, true), &pa(true, false)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn off_support_children_counted_as_outside() {
        let mut c = fig21();
        let data = vec![(pa(false, false), ch(true, true), 3.0)]; // impossible under class 0
        let outside = c.learn(&data, 0.0);
        assert_eq!(outside, 3.0);
    }
}
