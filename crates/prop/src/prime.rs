//! Prime implicants and sufficient reasons (PI-explanations).
//!
//! §5.1 of the paper grounds the semantics of explanations in prime
//! implicants: a *sufficient reason* for a decision `f(x) = 1` is a prime
//! implicant of `f` compatible with the instance `x`; for negative decisions
//! one uses the complement `¬f` (Fig. 26).
//!
//! This module computes prime implicants exactly by the Quine–McCluskey
//! merging procedure on a dense [`TruthTable`]. It is the semantic oracle;
//! the scalable route — complete-reason circuits extracted from tractable
//! circuits in linear time \[33\] — lives in `trl-xai` and is tested against
//! this module.

use crate::truthtable::TruthTable;
use trl_core::{Assignment, Cube, Var};

/// An implicant over `n ≤ 24` variables: `mask` marks the fixed variables,
/// `values` their polarities (bits outside `mask` are zero).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
struct Term {
    mask: u32,
    values: u32,
}

impl Term {
    fn to_cube(self) -> Cube {
        Cube::from_lits(
            (0..32)
                .filter(|i| self.mask >> i & 1 == 1)
                .map(|i| Var(i).literal(self.values >> i & 1 == 1)),
        )
    }
}

/// Computes all prime implicants of `f`, returned as sorted [`Cube`]s.
///
/// An implicant is a term that entails `f`; it is *prime* if removing any
/// literal breaks entailment. The constant-true function has the single
/// prime implicant `⊤` (the empty cube); the constant-false function has
/// none.
pub fn prime_implicants(f: &TruthTable) -> Vec<Cube> {
    let n = f.num_vars();
    assert!(
        n <= 24,
        "prime implicant computation limited to 24 variables"
    );
    if !f.is_sat() {
        return Vec::new();
    }

    // Level 0: minterms (all variables fixed).
    let full_mask: u32 = if n == 32 { !0 } else { (1u32 << n) - 1 };
    let mut current: Vec<Term> = f
        .models()
        .map(|code| Term {
            mask: full_mask,
            values: code as u32,
        })
        .collect();
    let mut primes: Vec<Term> = Vec::new();

    while !current.is_empty() {
        current.sort_unstable();
        current.dedup();
        let mut merged = vec![false; current.len()];
        let mut next: Vec<Term> = Vec::new();
        // Index terms by mask so we only compare merge candidates.
        for i in 0..current.len() {
            for j in i + 1..current.len() {
                let (a, b) = (current[i], current[j]);
                if a.mask != b.mask {
                    continue;
                }
                let diff = a.values ^ b.values;
                if diff.count_ones() == 1 {
                    merged[i] = true;
                    merged[j] = true;
                    next.push(Term {
                        mask: a.mask & !diff,
                        values: a.values & !diff,
                    });
                }
            }
        }
        for (i, t) in current.iter().enumerate() {
            if !merged[i] {
                primes.push(*t);
            }
        }
        current = next;
    }

    primes.sort_unstable();
    primes.dedup();
    let mut cubes: Vec<Cube> = primes.into_iter().map(Term::to_cube).collect();
    cubes.sort();
    cubes
}

/// The sufficient reasons (PI-explanations \[82\], "sufficient reasons" \[33\])
/// for the decision `f(x)`:
///
/// * if `f(x) = 1`, the prime implicants of `f` consistent with `x`;
/// * if `f(x) = 0`, the prime implicants of `¬f` consistent with `x`.
pub fn sufficient_reasons(f: &TruthTable, x: &Assignment) -> Vec<Cube> {
    let target = if f.eval(x) { f.clone() } else { f.complement() };
    prime_implicants(&target)
        .into_iter()
        .filter(|c| c.consistent_with(x))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;
    use trl_core::Lit;

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn cube(lits: &[Lit]) -> Cube {
        Cube::from_lits(lits.iter().copied())
    }

    /// The paper's Fig. 26 example: f = (A + ¬C)(B + C)(A + B) with
    /// A=x0, B=x1, C=x2.
    fn fig26() -> TruthTable {
        let (a, b, c) = (Formula::var(v(0)), Formula::var(v(1)), Formula::var(v(2)));
        let f = Formula::conj([
            a.clone().or(c.clone().not()),
            b.clone().or(c.clone()),
            a.or(b),
        ]);
        TruthTable::from_formula(&f, 3)
    }

    #[test]
    fn fig26_prime_implicants_of_f() {
        // Paper: prime implicants are AB, AC, B¬C.
        let pis = prime_implicants(&fig26());
        let expected = vec![
            cube(&[v(0).positive(), v(1).positive()]),
            cube(&[v(0).positive(), v(2).positive()]),
            cube(&[v(1).positive(), v(2).negative()]),
        ];
        let mut expected = expected;
        expected.sort();
        assert_eq!(pis, expected);
    }

    #[test]
    fn fig26_prime_implicants_of_complement() {
        // Paper: prime implicants of ¬f are ¬A¬B, ¬A¬C... (three of them,
        // the one compatible with ¬A¬BC being ¬AC per the figure text "¬AC").
        let pis = prime_implicants(&fig26().complement());
        assert_eq!(pis.len(), 3);
        // Every prime implicant must entail ¬f.
        let negf = fig26().complement();
        for pi in &pis {
            for code in 0..8u64 {
                let a = Assignment::from_index(code, 3);
                if pi.consistent_with(&a) {
                    assert!(negf.eval(&a), "{pi:?} not an implicant of ¬f");
                }
            }
        }
    }

    #[test]
    fn fig26_sufficient_reasons_positive_instance() {
        // Instance AB¬C → decision 1; sufficient reasons AB and B¬C.
        let f = fig26();
        let x = Assignment::from_values(&[true, true, false]);
        assert!(f.eval(&x));
        let reasons = sufficient_reasons(&f, &x);
        let mut expected = vec![
            cube(&[v(0).positive(), v(1).positive()]),
            cube(&[v(1).positive(), v(2).negative()]),
        ];
        expected.sort();
        assert_eq!(reasons, expected);
    }

    #[test]
    fn fig26_sufficient_reasons_negative_instance() {
        // The paper's negative instance has exactly one sufficient reason,
        // ¬A∧C. Exact computation shows the prime implicants of ¬f are
        // {¬A¬B, ¬AC, ¬B¬C}, so that instance is ¬A,B,C (the figure's
        // overline placement is ambiguous in the scan; see EXPERIMENTS.md).
        let f = fig26();
        let x = Assignment::from_values(&[false, true, true]);
        assert!(!f.eval(&x));
        let reasons = sufficient_reasons(&f, &x);
        assert_eq!(reasons, vec![cube(&[v(0).negative(), v(2).positive()])]);
    }

    #[test]
    fn constants_edge_cases() {
        let t = TruthTable::constant(2, true);
        assert_eq!(prime_implicants(&t), vec![Cube::empty()]);
        let f = TruthTable::constant(2, false);
        assert!(prime_implicants(&f).is_empty());
    }

    #[test]
    fn primes_are_implicants_and_minimal() {
        // Random-ish function: check the defining properties exhaustively.
        let f = TruthTable::from_fn(4, |a| {
            let bits: u32 = (0..4).map(|i| (a.value(v(i)) as u32) << i).sum();
            [0b0011, 0b0111, 0b1111, 0b1010, 0b1000, 0b0001].contains(&bits)
        });
        let pis = prime_implicants(&f);
        assert!(!pis.is_empty());
        for pi in &pis {
            // Implicant: every consistent assignment is a model.
            for code in 0..16u64 {
                let a = Assignment::from_index(code, 4);
                if pi.consistent_with(&a) {
                    assert!(f.eval(&a));
                }
            }
            // Prime: dropping any literal breaks entailment.
            for drop in 0..pi.len() {
                let weaker = Cube::from_lits(
                    pi.literals()
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != drop)
                        .map(|(_, &l)| l),
                );
                let violated = (0..16u64).any(|code| {
                    let a = Assignment::from_index(code, 4);
                    weaker.consistent_with(&a) && !f.eval(&a)
                });
                assert!(violated, "{pi:?} is not prime (can drop {drop})");
            }
        }
    }

    #[test]
    fn union_of_primes_covers_function() {
        let f = TruthTable::from_fn(3, |a| a.value(v(0)) != a.value(v(2)));
        let pis = prime_implicants(&f);
        for code in 0..8u64 {
            let a = Assignment::from_index(code, 3);
            let covered = pis.iter().any(|pi| pi.consistent_with(&a));
            assert_eq!(covered, f.eval(&a));
        }
    }
}
