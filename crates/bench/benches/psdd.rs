//! Bench: PSDD learning and inference — the "linear in the PSDD" claims
//! of §4.

use trl_bench::harness::Harness;
use trl_core::{Assignment, PartialAssignment, Var};
use trl_psdd::Psdd;
use trl_sdd::SddManager;
use trl_spaces::{compile_simple_paths, GridMap};
use trl_vtree::Vtree;

fn route_psdd() -> (Psdd, Vec<(Assignment, f64)>) {
    let g = GridMap::new(4, 4);
    let (s, t) = (g.node(0, 0), g.node(3, 3));
    let (obdd, root) = compile_simple_paths(g.graph(), s, t);
    let m_edges = g.graph().num_edges();
    let mut sdd = SddManager::new(Vtree::right_linear(
        &(0..m_edges as u32).map(Var).collect::<Vec<_>>(),
    ));
    let support = sdd.from_obdd(&obdd, root);
    let psdd = Psdd::from_sdd(&sdd, support);
    let data: Vec<(Assignment, f64)> = g
        .graph()
        .enumerate_simple_paths(s, t)
        .into_iter()
        .map(|p| (g.graph().assignment_of(&p), 1.0))
        .collect();
    (psdd, data)
}

fn bench_psdd(h: &Harness) {
    let (mut psdd, data) = route_psdd();
    let mut group = h.group("psdd");
    group.bench_function("learn-184-routes", || psdd.learn(&data, 0.1));
    psdd.learn(&data, 0.1);
    let example = data[0].0.clone();
    group.bench_function("probability", || psdd.probability(&example));
    let mut e = PartialAssignment::new(24);
    e.assign(Var(0).positive());
    group.bench_function("marginal", || psdd.marginal(&e));
    group.bench_function("mpe", || psdd.mpe(&PartialAssignment::new(24)));
}

fn main() {
    let h = Harness::from_env();
    bench_psdd(&h);
}
