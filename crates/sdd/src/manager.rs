//! The SDD manager: unique table, apply, negation, conditioning.

use trl_core::{Cube, FxHashMap, Lit, Var};
use trl_prop::{Cnf, Formula};
use trl_vtree::{Vtree, VtreeNodeId};

/// A handle to an SDD owned by an [`SddManager`].
///
/// Handles are canonical within a manager: equal handles ⟺ equal functions
/// (for the manager's vtree).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SddRef {
    /// The constant `⊥`.
    False,
    /// The constant `⊤`.
    True,
    /// A literal (terminal SDD at the variable's vtree leaf).
    Literal(Lit),
    /// A decision node, by index into the manager's node arena.
    Decision(u32),
}

impl SddRef {
    fn key(self) -> u64 {
        match self {
            SddRef::False => 0,
            SddRef::True => 1,
            SddRef::Literal(l) => 2 + l.code() as u64,
            SddRef::Decision(i) => (1 << 40) + i as u64,
        }
    }
}

/// A prime–sub pair: one input of the multiplexer or-gate of Fig. 9.
pub type Element = (SddRef, SddRef);

#[derive(Clone, Debug)]
pub(crate) struct DecisionNode {
    /// The (internal) vtree node this decision is normalized for.
    pub vtree: VtreeNodeId,
    /// The (prime, sub) pairs; primes partition the left-subtree space.
    pub elements: Box<[Element]>,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
}

/// Counters and shape of the manager's apply cache.
#[derive(Clone, Copy, Debug)]
pub struct ApplyCacheStats {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that fell through to a fresh apply.
    pub misses: u64,
    /// Current number of slots.
    pub capacity: usize,
    /// Current generation (bumped by [`SddManager::clear_apply_cache`]).
    pub generation: u32,
}

#[derive(Clone, Copy)]
struct ApplyEntry {
    stamp: u32,
    op: Op,
    a: SddRef,
    b: SddRef,
    result: SddRef,
}

const VACANT: ApplyEntry = ApplyEntry {
    stamp: 0,
    op: Op::And,
    a: SddRef::False,
    b: SddRef::False,
    result: SddRef::False,
};

/// Bounded, generation-stamped apply cache.
///
/// Apply results are memoized in a direct-mapped, power-of-two table keyed
/// on the canonicalized `(op, min, max)` operand pair. A colliding insert
/// overwrites its slot — recomputing a lost entry is always sound — so the
/// table never chains or rehashes, and probes are one slot read. Clearing
/// bumps a generation stamp instead of touching memory (stale entries are
/// lazily overwritten). The table doubles whenever the manager's unique
/// table outgrows it — a load-factor-one policy against live decision
/// nodes — and is capped so a pathological apply cannot exhaust memory.
struct ApplyCache {
    entries: Vec<ApplyEntry>,
    stamp: u32,
    hits: u64,
    misses: u64,
}

impl ApplyCache {
    const INITIAL_CAPACITY: usize = 1 << 10;
    const MAX_CAPACITY: usize = 1 << 22;

    fn new() -> Self {
        ApplyCache {
            entries: vec![VACANT; Self::INITIAL_CAPACITY],
            stamp: 1,
            hits: 0,
            misses: 0,
        }
    }

    fn slot(&self, op: Op, a: SddRef, b: SddRef) -> usize {
        fn mix64(x: u64) -> u64 {
            let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let tag = match op {
            Op::And => 0u64,
            Op::Or => 1u64,
        };
        let x = a.key() ^ b.key().rotate_left(21) ^ (tag << 62);
        mix64(x) as usize & (self.entries.len() - 1)
    }

    fn get(&mut self, op: Op, a: SddRef, b: SddRef) -> Option<SddRef> {
        let e = self.entries[self.slot(op, a, b)];
        if e.stamp == self.stamp && e.op == op && e.a == a && e.b == b {
            self.hits += 1;
            Some(e.result)
        } else {
            self.misses += 1;
            None
        }
    }

    fn insert(&mut self, op: Op, a: SddRef, b: SddRef, result: SddRef) {
        let s = self.slot(op, a, b);
        self.entries[s] = ApplyEntry {
            stamp: self.stamp,
            op,
            a,
            b,
            result,
        };
    }

    /// Doubles the table while the unique table is larger (contents are
    /// discarded; they repopulate on the fly).
    fn sync_capacity(&mut self, live_nodes: usize) {
        let mut cap = self.entries.len();
        while cap < Self::MAX_CAPACITY && live_nodes > cap {
            cap *= 2;
        }
        if cap != self.entries.len() {
            self.entries = vec![VACANT; cap];
        }
    }

    fn clear(&mut self) {
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // Generation counter wrapped: scrub for real, once per 2³² clears.
            self.entries.fill(VACANT);
            self.stamp = 1;
        }
    }
}

/// An SDD manager over a fixed vtree.
pub struct SddManager {
    vtree: Vtree,
    pub(crate) nodes: Vec<DecisionNode>,
    unique: FxHashMap<(VtreeNodeId, Box<[Element]>), u32>,
    apply_cache: ApplyCache,
    neg_cache: FxHashMap<u32, SddRef>,
}

impl SddManager {
    /// Creates a manager over the given vtree.
    pub fn new(vtree: Vtree) -> Self {
        SddManager {
            vtree,
            nodes: Vec::new(),
            unique: FxHashMap::default(),
            apply_cache: ApplyCache::new(),
            neg_cache: FxHashMap::default(),
        }
    }

    /// A manager over variables `0..n` with a balanced vtree.
    pub fn balanced(n: usize) -> Self {
        SddManager::new(Vtree::balanced(&(0..n as u32).map(Var).collect::<Vec<_>>()))
    }

    /// A manager over variables `0..n` with a right-linear vtree
    /// (SDD ≡ OBDD, Fig. 10c).
    pub fn right_linear(n: usize) -> Self {
        SddManager::new(Vtree::right_linear(
            &(0..n as u32).map(Var).collect::<Vec<_>>(),
        ))
    }

    /// The manager's vtree.
    pub fn vtree(&self) -> &Vtree {
        &self.vtree
    }

    /// The constant of a truth value.
    pub fn constant(&self, value: bool) -> SddRef {
        if value {
            SddRef::True
        } else {
            SddRef::False
        }
    }

    /// The terminal SDD of a literal.
    pub fn literal(&self, lit: Lit) -> SddRef {
        assert!(
            self.vtree.contains_var(lit.var()),
            "{} is not in this manager's vtree",
            lit.var()
        );
        SddRef::Literal(lit)
    }

    /// The vtree node an SDD is normalized for (`None` for constants).
    pub fn vtree_of(&self, f: SddRef) -> Option<VtreeNodeId> {
        match f {
            SddRef::False | SddRef::True => None,
            SddRef::Literal(l) => Some(self.vtree.leaf_of_var(l.var())),
            SddRef::Decision(i) => Some(self.nodes[i as usize].vtree),
        }
    }

    /// The elements of a decision node. Panics on terminals.
    pub fn elements(&self, f: SddRef) -> &[Element] {
        match f {
            SddRef::Decision(i) => &self.nodes[i as usize].elements,
            _ => panic!("not a decision node"),
        }
    }

    /// Whether the handle is a decision node.
    pub fn is_decision(&self, f: SddRef) -> bool {
        matches!(f, SddRef::Decision(_))
    }

    /// Interns a compressed element list as a decision node at `v`,
    /// applying the trimming rules that make SDDs canonical:
    /// `{(⊤, s)} → s` and `{(p, ⊤), (¬p, ⊥)} → p`.
    fn intern(&mut self, v: VtreeNodeId, mut elements: Vec<Element>) -> SddRef {
        debug_assert!(!elements.is_empty());
        // Trim rule 1: a single element has prime ⊤ (primes are exhaustive).
        if elements.len() == 1 {
            debug_assert_eq!(elements[0].0, SddRef::True);
            return elements[0].1;
        }
        // Trim rule 2: {(p, ⊤), (q, ⊥)} with q = ¬p collapses to p.
        if elements.len() == 2 {
            let subs: Vec<SddRef> = elements.iter().map(|e| e.1).collect();
            if subs.contains(&SddRef::True) && subs.contains(&SddRef::False) {
                let p_true = elements.iter().find(|e| e.1 == SddRef::True).unwrap().0;
                return p_true;
            }
        }
        elements.sort_unstable_by_key(|&(p, s)| (p.key(), s.key()));
        let boxed: Box<[Element]> = elements.into_boxed_slice();
        if let Some(&i) = self.unique.get(&(v, boxed.clone())) {
            return SddRef::Decision(i);
        }
        let i = self.nodes.len() as u32;
        self.nodes.push(DecisionNode {
            vtree: v,
            elements: boxed.clone(),
        });
        self.unique.insert((v, boxed), i);
        SddRef::Decision(i)
    }

    /// Negation, in time linear in the SDD \[28\].
    pub fn negate(&mut self, f: SddRef) -> SddRef {
        match f {
            SddRef::False => SddRef::True,
            SddRef::True => SddRef::False,
            SddRef::Literal(l) => SddRef::Literal(!l),
            SddRef::Decision(i) => {
                if let Some(&r) = self.neg_cache.get(&i) {
                    return r;
                }
                let node = self.nodes[i as usize].clone();
                let elements: Vec<Element> = node
                    .elements
                    .iter()
                    .map(|&(p, s)| {
                        let ns = self.negate(s);
                        (p, ns)
                    })
                    .collect();
                let r = self.compress_and_intern(node.vtree, elements);
                self.neg_cache.insert(i, r);
                if let SddRef::Decision(j) = r {
                    self.neg_cache.insert(j, f);
                }
                r
            }
        }
    }

    /// Normalizes `f` to an element list at internal vtree node `v`
    /// (which must be an ancestor of `f`'s vtree node, or `f` constant).
    fn expand(&mut self, f: SddRef, v: VtreeNodeId) -> Vec<Element> {
        match self.vtree_of(f) {
            None => vec![(SddRef::True, f)], // constants live on the sub side
            Some(vf) if vf == v => self.elements(f).to_vec(),
            Some(vf) if self.vtree.in_left_subtree(vf, v) => {
                let nf = self.negate(f);
                vec![(f, SddRef::True), (nf, SddRef::False)]
            }
            Some(vf) => {
                debug_assert!(
                    self.vtree.in_right_subtree(vf, v),
                    "expand target must be an ancestor"
                );
                vec![(SddRef::True, f)]
            }
        }
    }

    /// Compresses (merges elements with equal subs by disjoining their
    /// primes) and interns.
    fn compress_and_intern(&mut self, v: VtreeNodeId, elements: Vec<Element>) -> SddRef {
        let mut by_sub: Vec<(SddRef, SddRef)> = Vec::with_capacity(elements.len());
        'outer: for (p, s) in elements {
            if p == SddRef::False {
                continue;
            }
            for slot in &mut by_sub {
                if slot.1 == s {
                    slot.0 = self.apply(Op::Or, slot.0, p);
                    continue 'outer;
                }
            }
            by_sub.push((p, s));
        }
        self.intern(v, by_sub)
    }

    fn apply(&mut self, op: Op, a: SddRef, b: SddRef) -> SddRef {
        // Terminal shortcuts.
        match op {
            Op::And => {
                if a == SddRef::False || b == SddRef::False {
                    return SddRef::False;
                }
                if a == SddRef::True {
                    return b;
                }
                if b == SddRef::True || a == b {
                    return a;
                }
            }
            Op::Or => {
                if a == SddRef::True || b == SddRef::True {
                    return SddRef::True;
                }
                if a == SddRef::False {
                    return b;
                }
                if b == SddRef::False || a == b {
                    return a;
                }
            }
        }
        // Both literals on the same variable.
        if let (SddRef::Literal(la), SddRef::Literal(lb)) = (a, b) {
            if la.var() == lb.var() {
                // la ≠ lb here (equal handled above), so they are opposite.
                return match op {
                    Op::And => SddRef::False,
                    Op::Or => SddRef::True,
                };
            }
        }
        let (a, b) = if a.key() <= b.key() { (a, b) } else { (b, a) };
        self.apply_cache.sync_capacity(self.nodes.len());
        if let Some(r) = self.apply_cache.get(op, a, b) {
            return r;
        }
        let va = self.vtree_of(a).expect("non-constant");
        let vb = self.vtree_of(b).expect("non-constant");
        let v = if va == vb { va } else { self.vtree.lca(va, vb) };
        // If the lca is a leaf both operands are literals of the same
        // variable — handled above — so `v` is internal here unless the
        // operands equal; normalize to an internal ancestor.
        let v = if self.vtree.is_internal(v) {
            v
        } else {
            self.vtree
                .parent(v)
                .expect("leaf lca implies same variable")
        };
        let ea = self.expand(a, v);
        let eb = self.expand(b, v);
        let mut elements: Vec<Element> = Vec::with_capacity(ea.len() * eb.len());
        for &(pa, sa) in &ea {
            for &(pb, sb) in &eb {
                let p = self.apply(Op::And, pa, pb);
                if p == SddRef::False {
                    continue;
                }
                let s = self.apply(op, sa, sb);
                elements.push((p, s));
            }
        }
        let r = self.compress_and_intern(v, elements);
        self.apply_cache.insert(op, a, b, r);
        r
    }

    /// Apply-cache counters and shape.
    pub fn apply_cache_stats(&self) -> ApplyCacheStats {
        ApplyCacheStats {
            hits: self.apply_cache.hits,
            misses: self.apply_cache.misses,
            capacity: self.apply_cache.entries.len(),
            generation: self.apply_cache.stamp,
        }
    }

    /// Invalidates every apply-cache entry in O(1) by bumping the
    /// generation stamp. Canonicity is untouched: the unique table, which
    /// guarantees equal handles for equal functions, is not a cache.
    pub fn clear_apply_cache(&mut self) {
        self.apply_cache.clear();
    }

    /// Conjunction (polytime apply).
    pub fn and(&mut self, a: SddRef, b: SddRef) -> SddRef {
        self.apply(Op::And, a, b)
    }

    /// Disjunction (polytime apply).
    pub fn or(&mut self, a: SddRef, b: SddRef) -> SddRef {
        self.apply(Op::Or, a, b)
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: SddRef, b: SddRef) -> SddRef {
        let na = self.negate(a);
        let nb = self.negate(b);
        let x = self.and(a, nb);
        let y = self.and(na, b);
        self.or(x, y)
    }

    /// Implication `a ⇒ b`.
    pub fn implies(&mut self, a: SddRef, b: SddRef) -> SddRef {
        let na = self.negate(a);
        self.or(na, b)
    }

    /// Biconditional.
    pub fn iff(&mut self, a: SddRef, b: SddRef) -> SddRef {
        let x = self.xor(a, b);
        self.negate(x)
    }

    /// Conditioning `f | lit`.
    pub fn condition(&mut self, f: SddRef, lit: Lit) -> SddRef {
        let mut memo = FxHashMap::default();
        self.condition_rec(f, lit, &mut memo)
    }

    fn condition_rec(
        &mut self,
        f: SddRef,
        lit: Lit,
        memo: &mut FxHashMap<SddRef, SddRef>,
    ) -> SddRef {
        match f {
            SddRef::False | SddRef::True => f,
            SddRef::Literal(l) => {
                if l.var() == lit.var() {
                    self.constant(l == lit)
                } else {
                    f
                }
            }
            SddRef::Decision(i) => {
                if let Some(&r) = memo.get(&f) {
                    return r;
                }
                let node = self.nodes[i as usize].clone();
                let v = node.vtree;
                let lit_leaf = self.vtree.leaf_of_var(lit.var());
                let r = if !self.vtree.is_ancestor(v, lit_leaf) {
                    f // variable outside this subtree: unchanged
                } else if self.vtree.in_left_subtree(lit_leaf, v) {
                    let mut elements = Vec::with_capacity(node.elements.len());
                    for &(p, s) in node.elements.iter() {
                        let cp = self.condition_rec(p, lit, memo);
                        if cp == SddRef::False {
                            continue;
                        }
                        elements.push((cp, s));
                    }
                    self.compress_and_intern(v, elements)
                } else {
                    let mut elements = Vec::with_capacity(node.elements.len());
                    for &(p, s) in node.elements.iter() {
                        let cs = self.condition_rec(s, lit, memo);
                        elements.push((p, cs));
                    }
                    self.compress_and_intern(v, elements)
                };
                memo.insert(f, r);
                r
            }
        }
    }

    /// Conditioning on a cube.
    pub fn condition_cube(&mut self, f: SddRef, cube: &Cube) -> SddRef {
        let mut acc = f;
        for &l in cube.literals() {
            acc = self.condition(acc, l);
        }
        acc
    }

    /// Existential quantification.
    pub fn exists(&mut self, f: SddRef, var: Var) -> SddRef {
        let hi = self.condition(f, var.positive());
        let lo = self.condition(f, var.negative());
        self.or(hi, lo)
    }

    /// The cube of several literals as an SDD.
    pub fn cube(&mut self, cube: &Cube) -> SddRef {
        let mut acc = SddRef::True;
        for &l in cube.literals() {
            let x = self.literal(l);
            acc = self.and(acc, x);
        }
        acc
    }

    /// Builds the SDD of a formula by structural apply.
    pub fn build_formula(&mut self, f: &Formula) -> SddRef {
        match f {
            Formula::True => SddRef::True,
            Formula::False => SddRef::False,
            Formula::Lit(l) => self.literal(*l),
            Formula::Not(g) => {
                let x = self.build_formula(g);
                self.negate(x)
            }
            Formula::And(gs) => {
                let mut acc = SddRef::True;
                for g in gs {
                    let x = self.build_formula(g);
                    acc = self.and(acc, x);
                }
                acc
            }
            Formula::Or(gs) => {
                let mut acc = SddRef::False;
                for g in gs {
                    let x = self.build_formula(g);
                    acc = self.or(acc, x);
                }
                acc
            }
            Formula::Implies(p, q) => {
                let a = self.build_formula(p);
                let b = self.build_formula(q);
                self.implies(a, b)
            }
            Formula::Iff(p, q) => {
                let a = self.build_formula(p);
                let b = self.build_formula(q);
                self.iff(a, b)
            }
            Formula::Xor(p, q) => {
                let a = self.build_formula(p);
                let b = self.build_formula(q);
                self.xor(a, b)
            }
        }
    }

    /// Builds the SDD of a CNF by conjoining clauses (the bottom-up
    /// compilation route of §3).
    pub fn build_cnf(&mut self, cnf: &Cnf) -> SddRef {
        let mut acc = SddRef::True;
        for c in cnf.clauses() {
            let mut cl = SddRef::False;
            for &l in c.literals() {
                let x = self.literal(l);
                cl = self.or(cl, x);
            }
            acc = self.and(acc, cl);
            if acc == SddRef::False {
                break;
            }
        }
        acc
    }

    /// Total decision nodes allocated (monotone; includes garbage).
    pub fn allocated(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trl_core::Assignment;

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn check_equal_formula(m: &mut SddManager, f: SddRef, formula: &Formula, n: usize) {
        for code in 0..1u64 << n {
            let a = Assignment::from_index(code, n);
            assert_eq!(m.eval(f, &a), formula.eval(&a), "at {code:b}");
        }
    }

    #[test]
    fn literals_and_constants() {
        let mut m = SddManager::balanced(2);
        let x = m.literal(v(0).positive());
        assert_eq!(m.negate(x), m.literal(v(0).negative()));
        assert_eq!(m.and(x, SddRef::True), x);
        assert_eq!(m.and(x, SddRef::False), SddRef::False);
        let nx = m.literal(v(0).negative());
        assert_eq!(m.and(x, nx), SddRef::False);
        assert_eq!(m.or(x, nx), SddRef::True);
    }

    #[test]
    fn apply_matches_semantics_balanced() {
        let mut m = SddManager::balanced(4);
        let f = Formula::var(v(0))
            .iff(Formula::var(v(2)))
            .or(Formula::var(v(1)).and(Formula::var(v(3)).not()));
        let r = m.build_formula(&f);
        check_equal_formula(&mut m, r, &f, 4);
    }

    #[test]
    fn apply_matches_semantics_right_linear() {
        let mut m = SddManager::right_linear(4);
        let f = Formula::var(v(0))
            .xor(Formula::var(v(1)))
            .xor(Formula::var(v(2)))
            .and(Formula::var(v(3)).or(Formula::var(v(0))));
        let r = m.build_formula(&f);
        check_equal_formula(&mut m, r, &f, 4);
    }

    #[test]
    fn canonicity_same_function_same_handle() {
        let mut m = SddManager::balanced(4);
        // Build (x0 ∧ x1) ∨ (x2 ∧ x3) two different ways.
        let f1 = Formula::var(v(0))
            .and(Formula::var(v(1)))
            .or(Formula::var(v(2)).and(Formula::var(v(3))));
        let f2 = Formula::var(v(2))
            .and(Formula::var(v(3)))
            .or(Formula::var(v(1)).and(Formula::var(v(0))));
        let r1 = m.build_formula(&f1);
        let r2 = m.build_formula(&f2);
        assert_eq!(r1, r2);
        // De Morgan via negate.
        let n1 = m.negate(r1);
        let g = Formula::var(v(0))
            .and(Formula::var(v(1)))
            .or(Formula::var(v(2)).and(Formula::var(v(3))))
            .not();
        let n2 = m.build_formula(&g);
        assert_eq!(n1, n2);
    }

    #[test]
    fn double_negation_identity() {
        let mut m = SddManager::balanced(5);
        let f = Formula::var(v(0))
            .or(Formula::var(v(1)).and(Formula::var(v(4))))
            .xor(Formula::var(v(2)).implies(Formula::var(v(3))));
        let r = m.build_formula(&f);
        let nn = m.negate(r);
        let nn = m.negate(nn);
        assert_eq!(nn, r);
    }

    #[test]
    fn primes_partition_left_space() {
        // Structural invariant: for every decision node, primes are
        // pairwise inconsistent and their disjunction is valid.
        let mut m = SddManager::balanced(4);
        let f = Formula::var(v(0))
            .iff(Formula::var(v(1)))
            .or(Formula::var(v(2)).xor(Formula::var(v(3))));
        let _ = m.build_formula(&f);
        for i in 0..m.nodes.len() {
            let elements = m.nodes[i].elements.clone();
            let mut disj = SddRef::False;
            for (k, &(p, _)) in elements.iter().enumerate() {
                assert_ne!(p, SddRef::False, "inconsistent prime");
                for &(q, _) in &elements[k + 1..] {
                    assert_eq!(m.and(p, q), SddRef::False, "overlapping primes");
                }
                disj = m.or(disj, p);
            }
            assert_eq!(disj, SddRef::True, "primes not exhaustive");
        }
    }

    #[test]
    fn compression_keeps_subs_distinct() {
        let mut m = SddManager::balanced(4);
        let f = Formula::var(v(0))
            .or(Formula::var(v(1)))
            .and(Formula::var(v(2)).or(Formula::var(v(3))));
        let _ = m.build_formula(&f);
        for node in &m.nodes {
            let mut subs: Vec<SddRef> = node.elements.iter().map(|e| e.1).collect();
            let len = subs.len();
            subs.sort_unstable();
            subs.dedup();
            assert_eq!(subs.len(), len, "uncompressed node");
        }
    }

    #[test]
    fn condition_fixes_variable() {
        let mut m = SddManager::balanced(4);
        let f = Formula::var(v(0))
            .and(Formula::var(v(1)))
            .or(Formula::var(v(2)).and(Formula::var(v(3))));
        let r = m.build_formula(&f);
        let c = m.condition(r, v(0).positive());
        let expected =
            m.build_formula(&Formula::var(v(1)).or(Formula::var(v(2)).and(Formula::var(v(3)))));
        assert_eq!(c, expected);
        // Conditioning both polarities then disjoining = ∃.
        let e = m.exists(r, v(0));
        let expected =
            m.build_formula(&Formula::var(v(1)).or(Formula::var(v(2)).and(Formula::var(v(3)))));
        assert_eq!(e, expected);
    }

    #[test]
    fn condition_on_cube_and_unsat() {
        let mut m = SddManager::balanced(3);
        let f = Formula::var(v(0)).and(Formula::var(v(1)).not());
        let r = m.build_formula(&f);
        let cube = Cube::from_lits([v(0).positive(), v(1).positive()]);
        assert_eq!(m.condition_cube(r, &cube), SddRef::False);
    }

    #[test]
    fn build_cnf_equals_build_formula() {
        let f = Formula::var(v(0))
            .or(Formula::var(v(1)))
            .and(Formula::var(v(2)).or(Formula::var(v(0)).not()));
        let cnf = f.to_cnf(3);
        let mut m = SddManager::balanced(3);
        let a = m.build_formula(&f);
        let b = m.build_cnf(&cnf);
        assert_eq!(a, b);
    }

    #[test]
    fn apply_cache_hits_and_survives_clearing() {
        let mut m = SddManager::balanced(4);
        let f = Formula::var(v(0))
            .iff(Formula::var(v(2)))
            .or(Formula::var(v(1)).and(Formula::var(v(3)).not()));
        let r1 = m.build_formula(&f);
        let stats = m.apply_cache_stats();
        assert!(stats.misses > 0);
        // Rebuilding replays the same applies: mostly hits now.
        let r2 = m.build_formula(&f);
        assert_eq!(r1, r2);
        assert!(m.apply_cache_stats().hits > stats.hits);
        // Clearing is a generation bump; results stay canonical.
        let gen = m.apply_cache_stats().generation;
        m.clear_apply_cache();
        assert_eq!(m.apply_cache_stats().generation, gen + 1);
        let r3 = m.build_formula(&f);
        assert_eq!(r1, r3);
        check_equal_formula(&mut m, r3, &f, 4);
    }

    #[test]
    fn apply_cache_overwrites_stay_sound_in_shared_manager() {
        // Many formulas through ONE manager, forcing slot collisions and
        // overwrites in the direct-mapped cache; every result must still
        // match semantics (a lost entry may cost time, never correctness).
        let mut state = 0x51f0aa11u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 5;
        let mut m = SddManager::balanced(n);
        for _ in 0..30 {
            let mut fs: Vec<Formula> = (0..n as u32).map(|i| Formula::var(v(i))).collect();
            for _ in 0..8 {
                let i = (next() % fs.len() as u64) as usize;
                let j = (next() % fs.len() as u64) as usize;
                let combined = match next() % 4 {
                    0 => fs[i].clone().and(fs[j].clone()),
                    1 => fs[i].clone().or(fs[j].clone()),
                    2 => fs[i].clone().xor(fs[j].clone()),
                    _ => fs[i].clone().not(),
                };
                fs.push(combined);
            }
            let f = fs.last().unwrap().clone();
            let r = m.build_formula(&f);
            check_equal_formula(&mut m, r, &f, n);
        }
        let stats = m.apply_cache_stats();
        assert!(stats.hits > 0, "{stats:?}");
        assert!(stats.capacity.is_power_of_two());
    }

    #[test]
    fn apply_with_random_formulas_is_sound() {
        // Structured pseudo-random formulas compared to truth tables,
        // on three vtree shapes.
        let mut state = 0xabcdef12u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..20 {
            let n = 3 + (next() % 4) as usize; // 3..=6
            let mut fs: Vec<Formula> = (0..n as u32).map(|i| Formula::var(v(i))).collect();
            for _ in 0..6 {
                let i = (next() % fs.len() as u64) as usize;
                let j = (next() % fs.len() as u64) as usize;
                let combined = match next() % 4 {
                    0 => fs[i].clone().and(fs[j].clone()),
                    1 => fs[i].clone().or(fs[j].clone()),
                    2 => fs[i].clone().xor(fs[j].clone()),
                    _ => fs[i].clone().not(),
                };
                fs.push(combined);
            }
            let f = fs.last().unwrap().clone();
            let order: Vec<Var> = (0..n as u32).map(Var).collect();
            let vt = match trial % 3 {
                0 => Vtree::balanced(&order),
                1 => Vtree::right_linear(&order),
                _ => Vtree::left_linear(&order),
            };
            let mut m = SddManager::new(vt);
            let r = m.build_formula(&f);
            check_equal_formula(&mut m, r, &f, n);
        }
    }
}
