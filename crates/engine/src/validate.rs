//! Load-time re-verification of tractability properties.
//!
//! A persisted artifact claims to be a Decision-DNNF; every poly-time query
//! in `trl-nnf` is *wrong* (not just slow) if that claim is false. Loading
//! therefore re-verifies the claim:
//!
//! * **decomposability** is structural and checked exactly
//!   ([`trl_nnf::properties::is_decomposable`]);
//! * **determinism** is coNP-hard in general, so the check is the standard
//!   syntactic one used by d-DNNF toolchains: every or-gate's inputs must be
//!   pairwise *syntactically inconsistent* — each pair must disagree on some
//!   decision literal that is a direct input of the respective branches
//!   (decision gates `(x ∧ α) ∨ (¬x ∧ β)` and smoothing gadgets `(x ∨ ¬x)`
//!   both pass). Circuits the workspace compilers emit always pass; for
//!   foreign circuits that fail the syntactic test the checker falls back to
//!   the exhaustive semantic check when the universe is small enough, and
//!   otherwise rejects with [`EngineError::Property`].

use crate::error::{EngineError, Result};
use trl_core::Lit;
use trl_nnf::{properties, Circuit, NnfNode};

/// How much re-verification a load performs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Validation {
    /// Structural arena checks plus decomposability and determinism —
    /// the default: artifacts are not trusted.
    #[default]
    Full,
    /// Structural arena checks only (bounds, topological order). For
    /// artifacts this process just wrote, or stores with out-of-band
    /// integrity guarantees.
    Trust,
}

/// Exhaustive-determinism fallback limit: `2^16` assignments.
const EXHAUSTIVE_VARS: usize = 16;

/// Verifies that `c` is a Decision-DNNF (decomposable + deterministic),
/// returning a typed error naming the failing property otherwise.
pub fn check_ddnnf(c: &Circuit) -> Result<()> {
    if !properties::is_decomposable(c) {
        return Err(EngineError::Property(
            "an and-gate has non-disjoint inputs (decomposability)".into(),
        ));
    }
    if !is_syntactically_deterministic(c) {
        // The syntactic test is sound but incomplete; give small circuits
        // the benefit of the semantic check before rejecting.
        if c.num_vars() <= EXHAUSTIVE_VARS {
            if !properties::is_deterministic_exhaustive(c) {
                return Err(EngineError::Property(
                    "an or-gate has overlapping inputs (determinism)".into(),
                ));
            }
        } else {
            return Err(EngineError::Property(format!(
                "an or-gate is not syntactically deterministic and the circuit is too large \
                 ({} vars > {EXHAUSTIVE_VARS}) for the exhaustive check",
                c.num_vars()
            )));
        }
    }
    Ok(())
}

/// The *decision literals* of an or-gate input: the literal itself, or the
/// direct literal inputs of an and-gate. Two branches conflict when one's
/// decision literals contain the negation of the other's.
fn decision_lits(c: &Circuit, input: trl_nnf::NnfId) -> Vec<Lit> {
    match c.node(input) {
        NnfNode::Lit(l) => vec![*l],
        NnfNode::And(xs) => xs
            .iter()
            .filter_map(|x| match c.node(*x) {
                NnfNode::Lit(l) => Some(*l),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// Pairwise syntactic mutual exclusion of every or-gate's inputs. A `⊥`
/// input is vacuously exclusive with everything.
fn is_syntactically_deterministic(c: &Circuit) -> bool {
    for id in c.ids() {
        if let NnfNode::Or(xs) = c.node(id) {
            if xs.len() < 2 {
                continue;
            }
            let lits: Vec<Option<Vec<Lit>>> = xs
                .iter()
                .map(|x| {
                    if matches!(c.node(*x), NnfNode::False) {
                        None // unsatisfiable branch: conflicts with all
                    } else {
                        Some(decision_lits(c, *x))
                    }
                })
                .collect();
            for i in 0..lits.len() {
                for j in i + 1..lits.len() {
                    let (Some(a), Some(b)) = (&lits[i], &lits[j]) else {
                        continue;
                    };
                    let conflict = a.iter().any(|l| b.contains(&l.negated()));
                    if !conflict {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Runs the checks selected by `validation`.
pub fn run(c: &Circuit, validation: Validation) -> Result<()> {
    match validation {
        Validation::Trust => Ok(()),
        Validation::Full => check_ddnnf(c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trl_compiler::DecisionDnnfCompiler;
    use trl_nnf::CircuitBuilder;
    use trl_prop::Cnf;

    #[test]
    fn compiler_output_passes() {
        let cnf = Cnf::parse_dimacs("p cnf 5 4\n1 2 0\n-2 3 4 0\n-1 -4 0\n5 1 0\n").unwrap();
        let c = DecisionDnnfCompiler::default().compile(&cnf);
        check_ddnnf(&c).unwrap();
        check_ddnnf(&trl_nnf::smooth(&c)).unwrap();
    }

    #[test]
    fn non_decomposable_rejected() {
        let mut b = CircuitBuilder::new(1);
        let x = b.var(trl_core::Var(0));
        let nx = b.lit(trl_core::Var(0).negative());
        let a = b.and_raw([x, nx]);
        let c = b.finish(a);
        assert!(matches!(
            check_ddnnf(&c),
            Err(EngineError::Property(m)) if m.contains("decomposability")
        ));
    }

    #[test]
    fn non_deterministic_rejected() {
        // x0 ∨ x1: both inputs high under (1,1).
        let mut b = CircuitBuilder::new(2);
        let x0 = b.var(trl_core::Var(0));
        let x1 = b.var(trl_core::Var(1));
        let r = b.or([x0, x1]);
        let c = b.finish(r);
        assert!(matches!(
            check_ddnnf(&c),
            Err(EngineError::Property(m)) if m.contains("determinism")
        ));
    }

    #[test]
    fn semantic_fallback_accepts_non_syntactic_determinism() {
        // (x0 ∧ x1) ∨ (¬x0 ∧ x1): exclusive via x0, but hide the decision
        // literal of the left branch one level down so the syntactic test
        // misses it: ((x0 ∧ x1) ∧ ⊤-like nesting is collapsed by the
        // builder, so build with raw gates.
        let mut b = CircuitBuilder::new(3);
        let x0 = b.var(trl_core::Var(0));
        let nx0 = b.lit(trl_core::Var(0).negative());
        let x1 = b.var(trl_core::Var(1));
        let x2 = b.var(trl_core::Var(2));
        let inner = b.and_raw([x0, x1]);
        let left = b.and_raw([inner, x2]); // decision lit x0 is nested
        let right = b.and_raw([nx0, x1]);
        let r = b.or_raw([left, right]);
        let c = b.finish(r);
        assert!(!is_syntactically_deterministic(&c));
        check_ddnnf(&c).unwrap(); // exhaustive fallback succeeds
    }

    #[test]
    fn trust_skips_property_checks() {
        let mut b = CircuitBuilder::new(2);
        let x0 = b.var(trl_core::Var(0));
        let x1 = b.var(trl_core::Var(1));
        let r = b.or([x0, x1]);
        let c = b.finish(r);
        run(&c, Validation::Trust).unwrap();
        assert!(run(&c, Validation::Full).is_err());
    }
}
