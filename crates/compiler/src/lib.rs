//! Knowledge compilers: the systematic route of §3.
//!
//! The paper's first role for logic solves NP/PP/NP^PP/PP^PP problems by
//! *compiling* Boolean formulas into circuits with the right tractability
//! properties, then answering queries in time linear in the circuit. This
//! crate provides the compilers:
//!
//! * [`DecisionDnnfCompiler`] — CNF → Decision-DNNF by exhaustive DPLL with
//!   component decomposition and caching: the "trace of an exhaustive
//!   search" idea \[38\] behind sharpSAT/Dsharp \[56, 88\]. The output is
//!   decomposable and deterministic by construction, so model counting and
//!   weighted model counting are linear (unlocking PP).
//! * [`ModelCounter`] — #SAT/WMC by compile-then-count, the state-of-the-art
//!   architecture for weighted model counting the paper describes.
//! * [`compile_obdd`] / [`compile_sdd`] — bottom-up apply-based compilation
//!   into the structured circuit types, including constrained-vtree SDDs
//!   for E-MAJSAT/MAJMAJSAT (unlocking NP^PP and PP^PP, \[61\]).

pub mod ddnnf;

pub use ddnnf::{
    CacheMode, CompileStats, DecisionDnnfCompiler, Heuristic, ModelCounter, SignatureMode,
};

use trl_core::{Var, VarSet};
use trl_obdd::{BddRef, Obdd};
use trl_prop::Cnf;
use trl_sdd::{SddManager, SddRef};
use trl_vtree::Vtree;

/// Compiles a CNF into an OBDD under the natural variable order, returning
/// the manager and root.
pub fn compile_obdd(cnf: &Cnf) -> (Obdd, BddRef) {
    let mut m = Obdd::with_num_vars(cnf.num_vars());
    let r = m.build_cnf(cnf);
    (m, r)
}

/// Compiles a CNF into an SDD over a balanced vtree.
pub fn compile_sdd(cnf: &Cnf) -> (SddManager, SddRef) {
    let mut m = SddManager::balanced(cnf.num_vars());
    let r = m.build_cnf(cnf);
    (m, r)
}

/// Compiles a CNF into an SDD over a vtree constrained for `bottom | top`
/// (paper notation `X|Y`, Fig. 10b), enabling linear-time E-MAJSAT and
/// MAJMAJSAT with `top` as the outer (`Y`) block.
///
/// Returns the manager, the root, and the constrained node `u`.
pub fn compile_sdd_constrained(
    cnf: &Cnf,
    top: &[Var],
) -> (SddManager, SddRef, trl_vtree::VtreeNodeId) {
    let top_set: VarSet = top.iter().copied().collect();
    let bottom: Vec<Var> = (0..cnf.num_vars() as u32)
        .map(Var)
        .filter(|v| !top_set.contains(*v))
        .collect();
    let vt = Vtree::constrained(top, &bottom);
    let mut m = SddManager::new(vt);
    let r = m.build_cnf(cnf);
    let bottom_set: VarSet = bottom.iter().copied().collect();
    let u = m
        .vtree()
        .constrained_node(&bottom_set)
        .expect("constrained vtree has node u by construction");
    (m, r, u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trl_prop::Solver;

    #[test]
    fn obdd_and_sdd_compilers_agree_with_dpll() {
        let cnf = Cnf::parse_dimacs("p cnf 5 4\n1 2 0\n-2 3 4 0\n-1 -4 0\n5 1 0\n").unwrap();
        let expected = Solver::new(&cnf).count_models() as u128;
        let (m, r) = compile_obdd(&cnf);
        assert_eq!(m.count_models(r), expected);
        let (m, r) = compile_sdd(&cnf);
        assert_eq!(m.model_count(r), expected);
    }

    #[test]
    fn constrained_compile_exposes_node_u() {
        let cnf = Cnf::parse_dimacs("p cnf 4 2\n1 3 0\n2 -4 0\n").unwrap();
        let top = [Var(0), Var(1)];
        let (m, r, u) = compile_sdd_constrained(&cnf, &top);
        // Z = {x2, x3}: max over y of count_z must match brute force.
        let mut best = 0u128;
        for y0 in [false, true] {
            for y1 in [false, true] {
                let mut count = 0;
                for z0 in [false, true] {
                    for z1 in [false, true] {
                        let a = trl_core::Assignment::from_values(&[y0, y1, z0, z1]);
                        if cnf.eval(&a) {
                            count += 1;
                        }
                    }
                }
                best = best.max(count);
            }
        }
        assert_eq!(m.emajsat_count(r, u), best);
    }
}
