//! Hierarchical maps and structured Bayesian networks (Figs. 18–22, \[78, 79\]).
//!
//! The paper's intuition: "navigation behavior in a region R becomes
//! independent of navigation behavior in other regions once we know how
//! region R was entered and exited." This module instantiates the smallest
//! interesting hierarchy — a map split into a *left* and a *right* region
//! joined by crossing edges — and quantifies its cluster DAG
//! (crossings → left-region roads, crossings → right-region roads) with a
//! root PSDD over the crossings and one [`ConditionalPsdd`] per region,
//! i.e. a two-cluster structured Bayesian network.
//!
//! Routes are `s`–`t` simple paths that cross between the regions exactly
//! once. Each region's space of inner segments is compiled *per crossing
//! class* with the frontier method, so circuit growth is governed by the
//! regions rather than the whole map — the scaling argument behind the
//! paper's San Francisco compilation (Fig. 22).

use crate::graph::{Graph, GridMap};
use crate::simpath::compile_simple_paths;
use trl_core::{Assignment, Var};
use trl_prop::Formula;
use trl_psdd::{ConditionalPsdd, Psdd};
use trl_sdd::SddManager;
use trl_vtree::Vtree;

/// A grid map split into left and right regions joined by crossing edges.
pub struct TwoRegionMap {
    full: GridMap,
    cols_left: usize,
    source: usize,
    target: usize,
    /// Full-graph edge indices of the crossing edges, one per row.
    crossings: Vec<usize>,
    /// Left region: subgraph and a map from region edge index → full index.
    left: (Graph, Vec<usize>),
    right: (Graph, Vec<usize>),
    /// Node maps: full node id → region node id.
    left_nodes: Vec<Option<usize>>,
    right_nodes: Vec<Option<usize>>,
}

impl TwoRegionMap {
    /// Builds a `rows × (cols_left + cols_right)` grid split between
    /// columns `cols_left - 1` and `cols_left`. The route task is from the
    /// top-left corner to the bottom-right corner.
    pub fn new(rows: usize, cols_left: usize, cols_right: usize) -> Self {
        let cols = cols_left + cols_right;
        let full = GridMap::new(rows, cols);
        let g = full.graph();
        let in_left = |node: usize| node % cols < cols_left;
        let mut crossings = Vec::new();
        for (i, &(u, v)) in g.edges().iter().enumerate() {
            if in_left(u) != in_left(v) {
                crossings.push(i);
            }
        }
        let extract = |keep: &dyn Fn(usize) -> bool| {
            let mut node_map = vec![None; g.num_nodes()];
            let mut next = 0usize;
            for (n, slot) in node_map.iter_mut().enumerate() {
                if keep(n) {
                    *slot = Some(next);
                    next += 1;
                }
            }
            let mut edges = Vec::new();
            let mut edge_map = Vec::new();
            for (i, &(u, v)) in g.edges().iter().enumerate() {
                if let (Some(a), Some(b)) = (node_map[u], node_map[v]) {
                    edges.push((a, b));
                    edge_map.push(i);
                }
            }
            (Graph::new(next, edges), edge_map, node_map)
        };
        let (lg, lmap, lnodes) = extract(&|n| in_left(n));
        let (rg, rmap, rnodes) = extract(&|n| !in_left(n));
        TwoRegionMap {
            source: full.node(0, 0),
            target: full.node(rows - 1, cols - 1),
            full,
            cols_left,
            crossings,
            left: (lg, lmap),
            right: (rg, rmap),
            left_nodes: lnodes,
            right_nodes: rnodes,
        }
    }

    /// The full map.
    pub fn full(&self) -> &GridMap {
        &self.full
    }

    /// The crossing edges (full-graph indices) — the `e₁…e₆` of Fig. 18.
    pub fn crossings(&self) -> &[usize] {
        &self.crossings
    }

    /// The route source and target (full node ids).
    pub fn endpoints(&self) -> (usize, usize) {
        (self.source, self.target)
    }

    fn is_left_node(&self, node: usize) -> bool {
        let (_, cols) = self.full.dims();
        node % cols < self.cols_left
    }

    /// Splits a one-crossing route into (crossing index within
    /// [`Self::crossings`], left-region edges, right-region edges). Returns
    /// `None` if the edge set is not a valid one-crossing simple route.
    pub fn decompose(&self, route: &[usize]) -> Option<(usize, Vec<usize>, Vec<usize>)> {
        let g = self.full.graph();
        let a = g.assignment_of(route);
        if !g.is_simple_path(&a, self.source, self.target) {
            return None;
        }
        let used_crossings: Vec<usize> = route
            .iter()
            .filter(|e| self.crossings.contains(e))
            .copied()
            .collect();
        if used_crossings.len() != 1 {
            return None;
        }
        let crossing = self
            .crossings
            .iter()
            .position(|&c| c == used_crossings[0])?;
        let mut left = Vec::new();
        let mut right = Vec::new();
        for &e in route {
            if e == used_crossings[0] {
                continue;
            }
            match self.left.1.iter().position(|&f| f == e) {
                Some(le) => left.push(le),
                None => {
                    let re = self.right.1.iter().position(|&f| f == e)?;
                    right.push(re);
                }
            }
        }
        Some((crossing, left, right))
    }

    /// Reassembles a route from its decomposition.
    pub fn compose(&self, crossing: usize, left: &[usize], right: &[usize]) -> Vec<usize> {
        let mut route = vec![self.crossings[crossing]];
        route.extend(left.iter().map(|&e| self.left.1[e]));
        route.extend(right.iter().map(|&e| self.right.1[e]));
        route.sort_unstable();
        route
    }

    /// Compiles the flat (non-hierarchical) one-crossing route space over
    /// the full map, returning the OBDD size — the baseline of `exp09`.
    pub fn flat_circuit_size(&self) -> usize {
        let g = self.full.graph();
        let (mut obdd, paths) = compile_simple_paths(g, self.source, self.target);
        // Restrict to exactly one crossing edge.
        let lits: Vec<trl_core::Lit> = self
            .crossings
            .iter()
            .map(|&e| g.edge_var(e).positive())
            .collect();
        let one = obdd.build_formula(&Formula::exactly_one(&lits));
        let restricted = obdd.and(paths, one);
        obdd.size(restricted)
    }

    /// Builds the structured Bayesian network for the one-crossing route
    /// space, with uniform initial parameters. Crossings whose region
    /// segments are impossible are excluded from the support.
    pub fn build_sbn(&self) -> Sbn {
        let k = self.crossings.len();
        // Root cluster: exactly-one over k crossing indicator variables.
        let top = {
            let mut m =
                SddManager::new(Vtree::balanced(&(0..k as u32).map(Var).collect::<Vec<_>>()));
            let lits: Vec<trl_core::Lit> = (0..k as u32).map(|i| Var(i).positive()).collect();
            let f = m.build_formula(&Formula::exactly_one(&lits));
            Psdd::from_sdd(&m, f)
        };

        let region_conditional = |region: &(Graph, Vec<usize>),
                                  node_map: &[Option<usize>],
                                  from: usize,
                                  crossing_end: &dyn Fn(usize) -> usize|
         -> ConditionalPsdd {
            let mut selector =
                SddManager::new(Vtree::balanced(&(0..k as u32).map(Var).collect::<Vec<_>>()));
            let mut classes = Vec::new();
            let mut dists = Vec::new();
            let n_edges = region.0.num_edges().max(1);
            let order: Vec<Var> = (0..n_edges as u32).map(Var).collect();
            for j in 0..k {
                let lits: Vec<trl_core::Lit> = (0..k as u32)
                    .map(|i| Var(i).literal(i as usize == j))
                    .collect();
                let class = {
                    let f = Formula::conj(lits.iter().map(|&l| Formula::lit(l)));
                    selector.build_formula(&f)
                };
                let boundary =
                    node_map[crossing_end(j)].expect("crossing endpoint lies in the region");
                let (obdd, paths) = compile_simple_paths(&region.0, from, boundary);
                let mut m = SddManager::new(Vtree::right_linear(&order));
                let support = m.from_obdd(&obdd, paths);
                assert!(
                    support != trl_sdd::SddRef::False,
                    "no inner segment reaches crossing {j}"
                );
                dists.push(Psdd::from_sdd(&m, support));
                classes.push((class, j));
            }
            // Catch-all class for invalid crossing patterns (probability 0
            // under the root): any distribution works; use the uniform one.
            let rest = {
                let lits: Vec<trl_core::Lit> = (0..k as u32).map(|i| Var(i).positive()).collect();
                let f = Formula::exactly_one(&lits).not();
                selector.build_formula(&f)
            };
            let uniform = {
                let m = SddManager::new(Vtree::right_linear(&order));
                Psdd::from_sdd(&m, trl_sdd::SddRef::True)
            };
            dists.push(uniform);
            classes.push((rest, k));
            ConditionalPsdd::new(selector, classes, dists).expect("classes partition")
        };

        let g = self.full.graph();
        let left_end = |j: usize| {
            let (u, v) = g.edges()[self.crossings[j]];
            if self.is_left_node(u) {
                u
            } else {
                v
            }
        };
        let right_end = |j: usize| {
            let (u, v) = g.edges()[self.crossings[j]];
            if self.is_left_node(u) {
                v
            } else {
                u
            }
        };
        let left_source = self.left_nodes[self.source].expect("source in left region");
        let right_target = self.right_nodes[self.target].expect("target in right region");
        let left = region_conditional(&self.left, &self.left_nodes, left_source, &left_end);
        let right = region_conditional(&self.right, &self.right_nodes, right_target, &right_end);
        Sbn {
            k,
            top,
            left,
            right,
            left_edges: self.left.0.num_edges(),
            right_edges: self.right.0.num_edges(),
        }
    }
}

/// The two-cluster structured Bayesian network over one-crossing routes.
pub struct Sbn {
    k: usize,
    /// Root PSDD over the crossing indicators (exactly-one support).
    pub top: Psdd,
    /// Conditional PSDD of the left region's inner segment.
    pub left: ConditionalPsdd,
    /// Conditional PSDD of the right region's inner segment.
    pub right: ConditionalPsdd,
    left_edges: usize,
    right_edges: usize,
}

impl Sbn {
    fn crossing_assignment(&self, crossing: usize) -> Assignment {
        let mut a = Assignment::all_false(self.k);
        a.set(Var(crossing as u32), true);
        a
    }

    /// `Pr(route)` for a decomposed route: the SBN factorization
    /// `Pr(crossing) · Pr(left | crossing) · Pr(right | crossing)`.
    pub fn probability(&self, crossing: usize, left: &[usize], right: &[usize]) -> f64 {
        let ca = self.crossing_assignment(crossing);
        let la = assignment_over(left, self.left_edges);
        let ra = assignment_over(right, self.right_edges);
        self.top.probability(&ca)
            * self.left.conditional_probability(&la, &ca)
            * self.right.conditional_probability(&ra, &ca)
    }

    /// Learns all clusters from decomposed routes `(crossing, left edges,
    /// right edges, weight)`.
    pub fn learn(&mut self, data: &[(usize, Vec<usize>, Vec<usize>, f64)], alpha: f64) {
        let top_data: Vec<(Assignment, f64)> = data
            .iter()
            .map(|(c, _, _, w)| (self.crossing_assignment(*c), *w))
            .collect();
        self.top.learn(&top_data, alpha);
        let left_data: Vec<(Assignment, Assignment, f64)> = data
            .iter()
            .map(|(c, l, _, w)| {
                (
                    self.crossing_assignment(*c),
                    assignment_over(l, self.left_edges),
                    *w,
                )
            })
            .collect();
        self.left.learn(&left_data, alpha);
        let right_data: Vec<(Assignment, Assignment, f64)> = data
            .iter()
            .map(|(c, _, r, w)| {
                (
                    self.crossing_assignment(*c),
                    assignment_over(r, self.right_edges),
                    *w,
                )
            })
            .collect();
        self.right.learn(&right_data, alpha);
    }

    /// Total circuit size of the SBN: root plus all region distributions.
    pub fn total_size(&self) -> usize {
        self.top.size()
            + self
                .left
                .distributions()
                .iter()
                .map(|p| p.size())
                .sum::<usize>()
            + self
                .right
                .distributions()
                .iter()
                .map(|p| p.size())
                .sum::<usize>()
    }
}

fn assignment_over(edges: &[usize], n: usize) -> Assignment {
    let mut a = Assignment::all_false(n.max(1));
    for &e in edges {
        a.set(Var(e as u32), true);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decompose_and_compose_round_trip() {
        let map = TwoRegionMap::new(3, 2, 2);
        let g = map.full().graph();
        let (s, t) = map.endpoints();
        let mut seen = 0;
        for path in g.enumerate_simple_paths(s, t) {
            if let Some((c, l, r)) = map.decompose(&path) {
                seen += 1;
                let back = map.compose(c, &l, &r);
                let mut expected = path.clone();
                expected.sort_unstable();
                assert_eq!(back, expected);
            }
        }
        assert!(seen > 0, "no one-crossing routes found");
    }

    #[test]
    fn multi_crossing_routes_are_rejected() {
        let map = TwoRegionMap::new(2, 2, 2);
        let g = map.full().graph();
        let (s, t) = map.endpoints();
        let multi = g
            .enumerate_simple_paths(s, t)
            .into_iter()
            .find(|p| p.iter().filter(|e| map.crossings().contains(e)).count() > 1);
        if let Some(p) = multi {
            assert!(map.decompose(&p).is_none());
        }
    }

    #[test]
    fn sbn_probabilities_normalize_over_one_crossing_routes() {
        let map = TwoRegionMap::new(2, 2, 2);
        let sbn = map.build_sbn();
        let g = map.full().graph();
        let (s, t) = map.endpoints();
        let mut total = 0.0;
        for path in g.enumerate_simple_paths(s, t) {
            if let Some((c, l, r)) = map.decompose(&path) {
                total += sbn.probability(c, &l, &r);
            }
        }
        assert!(
            (total - 1.0).abs() < 1e-9,
            "one-crossing route probabilities sum to {total}"
        );
    }

    #[test]
    fn sbn_learning_concentrates_on_observed_routes() {
        let map = TwoRegionMap::new(2, 2, 2);
        let mut sbn = map.build_sbn();
        let g = map.full().graph();
        let (s, t) = map.endpoints();
        let route = g
            .enumerate_simple_paths(s, t)
            .into_iter()
            .find_map(|p| map.decompose(&p))
            .expect("a one-crossing route exists");
        let data = vec![(route.0, route.1.clone(), route.2.clone(), 50.0)];
        sbn.learn(&data, 0.0);
        let p = sbn.probability(route.0, &route.1, &route.2);
        assert!((p - 1.0).abs() < 1e-9, "trained route has probability {p}");
    }

    #[test]
    fn hierarchical_size_beats_flat_size_on_wider_maps() {
        // The scaling claim of Figs. 18/22: region-modular compilation
        // keeps circuits small relative to flat compilation of the map.
        let map = TwoRegionMap::new(3, 3, 3);
        let sbn = map.build_sbn();
        let flat = map.flat_circuit_size();
        assert!(
            sbn.total_size() < flat,
            "hierarchical {} vs flat {flat}",
            sbn.total_size()
        );
    }
}
