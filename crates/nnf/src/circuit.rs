//! The NNF circuit representation: an arena DAG with structural hashing.

use trl_core::{Assignment, Error, Lit, PartialAssignment, Result, Var, VarSet};

/// Index of a node within a [`Circuit`] arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NnfId(pub u32);

impl NnfId {
    /// The node's arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One gate of an NNF circuit.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum NnfNode {
    /// The constant true (`⊤`).
    True,
    /// The constant false (`⊥`).
    False,
    /// A literal input (inverters feed only from variables, so negation
    /// appears only here).
    Lit(Lit),
    /// An and-gate over the given inputs.
    And(Vec<NnfId>),
    /// An or-gate over the given inputs.
    Or(Vec<NnfId>),
}

/// An NNF circuit: a DAG of [`NnfNode`]s with a designated root, over the
/// variable universe `0..num_vars`.
///
/// Nodes are stored in topological order (inputs before the gates that use
/// them), which every traversal in this crate relies on.
#[derive(Clone, Debug)]
pub struct Circuit {
    nodes: Vec<NnfNode>,
    root: NnfId,
    num_vars: usize,
}

impl Circuit {
    /// Builds a circuit directly from a raw node arena, validating the
    /// arena invariants that every traversal in this crate relies on:
    /// the root is in range, every gate input strictly precedes the gate
    /// (topological order), and every literal variable lies in the
    /// universe `0..num_vars`.
    ///
    /// This is the entry point for deserializers (`trl-engine`'s binary
    /// and c2d text readers), which must reconstruct circuits
    /// *node-for-node* — going through [`CircuitBuilder`] would simplify
    /// and renumber gates, destroying the on-disk structure (e.g.
    /// smoothing gadgets `(x ∨ ¬x)` would collapse to `⊤`).
    pub fn from_parts(num_vars: usize, nodes: Vec<NnfNode>, root: NnfId) -> Result<Circuit> {
        if root.index() >= nodes.len() {
            return Err(Error::Invalid(format!(
                "root {} out of range for {} nodes",
                root.0,
                nodes.len()
            )));
        }
        for (i, n) in nodes.iter().enumerate() {
            match n {
                NnfNode::True | NnfNode::False => {}
                NnfNode::Lit(l) => {
                    if l.var().index() >= num_vars {
                        return Err(Error::Invalid(format!(
                            "node {i}: literal variable {} out of universe 0..{num_vars}",
                            l.var().index()
                        )));
                    }
                }
                NnfNode::And(xs) | NnfNode::Or(xs) => {
                    for x in xs {
                        if x.index() >= i {
                            return Err(Error::Invalid(format!(
                                "node {i}: input {} violates topological order",
                                x.0
                            )));
                        }
                    }
                }
            }
        }
        Ok(Circuit {
            nodes,
            root,
            num_vars,
        })
    }

    /// The root node.
    pub fn root(&self) -> NnfId {
        self.root
    }

    /// The variable universe size; queries (counting, enumeration) range
    /// over assignments of `0..num_vars`.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The node behind an id.
    pub fn node(&self, id: NnfId) -> &NnfNode {
        &self.nodes[id.index()]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Circuit size: the number of edges (total gate fan-in), the size
    /// measure used throughout the knowledge-compilation literature.
    pub fn edge_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                NnfNode::And(xs) | NnfNode::Or(xs) => xs.len(),
                _ => 0,
            })
            .sum()
    }

    /// All node ids in topological (bottom-up) order.
    pub fn ids(&self) -> impl Iterator<Item = NnfId> {
        (0..self.nodes.len() as u32).map(NnfId)
    }

    /// Evaluates the circuit on a total assignment.
    pub fn eval(&self, a: &Assignment) -> bool {
        let mut val = vec![false; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            val[i] = match n {
                NnfNode::True => true,
                NnfNode::False => false,
                NnfNode::Lit(l) => a.satisfies(*l),
                NnfNode::And(xs) => xs.iter().all(|x| val[x.index()]),
                NnfNode::Or(xs) => xs.iter().any(|x| val[x.index()]),
            };
        }
        val[self.root.index()]
    }

    /// The scope (mentioned variables) of every node, bottom-up.
    pub fn scopes(&self) -> Vec<VarSet> {
        let mut scopes: Vec<VarSet> = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            let s = match n {
                NnfNode::True | NnfNode::False => VarSet::new(),
                NnfNode::Lit(l) => {
                    let mut s = VarSet::new();
                    s.insert(l.var());
                    s
                }
                NnfNode::And(xs) | NnfNode::Or(xs) => {
                    let mut s = VarSet::new();
                    for x in xs {
                        s.union_with(&scopes[x.index()]);
                    }
                    s
                }
            };
            scopes.push(s);
        }
        scopes
    }

    /// Conditions the circuit on a partial assignment: literals decided by
    /// `pa` become constants, and the circuit is simplified bottom-up.
    /// The variable universe is unchanged.
    pub fn condition(&self, pa: &PartialAssignment) -> Circuit {
        let mut b = CircuitBuilder::new(self.num_vars);
        let mut map: Vec<NnfId> = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            let id = match n {
                NnfNode::True => b.true_(),
                NnfNode::False => b.false_(),
                NnfNode::Lit(l) => match pa.eval(*l) {
                    Some(true) => b.true_(),
                    Some(false) => b.false_(),
                    None => b.lit(*l),
                },
                NnfNode::And(xs) => b.and(xs.iter().map(|x| map[x.index()])),
                NnfNode::Or(xs) => b.or(xs.iter().map(|x| map[x.index()])),
            };
            map.push(id);
        }
        b.finish(map[self.root.index()])
    }

    /// Renders a compact textual form, mainly for debugging and docs.
    ///
    /// Iterative (explicit work stack), so arbitrarily deep circuits — e.g.
    /// compiled 50k-variable chains — render without stack overflow.
    pub fn display(&self) -> String {
        enum Item {
            Node(NnfId),
            Text(&'static str),
        }
        let mut out = String::new();
        let mut stack = vec![Item::Node(self.root)];
        while let Some(item) = stack.pop() {
            match item {
                Item::Text(t) => out.push_str(t),
                Item::Node(id) => match self.node(id) {
                    NnfNode::True => out.push('⊤'),
                    NnfNode::False => out.push('⊥'),
                    NnfNode::Lit(l) => out.push_str(&format!("{l}")),
                    NnfNode::And(xs) | NnfNode::Or(xs) => {
                        let sep = if matches!(self.node(id), NnfNode::And(_)) {
                            " ∧ "
                        } else {
                            " ∨ "
                        };
                        out.push('(');
                        stack.push(Item::Text(")"));
                        for (i, x) in xs.iter().enumerate().rev() {
                            stack.push(Item::Node(*x));
                            if i > 0 {
                                stack.push(Item::Text(sep));
                            }
                        }
                    }
                },
            }
        }
        out
    }
}

/// Builds NNF circuits with structural hashing: identical gates share one
/// node, and trivial gates are simplified on the fly
/// (`∧` with a `⊥` input is `⊥`, single-input gates collapse, etc.).
///
/// Deduplication uses an open-addressing table of node ids that compares
/// candidates against the arena, so interning never clones a gate's input
/// vector and probes allocate nothing — the builder sits on the hot path
/// of every compiler in the workspace.
pub struct CircuitBuilder {
    nodes: Vec<NnfNode>,
    /// Open-addressing dedup table over `nodes`; entries are `id + 1`,
    /// `0` means empty. Capacity is a power of two.
    table: Vec<u32>,
    num_vars: usize,
}

impl CircuitBuilder {
    /// A builder over the variable universe `0..num_vars`.
    pub fn new(num_vars: usize) -> Self {
        CircuitBuilder {
            nodes: Vec::new(),
            table: vec![0; 64],
            num_vars,
        }
    }

    fn hash_node(node: &NnfNode) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = trl_core::FxHasher::default();
        node.hash(&mut h);
        h.finish()
    }

    fn intern(&mut self, node: NnfNode) -> NnfId {
        let mask = self.table.len() - 1;
        let mut idx = Self::hash_node(&node) as usize & mask;
        loop {
            match self.table[idx] {
                0 => break,
                slot => {
                    let id = NnfId(slot - 1);
                    if self.nodes[id.index()] == node {
                        return id;
                    }
                    idx = (idx + 1) & mask;
                }
            }
        }
        let id = NnfId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.table[idx] = id.0 + 1;
        // Keep the load factor below 1/2.
        if (self.nodes.len() + 1) * 2 > self.table.len() {
            self.grow_table();
        }
        id
    }

    fn grow_table(&mut self) {
        let cap = self.table.len() * 2;
        let mask = cap - 1;
        let mut table = vec![0u32; cap];
        for (i, node) in self.nodes.iter().enumerate() {
            let mut idx = Self::hash_node(node) as usize & mask;
            while table[idx] != 0 {
                idx = (idx + 1) & mask;
            }
            table[idx] = i as u32 + 1;
        }
        self.table = table;
    }

    /// The constant true.
    pub fn true_(&mut self) -> NnfId {
        self.intern(NnfNode::True)
    }

    /// The constant false.
    pub fn false_(&mut self) -> NnfId {
        self.intern(NnfNode::False)
    }

    /// A literal input.
    pub fn lit(&mut self, l: Lit) -> NnfId {
        assert!(
            l.var().index() < self.num_vars,
            "literal variable out of universe"
        );
        self.intern(NnfNode::Lit(l))
    }

    /// A positive literal for `v`.
    pub fn var(&mut self, v: Var) -> NnfId {
        self.lit(v.positive())
    }

    /// An and-gate. Constants are folded; duplicates are removed; a single
    /// input collapses to that input.
    pub fn and(&mut self, inputs: impl IntoIterator<Item = NnfId>) -> NnfId {
        let mut xs: Vec<NnfId> = Vec::new();
        for x in inputs {
            match &self.nodes[x.index()] {
                NnfNode::True => {}
                NnfNode::False => return self.false_(),
                _ => xs.push(x),
            }
        }
        xs.sort_unstable();
        xs.dedup();
        match xs.len() {
            0 => self.true_(),
            1 => xs[0],
            _ => self.intern(NnfNode::And(xs)),
        }
    }

    /// An or-gate, with the dual simplifications of [`CircuitBuilder::and`].
    pub fn or(&mut self, inputs: impl IntoIterator<Item = NnfId>) -> NnfId {
        let mut xs: Vec<NnfId> = Vec::new();
        for x in inputs {
            match &self.nodes[x.index()] {
                NnfNode::False => {}
                NnfNode::True => return self.true_(),
                _ => xs.push(x),
            }
        }
        xs.sort_unstable();
        xs.dedup();
        match xs.len() {
            0 => self.false_(),
            1 => xs[0],
            _ => self.intern(NnfNode::Or(xs)),
        }
    }

    /// An or-gate that preserves its inputs verbatim (no constant folding,
    /// no deduplication, no collapse). Needed when gate *shape* matters —
    /// e.g. smoothing gadgets `(x ∨ ¬x)` must survive even though they are
    /// semantically `⊤`.
    pub fn or_raw(&mut self, inputs: impl IntoIterator<Item = NnfId>) -> NnfId {
        let xs: Vec<NnfId> = inputs.into_iter().collect();
        self.intern(NnfNode::Or(xs))
    }

    /// An and-gate that preserves its inputs verbatim.
    pub fn and_raw(&mut self, inputs: impl IntoIterator<Item = NnfId>) -> NnfId {
        let xs: Vec<NnfId> = inputs.into_iter().collect();
        self.intern(NnfNode::And(xs))
    }

    /// A cube (conjunction of literals).
    pub fn cube(&mut self, lits: impl IntoIterator<Item = Lit>) -> NnfId {
        let ids: Vec<NnfId> = lits.into_iter().map(|l| self.lit(l)).collect();
        self.and(ids)
    }

    /// Finalizes the circuit with the given root.
    pub fn finish(self, root: NnfId) -> Circuit {
        assert!(root.index() < self.nodes.len(), "root out of range");
        Circuit {
            nodes: self.nodes,
            root,
            num_vars: self.num_vars,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var(i)
    }

    #[test]
    fn builder_simplifies_constants() {
        let mut b = CircuitBuilder::new(2);
        let t = b.true_();
        let f = b.false_();
        let x = b.var(v(0));
        assert_eq!(b.and([t, x]), x);
        assert_eq!(b.and([f, x]), f);
        assert_eq!(b.or([f, x]), x);
        assert_eq!(b.or([t, x]), t);
        assert_eq!(b.and([]), t);
        assert_eq!(b.or([]), f);
    }

    #[test]
    fn builder_dedups_structurally() {
        let mut b = CircuitBuilder::new(2);
        let x = b.var(v(0));
        let y = b.var(v(1));
        let a1 = b.and([x, y]);
        let a2 = b.and([y, x]); // sorted → same node
        assert_eq!(a1, a2);
        let c = b.finish(a1);
        assert_eq!(c.node_count(), 3);
    }

    #[test]
    fn eval_matches_semantics() {
        // (x0 ∧ ¬x1) ∨ x2
        let mut b = CircuitBuilder::new(3);
        let x0 = b.var(v(0));
        let nx1 = b.lit(v(1).negative());
        let x2 = b.var(v(2));
        let a = b.and([x0, nx1]);
        let r = b.or([a, x2]);
        let c = b.finish(r);
        for code in 0..8u64 {
            let asg = Assignment::from_index(code, 3);
            let expected = (asg.value(v(0)) && !asg.value(v(1))) || asg.value(v(2));
            assert_eq!(c.eval(&asg), expected);
        }
    }

    #[test]
    fn scopes_accumulate() {
        let mut b = CircuitBuilder::new(4);
        let x0 = b.var(v(0));
        let x3 = b.lit(v(3).negative());
        let a = b.and([x0, x3]);
        let c = b.finish(a);
        let scopes = c.scopes();
        let s = &scopes[a.index()];
        assert!(s.contains(v(0)) && s.contains(v(3)) && s.len() == 2);
    }

    #[test]
    fn condition_substitutes_and_simplifies() {
        let mut b = CircuitBuilder::new(2);
        let x0 = b.var(v(0));
        let x1 = b.var(v(1));
        let a = b.and([x0, x1]);
        let c = b.finish(a);
        let mut pa = PartialAssignment::new(2);
        pa.assign(v(0).positive());
        let cond = c.condition(&pa);
        // x0=1: circuit reduces to x1.
        assert!(matches!(cond.node(cond.root()), NnfNode::Lit(l) if *l == v(1).positive()));
        pa.assign(v(1).negative());
        let cond2 = c.condition(&pa);
        assert!(matches!(cond2.node(cond2.root()), NnfNode::False));
    }

    #[test]
    fn edge_count_counts_fanin() {
        let mut b = CircuitBuilder::new(3);
        let x0 = b.var(v(0));
        let x1 = b.var(v(1));
        let x2 = b.var(v(2));
        let a = b.and([x0, x1, x2]);
        let o = b.or([a, x0]);
        let c = b.finish(o);
        assert_eq!(c.edge_count(), 5);
    }

    #[test]
    fn from_parts_accepts_valid_and_rejects_invalid() {
        // (x0 ∧ x1) built by hand.
        let nodes = vec![
            NnfNode::Lit(v(0).positive()),
            NnfNode::Lit(v(1).positive()),
            NnfNode::And(vec![NnfId(0), NnfId(1)]),
        ];
        let c = Circuit::from_parts(2, nodes.clone(), NnfId(2)).unwrap();
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.model_count(), 1);

        // Root out of range.
        assert!(Circuit::from_parts(2, nodes.clone(), NnfId(3)).is_err());
        // Forward edge (topological violation).
        let fwd = vec![NnfNode::And(vec![NnfId(1)]), NnfNode::True];
        assert!(Circuit::from_parts(2, fwd, NnfId(0)).is_err());
        // Self loop.
        let looped = vec![NnfNode::Or(vec![NnfId(0)])];
        assert!(Circuit::from_parts(2, looped, NnfId(0)).is_err());
        // Literal outside the universe.
        let bad_lit = vec![NnfNode::Lit(v(5).positive())];
        assert!(Circuit::from_parts(2, bad_lit, NnfId(0)).is_err());
    }

    #[test]
    fn raw_gates_preserve_shape() {
        let mut b = CircuitBuilder::new(1);
        let x = b.var(v(0));
        let nx = b.lit(v(0).negative());
        let taut = b.or_raw([x, nx]);
        let c = b.finish(taut);
        assert!(matches!(c.node(c.root()), NnfNode::Or(xs) if xs.len() == 2));
    }
}
