//! Circuit minimization: the size of a compiled artifact is the constant
//! factor in every tractable query, and size is governed by the
//! *representation choice* — variable order for OBDDs, vtree for SDDs
//! (the succinctness dimension of the knowledge-compilation map).
//!
//! This crate searches those choices after the fact:
//!
//! * [`compact`] — structural pass (reachability, dedup, neutral
//!   elements); bit-preserving for every nonnegative weight function and
//!   never larger.
//! * [`sift`] — Rudell sifting over OBDD variable orders, built on
//!   `trl-obdd`'s in-place [`swap_adjacent`](trl_obdd::Obdd::swap_adjacent).
//! * [`vtree_search`](search) — greedy rotate/swap local search over
//!   vtree shapes, recompiling through `trl-sdd`.
//!
//! [`minimize_circuit`] runs the schedule ([`MinimizeConfig`]) and returns
//! the smallest candidate that passes the acceptance battery
//! ([`answers_match`]): exact counting probes plus bit-identical WMC /
//! marginals / MPE weight in the exact dyadic regime. Candidates that are
//! not strictly smaller — or that fail a single probe — are discarded, so
//! the pass can only shrink, never corrupt.
//!
//! The engine runs this as its background *optimize* job and atomically
//! swaps the smaller circuit into the registry; `minimize.*` counters and
//! histograms expose what the passes did.

mod compact;
mod config;
mod sift;
mod verify;
mod vtree_search;

pub use compact::compact;
pub use config::{MinimizeConfig, Strategy, Trigger};
pub use sift::{obdd_from_circuit, sift, SiftStats};
pub use verify::{answers_match, dyadic_weights, mixed_dyadic_weights};
pub use vtree_search::{search, VtreeStats};

use std::time::Instant;
use trl_nnf::Circuit;

/// What one [`minimize_circuit`] run did.
#[derive(Clone, Debug)]
pub struct MinimizeReport {
    /// Node count going in.
    pub nodes_before: usize,
    /// Node count of the returned circuit (`== nodes_before` when nothing
    /// smaller survived the battery).
    pub nodes_after: usize,
    /// Adjacent-level swaps performed by sifting.
    pub swaps: u64,
    /// Accepted vtree moves.
    pub rotations: u64,
    /// Sifting passes completed.
    pub passes: u64,
    /// Which candidate won: `"compact"`, `"obdd"`, `"vtree"`, or `"none"`.
    pub strategy: &'static str,
    /// Wall time spent.
    pub wall_us: u64,
    /// Whether a strictly smaller, battery-verified circuit was produced.
    pub accepted: bool,
}

/// The `minimize.*` metric names, in render order. Registered zero-valued
/// at startup (via [`register_metrics`]) so dashboards and the stats table
/// show rows before the first optimize job runs.
pub const MINIMIZE_COUNTERS: [&str; 7] = [
    "minimize.jobs",
    "minimize.accepted",
    "minimize.rejected",
    "minimize.swaps",
    "minimize.rotations",
    "minimize.passes",
    "minimize.nodes_reclaimed",
];

/// The `minimize.*` histogram names.
pub const MINIMIZE_HISTOGRAMS: [&str; 3] = [
    "minimize.wall_us",
    "minimize.nodes_before",
    "minimize.nodes_after",
];

/// Registers every `minimize.*` metric zero-valued, so they render in
/// stats tables and Prometheus exposition before any job has run.
pub fn register_metrics() {
    for name in MINIMIZE_COUNTERS {
        trl_obs::counter(name);
    }
    for name in MINIMIZE_HISTOGRAMS {
        trl_obs::histogram(name);
    }
}

/// Minimizes a circuit under the given schedule.
///
/// Returns the smallest candidate that (a) is strictly smaller than the
/// input and (b) passes the full acceptance battery, or a clone of the
/// input when no candidate qualifies (`report.accepted == false`).
pub fn minimize_circuit(c: &Circuit, cfg: &MinimizeConfig) -> (Circuit, MinimizeReport) {
    let start = Instant::now();
    let deadline = cfg.deadline(start);
    let nodes_before = c.node_count();
    let mut report = MinimizeReport {
        nodes_before,
        nodes_after: nodes_before,
        swaps: 0,
        rotations: 0,
        passes: 0,
        strategy: "none",
        wall_us: 0,
        accepted: false,
    };
    if !cfg.trigger.fires(nodes_before) {
        report.wall_us = start.elapsed().as_micros() as u64;
        return (c.clone(), report);
    }
    trl_obs::counter!("minimize.jobs").inc();
    trl_obs::histogram!("minimize.nodes_before").record_us(nodes_before as u64);

    // Candidate 1: the structural compact pass — cheap, always run.
    let mut candidates: Vec<(&'static str, Circuit)> = {
        let _span = trl_obs::trace_span("minimize.compact");
        vec![("compact", compact(c))]
    };

    // Candidate 2: OBDD order search (round-trips through a diagram).
    if cfg.strategy.runs_obdd() && Instant::now() < deadline {
        let _span = trl_obs::trace_span("minimize.sift");
        if let Some((mut m, root)) = obdd_from_circuit(c, cfg.node_cap) {
            let stats = sift(&mut m, root, cfg, deadline);
            report.swaps = stats.swaps;
            report.passes = stats.passes;
            trl_obs::counter!("minimize.swaps").add(stats.swaps);
            trl_obs::counter!("minimize.passes").add(stats.passes);
            candidates.push(("obdd", compact(&m.to_nnf(root))));
        }
    }

    // Candidate 3: vtree local search (recompiles through SDDs).
    if cfg.strategy.runs_vtree() && Instant::now() < deadline {
        let _span = trl_obs::trace_span("minimize.vtree");
        let (cand, stats) = search(c, cfg, deadline);
        report.rotations = stats.rotations;
        trl_obs::counter!("minimize.rotations").add(stats.rotations);
        if let Some(cand) = cand {
            candidates.push(("vtree", cand));
        }
    }

    // Smallest strictly-smaller candidate that answers identically wins.
    let verify_span = trl_obs::trace_span("minimize.verify");
    candidates.sort_by_key(|(_, cand)| cand.node_count());
    let mut out = None;
    for (name, cand) in candidates {
        if cand.node_count() >= nodes_before {
            break; // sorted: nothing further can be smaller
        }
        if answers_match(c, &cand) {
            out = Some((name, cand));
            break;
        }
        trl_obs::counter!("minimize.rejected").inc();
    }
    drop(verify_span);

    let (circuit, accepted) = match out {
        Some((name, cand)) => {
            report.strategy = name;
            report.nodes_after = cand.node_count();
            (cand, true)
        }
        None => (c.clone(), false),
    };
    report.accepted = accepted;
    if accepted {
        trl_obs::counter!("minimize.accepted").inc();
        trl_obs::counter!("minimize.nodes_reclaimed")
            .add((nodes_before - report.nodes_after) as u64);
    }
    report.wall_us = start.elapsed().as_micros().max(1) as u64;
    trl_obs::histogram!("minimize.wall_us").record_us(report.wall_us);
    trl_obs::histogram!("minimize.nodes_after").record_us(report.nodes_after as u64);
    (circuit, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trl_core::Assignment;
    use trl_nnf::CircuitBuilder;

    /// A circuit with obvious slack: ⊤-padded gates and duplicate
    /// structure the builder was bypassed on.
    fn slack_circuit() -> Circuit {
        let mut b = CircuitBuilder::new(3);
        let t = b.true_();
        let l0 = b.lit(trl_core::Var(0).positive());
        let l1 = b.lit(trl_core::Var(1).positive());
        let l2 = b.lit(trl_core::Var(2).negative());
        let a1 = b.and_raw([l0, t, l1]);
        let a2 = b.and_raw([l0, l2, t]);
        let root = b.or_raw([a1, a2]);
        b.finish(root)
    }

    #[test]
    fn minimize_shrinks_and_preserves() {
        let c = slack_circuit();
        let (m, report) = minimize_circuit(&c, &MinimizeConfig::default());
        assert!(report.accepted, "slack must be reclaimed");
        assert!(m.node_count() < c.node_count());
        assert_eq!(report.nodes_after, m.node_count());
        assert_ne!(report.strategy, "none");
        for code in 0..8u64 {
            let a = Assignment::from_index(code, 3);
            assert_eq!(m.eval(&a), c.eval(&a));
        }
    }

    #[test]
    fn never_trigger_is_a_no_op() {
        let c = slack_circuit();
        let cfg = MinimizeConfig {
            trigger: Trigger::Never,
            ..MinimizeConfig::default()
        };
        let (m, report) = minimize_circuit(&c, &cfg);
        assert!(!report.accepted);
        assert_eq!(report.strategy, "none");
        assert_eq!(m.node_count(), c.node_count());
    }

    #[test]
    fn threshold_trigger_skips_small_circuits() {
        let c = slack_circuit();
        let cfg = MinimizeConfig {
            trigger: Trigger::Threshold { min_nodes: 1_000 },
            ..MinimizeConfig::default()
        };
        let (_, report) = minimize_circuit(&c, &cfg);
        assert!(!report.accepted);
    }

    #[test]
    fn already_minimal_circuit_is_kept() {
        let mut b = CircuitBuilder::new(2);
        let l0 = b.lit(trl_core::Var(0).positive());
        let l1 = b.lit(trl_core::Var(1).positive());
        let root = b.and([l0, l1]);
        let c = b.finish(root);
        let (m, report) = minimize_circuit(&c, &MinimizeConfig::default());
        assert_eq!(m.node_count(), c.node_count());
        // Accepted only if strictly smaller — a 3-node circuit has no slack.
        assert!(!report.accepted);
    }

    #[test]
    fn metric_registration_is_idempotent() {
        register_metrics();
        register_metrics();
        let dump = trl_obs::snapshot();
        for name in MINIMIZE_COUNTERS {
            assert!(dump.counter(name).is_some(), "{name} missing");
        }
        for name in MINIMIZE_HISTOGRAMS {
            assert!(dump.histogram(name).is_some(), "{name} missing");
        }
    }
}
