//! Lane-batched, SIMD-dispatched, cache-ordered evaluation kernels over a
//! linearized tape.
//!
//! The polytime queries of [`crate::queries`] are linear arena sweeps — the
//! same DAG walked again and again with different leaf values. That is the
//! hot path of a compile-once/query-many deployment, and it is
//! embarrassingly regular, so this module trades the pointer-chasing
//! `NnfNode` walk for a dense instruction tape built once per circuit:
//!
//! * **[`EvalTape`]** — the reachable arena linearized into struct-of-arrays
//!   form: one op tag per node, child edges in a single CSR arc array, and
//!   literals in a parallel column. A sweep is a forward scan over
//!   contiguous slices; nothing is re-discovered per query. Within each
//!   dependency layer, slots are reordered so gates appear in the order of
//!   their first child's slot (children-contiguous CSR ordering): a layer's
//!   child reads then advance roughly monotonically through the previous
//!   layers instead of hopping across them, which keeps the sweep inside
//!   the cache lines it just filled.
//! * **Lane batching with explicit SIMD** — [`EvalTape::wmc_batch`] and
//!   friends give every node a `[f64; LANES]` value plane and answer
//!   `LANES` queries per tape scan. The per-node inner loops run on the
//!   widest [`LaneBackend`] the CPU supports — one AVX-512 register or two
//!   AVX2 registers per plane on `x86_64`, four NEON registers on
//!   `aarch64` — with the plain `[f64; 8]` scalar-lane path always
//!   compiled as the bit-identical fallback (and the only path when the
//!   `simd` cargo feature is off).
//! * **Layer scheduling on a persistent pool** — nodes are stored grouped
//!   by dependency depth (children always in strictly earlier layers), so
//!   each layer is a contiguous block that [`EvalTape::wmc_batch_layered`]
//!   fans out across the persistent [`SweepPool`]: workers claim chunks of
//!   each layer off a shared cursor (chunked work-stealing) and meet at
//!   one barrier per layer. No threads are spawned per sweep.
//!
//! Every kernel returns answers **bit-identical** to the corresponding
//! scalar entry point in [`crate::queries`] (`wmc_presmoothed`,
//! `model_count_presmoothed`, `model_count_under_presmoothed`,
//! `wmc_marginals_presmoothed`): per node, the same floating-point
//! operations run in the same per-lane order on every backend and under
//! every schedule, and the order-sensitive derivative accumulation of the
//! marginal kernel replays the original arena order via a stored
//! permutation. `crates/nnf/tests/kernel_equiv.rs` and
//! `tests/kernel_props.rs` assert this across the crosscheck corpus, for
//! every supported backend.
//!
//! Preconditions match the `_presmoothed` queries: the circuit must be
//! decomposable, deterministic, and already smooth with the root covering
//! the full universe (`trl-engine`'s `PreparedCircuit` guarantees this).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;

use crate::circuit::{Circuit, NnfId, NnfNode};
use crate::pool::SweepPool;
use crate::queries::LitWeights;
use crate::simd::LaneBackend;
use trl_core::{Lit, PartialAssignment, Var};

/// Queries answered per tape scan by the lane-batched kernels. Eight `f64`
/// lanes fill one AVX-512 register, two AVX2 registers, or four NEON
/// registers; the scalar-lane fallback is written so the compiler
/// auto-vectorizes it at the baseline feature level.
pub const LANES: usize = 8;

/// Tape slots a pool worker claims per cursor fetch in the layered sweep:
/// small enough to load-balance ragged layers, large enough that the
/// atomic claim is amortized over thousands of lane operations.
const POOL_CHUNK: usize = 256;

/// Publishes one batched-kernel entry to the process metrics: one sweep
/// per lane group, plus the lanes actually filled (dead lanes excluded) —
/// the ratio is the batch's lane utilization. A few relaxed atomic adds
/// per *batch*, not per query.
fn record_sweeps(queries: usize) {
    trl_obs::counter!("kernel.sweeps").add(queries.div_ceil(LANES) as u64);
    trl_obs::counter!("kernel.lanes_filled").add(queries as u64);
}

/// Trace-span name for a batched sweep on `backend`. Span names must be
/// `&'static str` (the flight recorder stores them by pointer), so the
/// backend is baked into the name — a trace shows which lane path
/// actually ran, not just that a sweep happened.
fn sweep_span_name(backend: LaneBackend) -> &'static str {
    match backend {
        LaneBackend::Scalar => "kernel.sweep.scalar",
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        LaneBackend::Avx2 => "kernel.sweep.avx2",
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        LaneBackend::Avx512 => "kernel.sweep.avx512",
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        LaneBackend::Neon => "kernel.sweep.neon",
    }
}

/// One instruction tag on the tape.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Op {
    /// The constant false.
    False,
    /// The constant true.
    True,
    /// A literal leaf; the literal lives in the parallel `lits` column.
    Lit,
    /// An and-gate over a CSR edge slice.
    And,
    /// An or-gate over a CSR edge slice.
    Or,
}

/// A 64-byte-aligned backing buffer of `[f64; LANES]` value planes. A
/// plain `Vec<[f64; LANES]>` is only 8-byte aligned, so a full-width
/// register access to a plane would span two cache lines seven times out
/// of eight; aligning the first plane to a line boundary makes every
/// plane line-exact (one plane is exactly one 64-byte line).
struct PlaneBuf {
    buf: Vec<f64>,
    /// Offset (in `f64`s) of the first aligned plane.
    off: usize,
    /// Number of planes.
    len: usize,
}

impl PlaneBuf {
    fn new(len: usize) -> PlaneBuf {
        let buf = vec![0.0f64; len * LANES + LANES - 1];
        let off = buf.as_ptr().align_offset(64).min(LANES - 1);
        PlaneBuf { buf, off, len }
    }

    fn as_mut_ptr(&mut self) -> *mut [f64; LANES] {
        unsafe { self.buf.as_mut_ptr().add(self.off) as *mut [f64; LANES] }
    }

    fn planes(&self) -> &[[f64; LANES]] {
        // SAFETY: the buffer holds `len * LANES` doubles starting at
        // `off`, and `[f64; LANES]` has alignment 8 which `off` respects.
        unsafe {
            std::slice::from_raw_parts(
                self.buf.as_ptr().add(self.off) as *const [f64; LANES],
                self.len,
            )
        }
    }
}

/// A raw pointer to the value plane, shared with pool workers for the
/// duration of one layered sweep. Workers write disjoint slot ranges
/// (chunked cursor claims are unique) and a barrier separates each
/// layer's writes from the next layer's reads, so no cell is ever written
/// and read concurrently.
struct SharedPlane(*mut [f64; LANES]);

// SAFETY: disjoint writes per layer plus barrier-ordered cross-layer
// reads; see `SharedPlane`'s doc comment and `forward_lanes_pooled`.
unsafe impl Sync for SharedPlane {}

/// The reachable arena of a smooth circuit, linearized into a contiguous,
/// layer-ordered instruction tape (struct-of-arrays). Build once per
/// circuit with [`EvalTape::new`], then answer any number of counting-style
/// queries through the kernels; see the module docs for the layout.
#[derive(Clone, Debug)]
pub struct EvalTape {
    num_vars: usize,
    /// Op tag per tape slot.
    ops: Vec<Op>,
    /// Literal per tape slot; meaningful only where `ops` says `Lit`.
    lits: Vec<Lit>,
    /// CSR offsets into `edges`, one entry per tape slot plus a sentinel.
    edge_start: Vec<u32>,
    /// Child tape indices of every gate, concatenated in gate-input order.
    edges: Vec<u32>,
    /// Layer boundaries: nodes `layer_start[l]..layer_start[l+1]` form
    /// dependency layer `l`; all their children sit in earlier layers.
    layer_start: Vec<u32>,
    /// Tape indices listed in original arena order — the replay schedule
    /// for the order-sensitive derivative pass of the marginal kernel.
    arena_order: Vec<u32>,
    /// The root's tape slot (always the last slot: the root is an ancestor
    /// of every reachable node, so it alone occupies the top layer).
    root: u32,
    /// The SIMD backend the lane-batched sweeps dispatch to; detected at
    /// build time, overridable per tape via [`EvalTape::set_lane_backend`].
    backend: LaneBackend,
}

impl EvalTape {
    /// Linearizes the nodes reachable from the root of `circuit`.
    ///
    /// Unreachable arena nodes are dropped; the survivors are stored
    /// grouped by dependency layer with gate inputs rewritten to tape
    /// indices. Layer 0 (the leaves) keeps its arena-relative order — the
    /// marginal kernels rely on that — while every later layer is sorted
    /// by first-child slot so a layer's CSR reads walk the earlier layers
    /// roughly in storage order (cache locality; the effect shows up in
    /// the `kernel.tape_nodes`-normalized sweep times of `bench_eval`).
    pub fn new(circuit: &Circuit) -> EvalTape {
        let root = circuit.root().index();
        // Reachability: the arena is topological, so one reverse scan from
        // the root marks every reachable node.
        let mut reach = vec![false; root + 1];
        reach[root] = true;
        for i in (0..=root).rev() {
            if !reach[i] {
                continue;
            }
            if let NnfNode::And(xs) | NnfNode::Or(xs) = circuit.node(NnfId(i as u32)) {
                for x in xs {
                    reach[x.index()] = true;
                }
            }
        }

        // Dependency depth per reachable node: leaves are layer 0, gates
        // sit one past their deepest input.
        let mut level = vec![0u32; root + 1];
        let mut max_level = 0u32;
        for i in 0..=root {
            if !reach[i] {
                continue;
            }
            if let NnfNode::And(xs) | NnfNode::Or(xs) = circuit.node(NnfId(i as u32)) {
                let l = xs.iter().map(|x| level[x.index()] + 1).max().unwrap_or(0);
                level[i] = l;
                max_level = max_level.max(l);
            }
        }

        // Group members per layer in arena order (stable), then assign
        // tape slots layer by layer. Layers past the leaves are reordered
        // by (op, first-child slot) before assignment: since every child's
        // slot is already fixed (strictly earlier layer), the sort key is
        // exact. Grouping by op first turns the kernel's per-node dispatch
        // into long predictable runs; within a run the CSR reads advance
        // monotonically in the common chain/fan-out shapes.
        let layers = max_level as usize + 1;
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); layers];
        for i in 0..=root {
            if reach[i] {
                members[level[i] as usize].push(i as u32);
            }
        }
        let mut layer_start = vec![0u32; layers + 1];
        for (l, m) in members.iter().enumerate() {
            layer_start[l + 1] = layer_start[l] + m.len() as u32;
        }
        let mut slot = vec![u32::MAX; root + 1];
        let mut next = 0u32;
        for (l, member) in members.iter_mut().enumerate() {
            if l > 0 {
                member.sort_by_key(|&i| match circuit.node(NnfId(i)) {
                    NnfNode::And(xs) => (0u8, xs.first().map_or(u32::MAX, |x| slot[x.index()])),
                    NnfNode::Or(xs) => (1u8, xs.first().map_or(u32::MAX, |x| slot[x.index()])),
                    _ => (2u8, u32::MAX),
                });
            }
            for &i in member.iter() {
                slot[i as usize] = next;
                next += 1;
            }
        }
        let count = next as usize;
        let mut arena_order = Vec::with_capacity(count);
        for i in 0..=root {
            if reach[i] {
                arena_order.push(slot[i]);
            }
        }

        // Fill the tape columns in tape order.
        let mut ops = vec![Op::False; count];
        let mut lits = vec![Var(0).positive(); count];
        let mut edge_start = vec![0u32; count + 1];
        let mut edges = Vec::new();
        let mut inverse = vec![0u32; count];
        for i in 0..=root {
            if reach[i] {
                inverse[slot[i] as usize] = i as u32;
            }
        }
        for t in 0..count {
            let node = circuit.node(NnfId(inverse[t]));
            edge_start[t] = edges.len() as u32;
            ops[t] = match node {
                NnfNode::False => Op::False,
                NnfNode::True => Op::True,
                NnfNode::Lit(l) => {
                    lits[t] = *l;
                    Op::Lit
                }
                NnfNode::And(xs) => {
                    edges.extend(xs.iter().map(|x| slot[x.index()]));
                    Op::And
                }
                NnfNode::Or(xs) => {
                    edges.extend(xs.iter().map(|x| slot[x.index()]));
                    Op::Or
                }
            };
        }
        edge_start[count] = edges.len() as u32;

        debug_assert_eq!(slot[root] as usize, count - 1, "root tops the tape");
        trl_obs::counter!("kernel.tape_builds").inc();
        trl_obs::counter!("kernel.tape_nodes").add(count as u64);
        EvalTape {
            num_vars: circuit.num_vars(),
            ops,
            lits,
            edge_start,
            edges,
            layer_start,
            arena_order,
            root: (count - 1) as u32,
            backend: LaneBackend::detect(),
        }
    }

    /// Number of tape slots (reachable circuit nodes).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the tape is empty (never: even `⊥` occupies one slot).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of dependency layers.
    pub fn num_layers(&self) -> usize {
        self.layer_start.len() - 1
    }

    /// The variable universe size of the underlying circuit.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The [`LaneBackend`] the lane-batched sweeps currently dispatch to.
    pub fn lane_backend(&self) -> LaneBackend {
        self.backend
    }

    /// Forces the lane-batched sweeps onto `backend`. Unsupported requests
    /// fall back to [`LaneBackend::Scalar`] (always available) rather than
    /// risking an illegal instruction; answers are bit-identical either
    /// way, so this is a pure performance/testing knob — forcing `Scalar`
    /// keeps the fallback path exercised on SIMD-capable hosts.
    pub fn set_lane_backend(&mut self, backend: LaneBackend) {
        self.backend = if backend.is_supported() {
            backend
        } else {
            LaneBackend::Scalar
        };
    }

    /// The tape's child slice for slot `i`.
    #[inline]
    fn children(&self, i: usize) -> &[u32] {
        &self.edges[self.edge_start[i] as usize..self.edge_start[i + 1] as usize]
    }

    // ------------------------------------------------------------------
    // Scalar tape kernels: one query per scan, no `NnfNode` dispatch.
    // ------------------------------------------------------------------

    /// Weighted model count: bit-identical to
    /// [`Circuit::wmc_presmoothed`](crate::circuit::Circuit).
    pub fn wmc(&self, w: &LitWeights) -> f64 {
        // Single-query scans never touch the lane backends, so the span
        // name distinguishes them from the lane-batched sweeps.
        let _sweep = trl_obs::trace_span("kernel.sweep.single");
        let mut val = vec![0.0f64; self.len()];
        for i in 0..self.len() {
            val[i] = match self.ops[i] {
                Op::False => 0.0,
                Op::True => 1.0,
                Op::Lit => w.get(self.lits[i]),
                Op::And => {
                    let mut acc = 1.0;
                    for &ch in self.children(i) {
                        acc *= val[ch as usize];
                    }
                    acc
                }
                Op::Or => {
                    let mut acc = 0.0;
                    for &ch in self.children(i) {
                        acc += val[ch as usize];
                    }
                    acc
                }
            };
        }
        val[self.root as usize]
    }

    /// Model count: equal to
    /// [`Circuit::model_count_presmoothed`](crate::circuit::Circuit).
    pub fn model_count(&self) -> u128 {
        self.count_with(|_| 1)
    }

    /// Model count under evidence: equal to
    /// [`Circuit::model_count_under_presmoothed`](crate::circuit::Circuit).
    pub fn model_count_under(&self, pa: &PartialAssignment) -> u128 {
        self.count_with(|l| (pa.eval(l) != Some(false)) as u128)
    }

    fn count_with(&self, leaf: impl Fn(Lit) -> u128) -> u128 {
        let _sweep = trl_obs::trace_span("kernel.sweep.single");
        let mut val = vec![0u128; self.len()];
        for i in 0..self.len() {
            val[i] = match self.ops[i] {
                Op::False => 0,
                Op::True => 1,
                Op::Lit => leaf(self.lits[i]),
                Op::And => self
                    .children(i)
                    .iter()
                    .map(|&ch| val[ch as usize])
                    .product(),
                Op::Or => self.children(i).iter().map(|&ch| val[ch as usize]).sum(),
            };
        }
        val[self.root as usize]
    }

    /// WMC plus all literal marginals: bit-identical to
    /// [`Circuit::wmc_marginals_presmoothed`](crate::circuit::Circuit).
    pub fn marginals(&self, w: &LitWeights) -> (f64, Vec<(f64, f64)>) {
        let mut out = self.marginals_batch(&[w]);
        out.pop().expect("one lane in, one answer out")
    }

    // ------------------------------------------------------------------
    // Lane-batched kernels: LANES queries per scan, SIMD per node.
    // ------------------------------------------------------------------

    /// Answers one WMC query per weight table, `LANES` at a time: a single
    /// tape scan fills every lane of a `[f64; LANES]` value plane through
    /// the active [`LaneBackend`], so the traversal cost is amortized
    /// across the group and each node's arithmetic runs on the widest
    /// vector unit available. Answers are bit-identical to calling
    /// [`EvalTape::wmc`] per table, on every backend.
    pub fn wmc_batch(&self, weights: &[&LitWeights]) -> Vec<f64> {
        let _sweep = trl_obs::trace_span(sweep_span_name(self.backend));
        record_sweeps(weights.len());
        let mut out = Vec::with_capacity(weights.len());
        let mut plane = PlaneBuf::new(self.len());
        for group in weights.chunks(LANES) {
            self.wmc_lanes(group, &mut plane);
            let root = &plane.planes()[self.root as usize];
            out.extend_from_slice(&root[..group.len()]);
        }
        out
    }

    /// One lane-group forward sweep; `group.len() <= LANES`, dead lanes
    /// evaluate under all-zero weights (harmlessly finite).
    fn wmc_lanes(&self, group: &[&LitWeights], plane: &mut PlaneBuf) {
        debug_assert!(group.len() <= LANES && plane.len == self.len());
        // SAFETY: `plane` is exclusively borrowed and covers the tape, and
        // the full range is swept in layer order, so every child is
        // written before its parent reads it.
        unsafe { self.sweep_range(group, plane.as_mut_ptr(), 0, self.len()) }
    }

    /// Computes tape slots `lo..hi` of one lane-group forward sweep,
    /// dispatching to the active backend's specialized loop.
    ///
    /// # Safety
    ///
    /// `plane` must be valid for `self.len()` slots; the caller must have
    /// exclusive write access to slots `lo..hi` and every child of those
    /// slots must already be written (layer ordering guarantees children
    /// sit below `lo` when sweeping layer slices in order).
    unsafe fn sweep_range(
        &self,
        group: &[&LitWeights],
        plane: *mut [f64; LANES],
        lo: usize,
        hi: usize,
    ) {
        match self.backend {
            LaneBackend::Scalar => self.sweep_range_with::<lanes::ScalarOps>(group, plane, lo, hi),
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            LaneBackend::Avx2 => self.sweep_range_avx2(group, plane, lo, hi),
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            LaneBackend::Avx512 => self.sweep_range_avx512(group, plane, lo, hi),
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            LaneBackend::Neon => self.sweep_range_with::<lanes::NeonOps>(group, plane, lo, hi),
        }
    }

    /// The backend-generic forward-sweep loop. Monomorphized per
    /// [`lanes::LaneOps`] impl and inlined into the `target_feature`
    /// wrappers, so the vector backends compile with their full
    /// instruction set. Per lane, every backend performs the identical
    /// IEEE-754 operation sequence — that is the bit-identity contract.
    ///
    /// # Safety
    ///
    /// As [`EvalTape::sweep_range`], plus: `O`'s target feature must be
    /// available on the executing CPU.
    #[inline(always)]
    unsafe fn sweep_range_with<O: lanes::LaneOps>(
        &self,
        group: &[&LitWeights],
        plane: *mut [f64; LANES],
        lo: usize,
        hi: usize,
    ) {
        let ops = self.ops.as_ptr();
        let lits = self.lits.as_ptr();
        let edge_start = self.edge_start.as_ptr();
        let edges = self.edges.as_ptr();
        // Leaves (layer 0) are filled transposed: one wide constant store
        // per slot, then one pass per lane writing that lane's literal
        // weights. No wide load ever reads freshly written scalar lanes
        // (a guaranteed store-forwarding stall), and each per-lane pass
        // walks the literal column sequentially.
        let leaf_hi = hi.min(self.layer_start[1] as usize);
        for i in lo..leaf_hi {
            let out = plane.add(i) as *mut f64;
            match *ops.add(i) {
                // Lit planes are zeroed now (dead lanes stay 0.0) and get
                // their live lanes in the passes below. Childless gates
                // land in layer 0 too: an empty product is 1, an empty
                // sum 0 — exactly the constant stores.
                Op::False | Op::Lit | Op::Or => O::store(out, O::splat(0.0)),
                Op::True | Op::And => O::store(out, O::splat(1.0)),
            }
        }
        for (lane, w) in group.iter().enumerate() {
            for i in lo..leaf_hi {
                if *ops.add(i) == Op::Lit {
                    *(plane.add(i) as *mut f64).add(lane) = w.get(*lits.add(i));
                }
            }
        }
        let lo = leaf_hi.max(lo);
        // The edge cursor advances monotonically with the slot index, so
        // the inner loops never re-read CSR offsets or build slices.
        let mut e = *edge_start.add(lo) as usize;
        for i in lo..hi {
            let out = plane.add(i) as *mut f64;
            let e_end = *edge_start.add(i + 1) as usize;
            match *ops.add(i) {
                Op::False => O::store(out, O::splat(0.0)),
                Op::True => O::store(out, O::splat(1.0)),
                Op::Lit => {
                    // Unreachable for well-formed tapes (literals live in
                    // layer 0), kept for sweep-range generality: assemble
                    // lanes in a stack buffer, publish with one store.
                    let l = *lits.add(i);
                    let mut vals = [0.0f64; LANES];
                    for (lane, w) in group.iter().enumerate() {
                        vals[lane] = w.get(l);
                    }
                    O::store(out, O::load(vals.as_ptr()));
                }
                // The leading identity element is kept in the fold —
                // `0.0 + x` is not a bitwise no-op when `x` is `-0.0` —
                // so every backend runs the identical per-lane op
                // sequence as the scalar kernels.
                Op::And => {
                    let mut acc = O::splat(1.0);
                    for k in e..e_end {
                        let ch = *edges.add(k) as usize;
                        acc = O::mul(acc, O::load(plane.add(ch) as *const f64));
                    }
                    O::store(out, acc);
                }
                Op::Or => {
                    let mut acc = O::splat(0.0);
                    for k in e..e_end {
                        let ch = *edges.add(k) as usize;
                        acc = O::add(acc, O::load(plane.add(ch) as *const f64));
                    }
                    O::store(out, acc);
                }
            }
            e = e_end;
        }
    }

    /// [`EvalTape::sweep_range_with`] compiled with AVX2 enabled.
    ///
    /// # Safety
    ///
    /// As [`EvalTape::sweep_range`]; the CPU must support AVX2 (the
    /// dispatcher only routes here when [`LaneBackend::Avx2`] is active,
    /// which [`EvalTape::set_lane_backend`] only permits when detected).
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[target_feature(enable = "avx2")]
    unsafe fn sweep_range_avx2(
        &self,
        group: &[&LitWeights],
        plane: *mut [f64; LANES],
        lo: usize,
        hi: usize,
    ) {
        self.sweep_range_with::<lanes::Avx2Ops>(group, plane, lo, hi)
    }

    /// [`EvalTape::sweep_range_with`] compiled with AVX-512F enabled.
    ///
    /// # Safety
    ///
    /// As [`EvalTape::sweep_range_avx2`], for AVX-512F.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[target_feature(enable = "avx512f")]
    unsafe fn sweep_range_avx512(
        &self,
        group: &[&LitWeights],
        plane: *mut [f64; LANES],
        lo: usize,
        hi: usize,
    ) {
        self.sweep_range_with::<lanes::Avx512Ops>(group, plane, lo, hi)
    }

    /// Lane-batched model counting under evidence: one `[u128; LANES]`
    /// plane scan per group of partial assignments. Counts are exact, so
    /// agreement with the scalar kernels is plain equality.
    pub fn model_count_under_batch(&self, evidence: &[&PartialAssignment]) -> Vec<u128> {
        // Exact u128 counting never touches the SIMD lanes, so the span
        // carries its own name rather than the backend's.
        let _sweep = trl_obs::trace_span("kernel.sweep.count");
        record_sweeps(evidence.len());
        let mut out = Vec::with_capacity(evidence.len());
        let mut plane = vec![[0u128; LANES]; self.len()];
        for group in evidence.chunks(LANES) {
            for i in 0..self.len() {
                plane[i] = match self.ops[i] {
                    Op::False => [0; LANES],
                    Op::True => [1; LANES],
                    Op::Lit => {
                        let l = self.lits[i];
                        let mut v = [0; LANES];
                        for (lane, pa) in group.iter().enumerate() {
                            v[lane] = (pa.eval(l) != Some(false)) as u128;
                        }
                        v
                    }
                    Op::And => {
                        let mut acc = [1u128; LANES];
                        for &ch in self.children(i) {
                            let v = plane[ch as usize];
                            for (lane, a) in acc.iter_mut().enumerate() {
                                *a *= v[lane];
                            }
                        }
                        acc
                    }
                    Op::Or => {
                        let mut acc = [0u128; LANES];
                        for &ch in self.children(i) {
                            let v = plane[ch as usize];
                            for (lane, a) in acc.iter_mut().enumerate() {
                                *a += v[lane];
                            }
                        }
                        acc
                    }
                };
            }
            let root = &plane[self.root as usize];
            out.extend_from_slice(&root[..group.len()]);
        }
        out
    }

    /// Lane-batched marginals: one upward plane sweep plus one downward
    /// derivative sweep per group of `LANES` weight tables. Bit-identical
    /// to [`Circuit::wmc_marginals_presmoothed`](crate::circuit::Circuit)
    /// per lane: the downward pass replays the original arena order and
    /// skips zero derivatives exactly like the scalar code.
    pub fn marginals_batch(&self, weights: &[&LitWeights]) -> Vec<(f64, Vec<(f64, f64)>)> {
        let _sweep = trl_obs::trace_span(sweep_span_name(self.backend));
        record_sweeps(weights.len());
        let n = self.num_vars;
        let mut out = Vec::with_capacity(weights.len());
        let mut plane = PlaneBuf::new(self.len());
        let mut der = vec![[0.0f64; LANES]; self.len()];
        let mut prefix: Vec<[f64; LANES]> = Vec::new();
        for group in weights.chunks(LANES) {
            self.wmc_lanes(group, &mut plane);
            self.derivative_lanes(plane.planes(), &mut der, &mut prefix);
            // Per-lane literal marginal accumulation, leaves in arena order
            // (layer 0 is stably sorted, so tape order agrees).
            let mut marginals = vec![vec![(0.0f64, 0.0f64); n]; group.len()];
            self.accumulate_lit_marginals(group, &der, &mut marginals);
            let root = plane.planes()[self.root as usize];
            for (lane, m) in marginals.into_iter().enumerate() {
                out.push((root[lane], m));
            }
        }
        out
    }

    /// Folds each literal slot's weighted derivative into the per-lane
    /// marginal table (positive/negative split per variable).
    fn accumulate_lit_marginals(
        &self,
        group: &[&LitWeights],
        der: &[[f64; LANES]],
        marginals: &mut [Vec<(f64, f64)>],
    ) {
        for ((op, l), d) in self.ops.iter().zip(&self.lits).zip(der) {
            if *op != Op::Lit {
                continue;
            }
            for (lane, w) in group.iter().enumerate() {
                let m = w.get(*l) * d[lane];
                let slot = &mut marginals[lane][l.var().index()];
                if l.is_positive() {
                    slot.0 += m;
                } else {
                    slot.1 += m;
                }
            }
        }
    }

    /// The downward derivative sweep shared by the marginal kernels. The
    /// accumulation into a child's derivative is order-sensitive, so the
    /// sweep replays the reverse of the original arena order.
    fn derivative_lanes(
        &self,
        plane: &[[f64; LANES]],
        der: &mut Vec<[f64; LANES]>,
        prefix: &mut Vec<[f64; LANES]>,
    ) {
        der.clear();
        der.resize(self.len(), [0.0; LANES]);
        der[self.root as usize] = [1.0; LANES];
        for &t in self.arena_order.iter().rev() {
            let i = t as usize;
            let d = der[i];
            if d.iter().all(|&x| x == 0.0) {
                continue;
            }
            match self.ops[i] {
                Op::Or => {
                    for &ch in self.children(i) {
                        for lane in 0..LANES {
                            if d[lane] != 0.0 {
                                der[ch as usize][lane] += d[lane];
                            }
                        }
                    }
                }
                Op::And => {
                    // ∂(∏ v_i)/∂v_j via prefix and suffix products, exactly
                    // as the scalar pass: d * prefix[i] * suffix, in order.
                    let children = self.children(i);
                    let k = children.len();
                    prefix.clear();
                    prefix.resize(k + 1, [1.0; LANES]);
                    for (c, &ch) in children.iter().enumerate() {
                        let v = plane[ch as usize];
                        for lane in 0..LANES {
                            prefix[c + 1][lane] = prefix[c][lane] * v[lane];
                        }
                    }
                    let mut suffix = [1.0f64; LANES];
                    for c in (0..k).rev() {
                        let ch = children[c] as usize;
                        for lane in 0..LANES {
                            if d[lane] != 0.0 {
                                der[ch][lane] += d[lane] * prefix[c][lane] * suffix[lane];
                            }
                            suffix[lane] *= plane[ch][lane];
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Layer-parallel kernels: one lane group, many cores, zero spawns.
    // ------------------------------------------------------------------

    /// [`EvalTape::wmc_batch`] with each dependency layer fanned out
    /// across up to `threads` workers of the process-global persistent
    /// [`SweepPool`] (chunked work-stealing within a layer, one barrier
    /// per layer, no thread spawned per sweep). Intended for large
    /// circuits, where a layer holds enough nodes to amortize the
    /// synchronization; answers remain bit-identical because every node
    /// still runs the same per-node arithmetic — only the schedule
    /// changes. Falls back to the sequential lane-batched kernel when
    /// fewer than two workers are available (`threads <= 1`, or a
    /// single-CPU host whose global pool has size 1).
    pub fn wmc_batch_layered(&self, weights: &[&LitWeights], threads: usize) -> Vec<f64> {
        self.wmc_batch_pooled(weights, SweepPool::global(), threads)
    }

    /// [`EvalTape::wmc_batch_layered`] against an explicit pool — the
    /// entry point tests and benchmarks use to exercise real worker
    /// threads regardless of the host's CPU count.
    pub fn wmc_batch_pooled(
        &self,
        weights: &[&LitWeights],
        pool: &SweepPool,
        threads: usize,
    ) -> Vec<f64> {
        let participants = threads.min(pool.size());
        if participants <= 1 || self.len() < 2 {
            return self.wmc_batch(weights);
        }
        let _sweep = trl_obs::trace_span(sweep_span_name(self.backend));
        record_sweeps(weights.len());
        let mut out = Vec::with_capacity(weights.len());
        let mut plane = PlaneBuf::new(self.len());
        for group in weights.chunks(LANES) {
            self.forward_lanes_pooled(group, &mut plane, pool, participants);
            let root = &plane.planes()[self.root as usize];
            out.extend_from_slice(&root[..group.len()]);
        }
        out
    }

    /// Layer-parallel marginals: the upward sweep fans out across the
    /// pool; the order-sensitive downward sweep stays sequential so the
    /// derivative accumulation replays the arena order bit-for-bit.
    pub fn marginals_batch_layered(
        &self,
        weights: &[&LitWeights],
        threads: usize,
    ) -> Vec<(f64, Vec<(f64, f64)>)> {
        self.marginals_batch_pooled(weights, SweepPool::global(), threads)
    }

    /// [`EvalTape::marginals_batch_layered`] against an explicit pool.
    pub fn marginals_batch_pooled(
        &self,
        weights: &[&LitWeights],
        pool: &SweepPool,
        threads: usize,
    ) -> Vec<(f64, Vec<(f64, f64)>)> {
        let participants = threads.min(pool.size());
        if participants <= 1 || self.len() < 2 {
            return self.marginals_batch(weights);
        }
        let _sweep = trl_obs::trace_span(sweep_span_name(self.backend));
        record_sweeps(weights.len());
        let n = self.num_vars;
        let mut plane = PlaneBuf::new(self.len());
        let mut der = vec![[0.0f64; LANES]; self.len()];
        let mut prefix: Vec<[f64; LANES]> = Vec::new();
        let mut out = Vec::with_capacity(weights.len());
        for group in weights.chunks(LANES) {
            self.forward_lanes_pooled(group, &mut plane, pool, participants);
            self.derivative_lanes(plane.planes(), &mut der, &mut prefix);
            let mut marginals = vec![vec![(0.0f64, 0.0f64); n]; group.len()];
            self.accumulate_lit_marginals(group, &der, &mut marginals);
            let root = plane.planes()[self.root as usize];
            for (lane, m) in marginals.into_iter().enumerate() {
                out.push((root[lane], m));
            }
        }
        out
    }

    /// The pooled layered forward sweep: `participants` pool workers
    /// (caller included) claim [`POOL_CHUNK`]-slot chunks of each
    /// contiguous layer block off a shared cursor and meet at a barrier
    /// before anyone reads that layer. The cursor makes the schedule
    /// work-stealing: a worker that drains its static share keeps
    /// claiming chunks that would have belonged to slower siblings
    /// (counted as `kernel.pool_steals`).
    fn forward_lanes_pooled(
        &self,
        group: &[&LitWeights],
        plane: &mut PlaneBuf,
        pool: &SweepPool,
        participants: usize,
    ) {
        trl_obs::counter!("kernel.pool_sweeps").inc();
        let barrier = Barrier::new(participants);
        let cursors: Vec<AtomicUsize> = (0..self.num_layers())
            .map(|_| AtomicUsize::new(0))
            .collect();
        let chunks = AtomicU64::new(0);
        let steals = AtomicU64::new(0);
        // Pool workers are long-lived threads with no trace context of
        // their own, so the dispatching thread's context is captured here
        // and re-installed inside every participant: worker 0 (the caller)
        // narrates one `kernel.pool.layer` span per layer barrier, and
        // each extra worker contributes a `kernel.pool.worker` span so the
        // request tree shows the sweep's actual fan-out. All timing is
        // skipped when the request is untraced (`ctx` is `None`).
        let ctx = trl_obs::current_trace();
        let shared = SharedPlane(plane.as_mut_ptr());
        pool.run(participants, &|t| {
            trl_obs::with_current_trace(ctx, || {
                let plane = &shared;
                let worker_start = ctx.map(|_| std::time::Instant::now());
                let (mut my_chunks, mut my_steals) = (0u64, 0u64);
                for (l, cursor) in cursors.iter().enumerate() {
                    let layer_start = if t == 0 {
                        worker_start.map(|_| std::time::Instant::now())
                    } else {
                        None
                    };
                    let a = self.layer_start[l] as usize;
                    let b = self.layer_start[l + 1] as usize;
                    let len = b - a;
                    // Static share bounds are used for the steal metric only;
                    // claiming is purely cursor-driven.
                    let share_lo = len * t / participants;
                    let share_hi = len * (t + 1) / participants;
                    loop {
                        let c = cursor.fetch_add(POOL_CHUNK, Ordering::Relaxed);
                        if c >= len {
                            break;
                        }
                        let hi = (c + POOL_CHUNK).min(len);
                        // SAFETY: cursor claims are disjoint (each fetch_add
                        // yields a unique chunk), every child sits in a
                        // strictly earlier layer fully written before the
                        // previous barrier, and the barrier below separates
                        // this layer's writes from the next layer's reads.
                        unsafe { self.sweep_range(group, plane.0, a + c, a + hi) };
                        my_chunks += 1;
                        if c < share_lo || c >= share_hi {
                            my_steals += 1;
                        }
                    }
                    barrier.wait();
                    if let Some(started) = layer_start {
                        trl_obs::record_trace_at("kernel.pool.layer", started, started.elapsed());
                    }
                }
                chunks.fetch_add(my_chunks, Ordering::Relaxed);
                steals.fetch_add(my_steals, Ordering::Relaxed);
                if t != 0 {
                    if let Some(started) = worker_start {
                        trl_obs::record_trace_at("kernel.pool.worker", started, started.elapsed());
                    }
                }
            });
        });
        trl_obs::counter!("kernel.pool_chunks").add(chunks.load(Ordering::Relaxed));
        trl_obs::counter!("kernel.pool_steals").add(steals.load(Ordering::Relaxed));
    }
}

/// The per-backend lane arithmetic the generic sweep loop is
/// monomorphized over. Each impl covers one whole `[f64; LANES]` value
/// plane; per lane, `mul`/`add` are single IEEE-754 operations, so every
/// backend produces bit-identical planes.
mod lanes {
    use super::LANES;

    /// One backend's register set covering a full value plane.
    pub(super) trait LaneOps {
        /// The register tuple holding `LANES` lanes.
        type V: Copy;
        /// Broadcasts `x` to every lane.
        ///
        /// # Safety
        /// The backend's target feature must be available on this CPU.
        unsafe fn splat(x: f64) -> Self::V;
        /// Loads `LANES` contiguous doubles.
        ///
        /// # Safety
        /// As [`LaneOps::splat`]; `p` must be valid for `LANES` reads.
        unsafe fn load(p: *const f64) -> Self::V;
        /// Stores `LANES` contiguous doubles.
        ///
        /// # Safety
        /// As [`LaneOps::splat`]; `p` must be valid for `LANES` writes.
        unsafe fn store(p: *mut f64, v: Self::V);
        /// Lane-wise IEEE-754 multiply.
        ///
        /// # Safety
        /// As [`LaneOps::splat`].
        unsafe fn mul(a: Self::V, b: Self::V) -> Self::V;
        /// Lane-wise IEEE-754 add.
        ///
        /// # Safety
        /// As [`LaneOps::splat`].
        unsafe fn add(a: Self::V, b: Self::V) -> Self::V;
    }

    /// The always-available `[f64; LANES]` reference implementation.
    pub(super) struct ScalarOps;

    impl LaneOps for ScalarOps {
        type V = [f64; LANES];

        #[inline(always)]
        unsafe fn splat(x: f64) -> Self::V {
            [x; LANES]
        }

        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self::V {
            *(p as *const [f64; LANES])
        }

        #[inline(always)]
        unsafe fn store(p: *mut f64, v: Self::V) {
            *(p as *mut [f64; LANES]) = v;
        }

        #[inline(always)]
        unsafe fn mul(a: Self::V, b: Self::V) -> Self::V {
            std::array::from_fn(|i| a[i] * b[i])
        }

        #[inline(always)]
        unsafe fn add(a: Self::V, b: Self::V) -> Self::V {
            std::array::from_fn(|i| a[i] + b[i])
        }
    }

    /// Two 256-bit registers per plane.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    pub(super) struct Avx2Ops;

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    impl LaneOps for Avx2Ops {
        type V = [core::arch::x86_64::__m256d; 2];

        #[inline(always)]
        unsafe fn splat(x: f64) -> Self::V {
            use core::arch::x86_64::_mm256_set1_pd;
            [_mm256_set1_pd(x), _mm256_set1_pd(x)]
        }

        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self::V {
            use core::arch::x86_64::_mm256_loadu_pd;
            [_mm256_loadu_pd(p), _mm256_loadu_pd(p.add(4))]
        }

        #[inline(always)]
        unsafe fn store(p: *mut f64, v: Self::V) {
            use core::arch::x86_64::_mm256_storeu_pd;
            _mm256_storeu_pd(p, v[0]);
            _mm256_storeu_pd(p.add(4), v[1]);
        }

        #[inline(always)]
        unsafe fn mul(a: Self::V, b: Self::V) -> Self::V {
            use core::arch::x86_64::_mm256_mul_pd;
            [_mm256_mul_pd(a[0], b[0]), _mm256_mul_pd(a[1], b[1])]
        }

        #[inline(always)]
        unsafe fn add(a: Self::V, b: Self::V) -> Self::V {
            use core::arch::x86_64::_mm256_add_pd;
            [_mm256_add_pd(a[0], b[0]), _mm256_add_pd(a[1], b[1])]
        }
    }

    /// One 512-bit register per plane: an and-gate's per-child update is
    /// a single `vmulpd`.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    pub(super) struct Avx512Ops;

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    impl LaneOps for Avx512Ops {
        type V = core::arch::x86_64::__m512d;

        #[inline(always)]
        unsafe fn splat(x: f64) -> Self::V {
            core::arch::x86_64::_mm512_set1_pd(x)
        }

        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self::V {
            core::arch::x86_64::_mm512_loadu_pd(p)
        }

        #[inline(always)]
        unsafe fn store(p: *mut f64, v: Self::V) {
            core::arch::x86_64::_mm512_storeu_pd(p, v);
        }

        #[inline(always)]
        unsafe fn mul(a: Self::V, b: Self::V) -> Self::V {
            core::arch::x86_64::_mm512_mul_pd(a, b)
        }

        #[inline(always)]
        unsafe fn add(a: Self::V, b: Self::V) -> Self::V {
            core::arch::x86_64::_mm512_add_pd(a, b)
        }
    }

    /// Four 128-bit registers per plane (`aarch64` NEON).
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    pub(super) struct NeonOps;

    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    impl LaneOps for NeonOps {
        type V = [core::arch::aarch64::float64x2_t; 4];

        #[inline(always)]
        unsafe fn splat(x: f64) -> Self::V {
            use core::arch::aarch64::vdupq_n_f64;
            [vdupq_n_f64(x); 4]
        }

        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self::V {
            use core::arch::aarch64::vld1q_f64;
            std::array::from_fn(|i| vld1q_f64(p.add(2 * i)))
        }

        #[inline(always)]
        unsafe fn store(p: *mut f64, v: Self::V) {
            use core::arch::aarch64::vst1q_f64;
            for (i, r) in v.into_iter().enumerate() {
                vst1q_f64(p.add(2 * i), r);
            }
        }

        #[inline(always)]
        unsafe fn mul(a: Self::V, b: Self::V) -> Self::V {
            use core::arch::aarch64::vmulq_f64;
            std::array::from_fn(|i| vmulq_f64(a[i], b[i]))
        }

        #[inline(always)]
        unsafe fn add(a: Self::V, b: Self::V) -> Self::V {
            use core::arch::aarch64::vaddq_f64;
            std::array::from_fn(|i| vaddq_f64(a[i], b[i]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use crate::properties::smooth;
    use trl_core::SplitMix64;

    fn v(i: u32) -> Var {
        Var(i)
    }

    /// A small smooth d-DNNF: ((x0 ∧ (x1 ∨ ¬x1)) ∨ (¬x0 ∧ x1)).
    fn small_smooth() -> Circuit {
        let mut b = CircuitBuilder::new(2);
        let x0 = b.var(v(0));
        let x1 = b.var(v(1));
        let nx0 = b.lit(v(0).negative());
        let nx1 = b.lit(v(1).negative());
        let taut = b.or_raw([x1, nx1]);
        let left = b.and([x0, taut]);
        let right = b.and([nx0, x1]);
        let root = b.or_raw([left, right]);
        b.finish(root)
    }

    fn skewed(n: usize, seed: u64) -> LitWeights {
        let mut rng = SplitMix64::new(seed);
        let mut w = LitWeights::unit(n);
        for i in 0..n as u32 {
            let p = 0.05 + 0.9 * rng.uniform();
            w.set(v(i).positive(), p);
            w.set(v(i).negative(), 1.0 - p);
        }
        w
    }

    #[test]
    fn tape_matches_scalar_queries_on_small_circuit() {
        let c = small_smooth();
        let tape = EvalTape::new(&c);
        assert_eq!(tape.num_vars(), 2);
        assert_eq!(tape.model_count(), c.model_count_presmoothed());
        let w = skewed(2, 7);
        assert_eq!(tape.wmc(&w).to_bits(), c.wmc_presmoothed(&w).to_bits());
        let (total, marg) = tape.marginals(&w);
        let (total2, marg2) = c.wmc_marginals_presmoothed(&w);
        assert_eq!(total.to_bits(), total2.to_bits());
        assert_eq!(marg, marg2);
    }

    #[test]
    fn tape_drops_unreachable_nodes() {
        let mut b = CircuitBuilder::new(2);
        let x0 = b.var(v(0));
        let x1 = b.var(v(1));
        let _orphan = b.and([x0, x1]); // never referenced by the root
        let nx0 = b.lit(v(0).negative());
        let root = b.or_raw([x0, nx0]);
        let c = b.finish(root);
        let tape = EvalTape::new(&c);
        assert!(tape.len() < c.node_count());
        assert_eq!(tape.model_count(), c.model_count_presmoothed());
    }

    #[test]
    fn layer_order_respects_dependencies_after_reorder() {
        let mut rng = SplitMix64::new(0xDE9);
        // A few random-ish smooth circuits via the builder: chains of
        // alternating gates over a handful of variables.
        let c = smooth(&small_smooth());
        let tape = EvalTape::new(&c);
        let _ = rng.next_u64();
        // Every gate's children live in strictly earlier layers, layer
        // bounds are monotone, and the root is the last slot.
        let layer_of = |slot: u32| {
            (0..tape.num_layers())
                .find(|&l| slot < tape.layer_start[l + 1])
                .expect("slot within bounds")
        };
        for l in 0..tape.num_layers() {
            assert!(tape.layer_start[l] <= tape.layer_start[l + 1]);
        }
        for i in 0..tape.len() {
            for &ch in tape.children(i) {
                assert!(ch < i as u32, "children precede parents on the tape");
                assert!(
                    layer_of(ch) < layer_of(i as u32),
                    "children sit in strictly earlier layers"
                );
            }
        }
        assert_eq!(tape.root as usize, tape.len() - 1);
    }

    #[test]
    fn batch_kernels_agree_with_scalar_tape() {
        let c = smooth(&small_smooth());
        let tape = EvalTape::new(&c);
        let weights: Vec<LitWeights> = (0..19).map(|s| skewed(2, 100 + s)).collect();
        let refs: Vec<&LitWeights> = weights.iter().collect();
        let batched = tape.wmc_batch(&refs);
        let layered = tape.wmc_batch_layered(&refs, 3);
        for (i, w) in weights.iter().enumerate() {
            let scalar = tape.wmc(w);
            assert_eq!(batched[i].to_bits(), scalar.to_bits(), "lane {i}");
            assert_eq!(layered[i].to_bits(), scalar.to_bits(), "layered {i}");
        }
        let marg_b = tape.marginals_batch(&refs);
        let marg_l = tape.marginals_batch_layered(&refs, 3);
        for (i, w) in weights.iter().enumerate() {
            let scalar = c.wmc_marginals_presmoothed(w);
            assert_eq!(marg_b[i].0.to_bits(), scalar.0.to_bits());
            assert_eq!(marg_b[i].1, scalar.1);
            assert_eq!(marg_l[i].0.to_bits(), scalar.0.to_bits());
            assert_eq!(marg_l[i].1, scalar.1);
        }
    }

    #[test]
    fn every_supported_backend_bit_matches_scalar_lanes() {
        let c = smooth(&small_smooth());
        let mut tape = EvalTape::new(&c);
        let weights: Vec<LitWeights> = (0..19).map(|s| skewed(2, 500 + s)).collect();
        let refs: Vec<&LitWeights> = weights.iter().collect();
        tape.set_lane_backend(LaneBackend::Scalar);
        let reference: Vec<u64> = tape.wmc_batch(&refs).iter().map(|x| x.to_bits()).collect();
        let ref_marg = tape.marginals_batch(&refs);
        for backend in LaneBackend::all_supported() {
            tape.set_lane_backend(backend);
            assert_eq!(tape.lane_backend(), backend);
            let got: Vec<u64> = tape.wmc_batch(&refs).iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, reference, "backend {}", backend.name());
            let marg = tape.marginals_batch(&refs);
            for (a, b) in marg.iter().zip(&ref_marg) {
                assert_eq!(a.0.to_bits(), b.0.to_bits(), "backend {}", backend.name());
                assert_eq!(a.1, b.1, "backend {}", backend.name());
            }
        }
    }

    #[test]
    fn forced_scalar_fallback_always_sticks() {
        let c = smooth(&small_smooth());
        let mut tape = EvalTape::new(&c);
        // Whatever was detected, forcing the fallback must take effect and
        // keep answering identically — this is the test that exercises the
        // non-SIMD path on SIMD-capable hosts.
        let auto = tape.wmc(&skewed(2, 11));
        tape.set_lane_backend(LaneBackend::Scalar);
        assert_eq!(tape.lane_backend(), LaneBackend::Scalar);
        let w = skewed(2, 11);
        assert_eq!(tape.wmc_batch(&[&w])[0].to_bits(), auto.to_bits());
    }

    #[test]
    fn pooled_sweeps_with_real_workers_bit_match() {
        let pool = SweepPool::new(3);
        let c = smooth(&small_smooth());
        let tape = EvalTape::new(&c);
        let weights: Vec<LitWeights> = (0..21).map(|s| skewed(2, 900 + s)).collect();
        let refs: Vec<&LitWeights> = weights.iter().collect();
        let sequential = tape.wmc_batch(&refs);
        let pooled = tape.wmc_batch_pooled(&refs, &pool, 3);
        for (a, b) in pooled.iter().zip(&sequential) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let marg_seq = tape.marginals_batch(&refs);
        let marg_pool = tape.marginals_batch_pooled(&refs, &pool, 3);
        for (a, b) in marg_pool.iter().zip(&marg_seq) {
            assert_eq!(a.0.to_bits(), b.0.to_bits());
            assert_eq!(a.1, b.1);
        }
    }

    #[test]
    fn evidence_counts_match_conditioning() {
        let c = small_smooth();
        let tape = EvalTape::new(&c);
        let mut pa = PartialAssignment::new(2);
        assert_eq!(tape.model_count_under(&pa), 3);
        pa.assign(v(0).positive());
        assert_eq!(tape.model_count_under(&pa), 2);
        assert_eq!(
            tape.model_count_under(&pa),
            c.model_count_under_presmoothed(&pa)
        );
        let mut pb = PartialAssignment::new(2);
        pb.assign(v(0).negative());
        pb.assign(v(1).negative());
        let empty = PartialAssignment::new(2);
        let batch = tape.model_count_under_batch(&[&empty, &pa, &pb]);
        assert_eq!(batch, vec![3, 2, 0]);
    }

    #[test]
    fn single_node_circuits_linearize() {
        type Build = fn(&mut CircuitBuilder) -> NnfId;
        let cases: [(Build, u128); 2] = [(|b| b.true_(), 2), (|b| b.false_(), 0)];
        for (build, expect) in cases {
            let mut b = CircuitBuilder::new(1);
            let root = build(&mut b);
            let c = b.finish(root);
            let tape = EvalTape::new(&smooth(&c));
            assert!(!tape.is_empty());
            assert_eq!(tape.model_count(), expect);
            let unit = LitWeights::unit(1);
            assert_eq!(tape.wmc_batch_layered(&[&unit], 2), vec![expect as f64]);
        }
    }
}
