//! Queries on OBDDs: evaluation, counting, weighted counting, model
//! enumeration, support, and the minimum-flips DP behind decision
//! robustness (§5.2 of the paper).

use crate::manager::{BddRef, Obdd};
use trl_core::{Assignment, FxHashMap, VarSet};
use trl_nnf::LitWeights;

impl Obdd {
    /// Evaluates `f` on a total assignment.
    pub fn eval(&self, f: BddRef, a: &Assignment) -> bool {
        let mut r = f;
        while !self.is_terminal(r) {
            let n = self.node(r);
            r = if a.value(self.var_at(n.level)) {
                n.high
            } else {
                n.low
            };
        }
        r == Self::TRUE
    }

    /// Model count of `f` over all variables in the manager's order.
    ///
    /// Linear in the diagram: skipped levels contribute factors of 2.
    /// Limited to managers with fewer than 128 variables (the count is a
    /// `u128`); use [`Obdd::wmc`] with unit weights beyond that.
    pub fn count_models(&self, f: BddRef) -> u128 {
        assert!(
            self.num_vars() < 128,
            "exact counting limited to < 128 variables; use wmc for approximate counts"
        );
        let mut memo: FxHashMap<BddRef, u128> = FxHashMap::default();
        let below = self.count_rec(f, &mut memo);
        below << self.node(f).level
    }

    fn count_rec(&self, f: BddRef, memo: &mut FxHashMap<BddRef, u128>) -> u128 {
        // Counts models over the variables from `level(f)` to the end.
        if f == Self::FALSE {
            return 0;
        }
        if f == Self::TRUE {
            return 1;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let n = self.node(f);
        let lo = self.count_rec(n.low, memo) << (self.node(n.low).level - n.level - 1);
        let hi = self.count_rec(n.high, memo) << (self.node(n.high).level - n.level - 1);
        let c = lo + hi;
        memo.insert(f, c);
        c
    }

    /// Weighted model count of `f` over the manager's variables.
    pub fn wmc(&self, f: BddRef, w: &LitWeights) -> f64 {
        let mut memo: FxHashMap<BddRef, f64> = FxHashMap::default();
        let below = self.wmc_rec(f, w, &mut memo);
        below * self.gap_weight(0, self.node(f).level, w)
    }

    fn gap_weight(&self, from: u32, to: u32, w: &LitWeights) -> f64 {
        (from..to)
            .map(|l| {
                let v = self.var_at(l);
                w.get(v.positive()) + w.get(v.negative())
            })
            .product()
    }

    fn wmc_rec(&self, f: BddRef, w: &LitWeights, memo: &mut FxHashMap<BddRef, f64>) -> f64 {
        if f == Self::FALSE {
            return 0.0;
        }
        if f == Self::TRUE {
            return 1.0;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let n = self.node(f);
        let var = self.var_at(n.level);
        let lo = self.wmc_rec(n.low, w, memo)
            * self.gap_weight(n.level + 1, self.node(n.low).level, w)
            * w.get(var.negative());
        let hi = self.wmc_rec(n.high, w, memo)
            * self.gap_weight(n.level + 1, self.node(n.high).level, w)
            * w.get(var.positive());
        let c = lo + hi;
        memo.insert(f, c);
        c
    }

    /// One satisfying assignment, or `None` if `f = ⊥`. Variables off the
    /// found path default to false.
    pub fn any_model(&self, f: BddRef) -> Option<Assignment> {
        if f == Self::FALSE {
            return None;
        }
        let mut a = Assignment::all_false(self.num_vars());
        let mut r = f;
        while !self.is_terminal(r) {
            let n = self.node(r);
            if n.high != Self::FALSE {
                a.set(self.var_at(n.level), true);
                r = n.high;
            } else {
                r = n.low;
            }
        }
        debug_assert_eq!(r, Self::TRUE);
        Some(a)
    }

    /// All models of `f` over the manager's variables, in ascending
    /// assignment-code order. Intended for tests and small functions.
    pub fn enumerate_models(&self, f: BddRef) -> Vec<Assignment> {
        let n = self.num_vars();
        assert!(n <= 24, "enumeration limited to 24 variables");
        let mut out = Vec::new();
        for code in 0..1u64 << n {
            let a = Assignment::from_index(code, n);
            if self.eval(f, &a) {
                out.push(a);
            }
        }
        out
    }

    /// The support of `f`: variables actually tested in the diagram. For
    /// reduced OBDDs this equals the set of variables the function depends
    /// on.
    pub fn support(&self, f: BddRef) -> VarSet {
        let mut seen = trl_core::FxHashSet::default();
        let mut out = VarSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if self.is_terminal(r) || !seen.insert(r) {
                continue;
            }
            let n = self.node(r);
            out.insert(self.var_at(n.level));
            stack.push(n.low);
            stack.push(n.high);
        }
        out
    }

    /// The minimum number of flips to `x` that reach an assignment `y` with
    /// `f(y) = target` — in one linear pass over the diagram \[81\].
    ///
    /// Variables skipped on a path keep their `x` value at zero cost, which
    /// is sound exactly because reduced OBDDs skip only irrelevant tests.
    /// Returns `None` when no such `y` exists (`f` constant at `!target`).
    pub fn min_flips_to(&self, f: BddRef, x: &Assignment, target: bool) -> Option<u32> {
        const INF: u32 = u32::MAX / 2;
        let mut memo: FxHashMap<BddRef, u32> = FxHashMap::default();
        let d = self.min_flips_rec(f, x, target, &mut memo);
        (d < INF).then_some(d)
    }

    fn min_flips_rec(
        &self,
        f: BddRef,
        x: &Assignment,
        target: bool,
        memo: &mut FxHashMap<BddRef, u32>,
    ) -> u32 {
        const INF: u32 = u32::MAX / 2;
        if self.is_terminal(f) {
            return if (f == Self::TRUE) == target { 0 } else { INF };
        }
        if let Some(&d) = memo.get(&f) {
            return d;
        }
        let n = self.node(f);
        let xv = x.value(self.var_at(n.level));
        let lo = self
            .min_flips_rec(n.low, x, target, memo)
            .saturating_add(xv as u32);
        let hi = self
            .min_flips_rec(n.high, x, target, memo)
            .saturating_add(!xv as u32);
        let d = lo.min(hi);
        memo.insert(f, d);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trl_core::Var;
    use trl_prop::Formula;

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn parity(n: u32) -> Formula {
        let mut f = Formula::var(v(0));
        for i in 1..n {
            f = f.xor(Formula::var(v(i)));
        }
        f
    }

    #[test]
    fn count_models_parity() {
        // Parity over n vars has exactly 2^(n-1) models — and tests the
        // level-gap handling since parity skips no levels.
        let mut m = Obdd::with_num_vars(6);
        let r = m.build_formula(&parity(6));
        assert_eq!(m.count_models(r), 32);
    }

    #[test]
    fn count_models_handles_gaps() {
        // f = x2 over 5 variables → 16 models, with gaps above and below.
        let mut m = Obdd::with_num_vars(5);
        let r = m.literal(v(2).positive());
        assert_eq!(m.count_models(r), 16);
        assert_eq!(m.count_models(Obdd::TRUE), 32);
        assert_eq!(m.count_models(Obdd::FALSE), 0);
    }

    #[test]
    fn wmc_matches_brute_force() {
        let mut m = Obdd::with_num_vars(4);
        let f = Formula::var(v(0))
            .and(Formula::var(v(1)))
            .or(Formula::var(v(2)).xor(Formula::var(v(3))));
        let r = m.build_formula(&f);
        let mut w = LitWeights::unit(4);
        w.set(v(0).positive(), 0.2);
        w.set(v(0).negative(), 0.8);
        w.set(v(3).positive(), 0.6);
        w.set(v(3).negative(), 0.4);
        let brute: f64 = (0..16u64)
            .map(|c| Assignment::from_index(c, 4))
            .filter(|a| f.eval(a))
            .map(|a| w.weight_of(&a))
            .sum();
        assert!((m.wmc(r, &w) - brute).abs() < 1e-12);
    }

    #[test]
    fn any_model_satisfies() {
        let mut m = Obdd::with_num_vars(3);
        let f = Formula::var(v(0)).not().and(Formula::var(v(2)));
        let r = m.build_formula(&f);
        let a = m.any_model(r).unwrap();
        assert!(m.eval(r, &a));
        assert!(m.any_model(Obdd::FALSE).is_none());
    }

    #[test]
    fn enumerate_matches_count() {
        let mut m = Obdd::with_num_vars(4);
        let f = Formula::var(v(0)).or(Formula::var(v(1)).and(Formula::var(v(3))));
        let r = m.build_formula(&f);
        let models = m.enumerate_models(r);
        assert_eq!(models.len() as u128, m.count_models(r));
        assert!(models.iter().all(|a| m.eval(r, a)));
    }

    #[test]
    fn support_is_dependency_set() {
        let mut m = Obdd::with_num_vars(4);
        // (x0 ∧ x1) ∨ (x0 ∧ ¬x1) depends only on x0 after reduction.
        let f = Formula::var(v(0))
            .and(Formula::var(v(1)))
            .or(Formula::var(v(0)).and(Formula::var(v(1)).not()));
        let r = m.build_formula(&f);
        let s = m.support(r);
        assert!(s.contains(v(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn min_flips_matches_brute_force() {
        let mut m = Obdd::with_num_vars(5);
        let f = Formula::var(v(0))
            .and(Formula::var(v(1)))
            .or(Formula::var(v(2))
                .and(Formula::var(v(3)))
                .and(Formula::var(v(4))));
        let r = m.build_formula(&f);
        for code in 0..32u64 {
            let x = Assignment::from_index(code, 5);
            for target in [true, false] {
                let brute = (0..32u64)
                    .map(|c| Assignment::from_index(c, 5))
                    .filter(|y| m.eval(r, y) == target)
                    .map(|y| x.hamming_distance(&y) as u32)
                    .min();
                assert_eq!(m.min_flips_to(r, &x, target), brute, "x={code:05b}");
            }
        }
    }

    #[test]
    fn min_flips_on_constants() {
        let m = Obdd::with_num_vars(3);
        let x = Assignment::from_index(0, 3);
        assert_eq!(m.min_flips_to(Obdd::TRUE, &x, true), Some(0));
        assert_eq!(m.min_flips_to(Obdd::TRUE, &x, false), None);
    }
}
