//! Integration: Bayesian network → CNF encoding → compiled circuit →
//! queries, validated against variable elimination end to end.

use three_roles::bayesnet::compiled::{map_value_sdd, sdp_sdd};
use three_roles::bayesnet::models::{abc, medical, random_network};
use three_roles::bayesnet::{CompiledBn, EncodingStyle};

#[test]
fn random_networks_circuit_equals_ve() {
    for seed in [1u64, 5, 9] {
        let bn = random_network(seed, 8, 2, 0.3);
        let compiled = CompiledBn::new(bn.clone(), EncodingStyle::LocalStructure);
        for ev in [vec![], vec![(2usize, 1usize)], vec![(0, 1), (5, 0)]] {
            let p_ve = bn.pr_evidence(&ev);
            let p_c = compiled.pr_evidence(&ev);
            assert!((p_ve - p_c).abs() < 1e-9, "seed {seed} ev {ev:?}");
            if p_ve > 1e-12 {
                let posts = compiled.posteriors(&ev);
                #[allow(clippy::needless_range_loop)] // v indexes parallel per-variable tables
                #[allow(clippy::needless_range_loop)]
                // v indexes parallel per-variable tables
                for v in 0..bn.num_vars() {
                    let ve = bn.posterior(v, &ev);
                    for val in 0..2 {
                        assert!(
                            (posts[v][val] - ve[val]).abs() < 1e-9,
                            "seed {seed} ev {ev:?} var {v}"
                        );
                    }
                }
                let (_, mpe_c) = compiled.mpe(&ev);
                let (_, mpe_ve) = bn.mpe(&ev);
                assert!((mpe_c - mpe_ve).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn both_encoding_styles_agree() {
    let bn = medical();
    let base = CompiledBn::new(bn.clone(), EncodingStyle::Baseline);
    let local = CompiledBn::new(bn, EncodingStyle::LocalStructure);
    for ev in [
        vec![],
        vec![(2usize, 1usize), (3usize, 1usize)],
        vec![(4, 0)],
    ] {
        assert!((base.pr_evidence(&ev) - local.pr_evidence(&ev)).abs() < 1e-12);
    }
}

#[test]
fn upper_class_queries_end_to_end() {
    let bn = abc();
    // MAP over {A} given C=1, against constrained elimination.
    let (_, ve) = bn.map(&[0], &vec![(2, 1)]);
    let circuit = map_value_sdd(&bn, &[0], &vec![(2, 1)]);
    assert!((ve - circuit).abs() < 1e-9);
    // SDP for the decision Pr(A=1|·) ≥ 0.5 observing B.
    let ve = bn.sdp(0, 1, 0.5, &[1], &vec![]);
    let circuit = sdp_sdd(&bn, 0, 1, 0.5, &[1], &vec![]);
    assert!((ve - circuit).abs() < 1e-9);
}

#[test]
fn deterministic_networks_stay_exact() {
    // High determinism exercises the 0/1 shortcuts end to end.
    let bn = random_network(77, 10, 3, 0.8);
    let compiled = CompiledBn::new(bn.clone(), EncodingStyle::LocalStructure);
    let ev = vec![];
    let posts = compiled.posteriors(&ev);
    #[allow(clippy::needless_range_loop)] // v indexes parallel per-variable tables
    for v in 0..bn.num_vars() {
        let ve = bn.posterior(v, &ev);
        assert!((posts[v][1] - ve[1]).abs() < 1e-9, "var {v}");
    }
}
