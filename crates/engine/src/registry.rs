//! The artifact registry: a bounded LRU store of typed artifacts keyed on
//! kind-salted fingerprints, compiling CNF circuits on miss.
//!
//! A serving process sees the same formulas again and again; recompiling
//! per request throws away exactly the work knowledge compilation exists to
//! amortize. The registry keeps compiled artifacts hot, bounded not by
//! entry count but by **retained arena nodes** — the unit memory is
//! actually spent in — and evicts least-recently-used artifacts when a new
//! compilation would exceed the budget. Since the roles subsystem, an
//! entry is an [`Artifact`]: a compiled circuit, a learned PSDD, a compiled
//! space, or a compiled classifier, all under one LRU/budget policy.

use std::sync::Arc;

use std::hash::Hasher;
use trl_compiler::DecisionDnnfCompiler;
use trl_core::{FxHashMap, FxHasher};
use trl_prop::Cnf;

use crate::artifact::Artifact;
use crate::prepared::PreparedCircuit;

/// A 64-bit fingerprint of a CNF: its universe size and every clause's
/// literal codes, in clause order. Two structurally identical formulas
/// fingerprint identically; the probability of distinct formulas colliding
/// is the usual ~2⁻⁶⁴ content-hash trade (the same one the compiler's
/// packed component signatures make).
pub fn fingerprint(cnf: &Cnf) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(cnf.num_vars() as u64);
    h.write_u64(cnf.clauses().len() as u64);
    for clause in cnf.clauses() {
        h.write_u32(clause.len() as u32);
        for &l in clause.literals() {
            h.write_u32(l.code());
        }
    }
    h.finish()
}

/// Running counters for a registry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Lookups served from the store.
    pub hits: u64,
    /// Lookups that compiled a new artifact.
    pub misses: u64,
    /// Artifacts evicted to stay under the node budget.
    pub evictions: u64,
}

/// A bounded compile-on-miss store of typed [`Artifact`]s.
pub struct Registry {
    compiler: DecisionDnnfCompiler,
    max_retained_nodes: usize,
    /// Artifact plus the node cost it was charged at insert time. The
    /// charge is snapshotted because a [`PreparedCircuit`]'s footprint
    /// grows when lazy smoothing materializes; re-reading it at eviction
    /// would debit more than was credited and underflow the budget.
    entries: FxHashMap<u64, (Artifact, usize)>,
    /// LRU order: front is coldest. Registries hold few, large artifacts,
    /// so the O(len) reorder on touch is noise next to a single query.
    order: Vec<u64>,
    retained_nodes: usize,
    stats: RegistryStats,
}

impl Registry {
    /// A registry with the default compiler and the given retained-node
    /// budget.
    pub fn new(max_retained_nodes: usize) -> Self {
        Self::with_compiler(max_retained_nodes, DecisionDnnfCompiler::default())
    }

    /// A registry compiling misses with a specific compiler configuration.
    pub fn with_compiler(max_retained_nodes: usize, compiler: DecisionDnnfCompiler) -> Self {
        Registry {
            compiler,
            max_retained_nodes,
            entries: FxHashMap::default(),
            order: Vec::new(),
            retained_nodes: 0,
            stats: RegistryStats::default(),
        }
    }

    /// The circuit for `cnf`, compiling and preparing it on miss. Circuit
    /// keys are unsalted CNF [`fingerprint`]s, so this can never collide
    /// with a role-2/3 artifact (their fingerprints are kind-salted).
    pub fn get_or_compile(&mut self, cnf: &Cnf) -> Arc<PreparedCircuit> {
        let key = fingerprint(cnf);
        if let Some(found) = self.entries.get(&key).and_then(|(a, _)| a.as_circuit()) {
            let found = Arc::clone(found);
            self.touch(key);
            self.stats.hits += 1;
            return found;
        }
        self.stats.misses += 1;
        let prepared = Arc::new(PreparedCircuit::new(self.compiler.compile(cnf)));
        self.insert(key, Artifact::Circuit(Arc::clone(&prepared)));
        prepared
    }

    /// The artifact under a fingerprint, if retained. Touches LRU order.
    pub fn get(&mut self, key: u64) -> Option<Artifact> {
        let found = self.entries.get(&key).map(|(a, _)| a.clone());
        if found.is_some() {
            self.touch(key);
            self.stats.hits += 1;
        }
        found
    }

    /// Records a miss that was served by an out-of-band compilation — used
    /// by callers (the [`crate::Engine`]) that compile outside the registry
    /// lock and then [`Registry::insert`], so the hit/miss counters still
    /// add up to total lookups.
    pub fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Inserts an externally produced artifact (e.g. one loaded from disk,
    /// or a learned PSDD) under a fingerprint, then evicts cold entries
    /// down to the budget. The artifact's current footprint is charged
    /// against the budget for the rest of its residence.
    pub fn insert(&mut self, key: u64, artifact: Artifact) {
        let charged = artifact.retained_nodes();
        if let Some((_, old_charged)) = self.entries.insert(key, (artifact, charged)) {
            self.retained_nodes -= old_charged;
            self.order.retain(|&k| k != key);
        }
        self.retained_nodes += charged;
        self.order.push(key);
        self.evict_to_budget();
    }

    /// The artifact under a fingerprint without touching LRU order or the
    /// hit/miss counters — maintenance passes (the optimize job) peek at
    /// entries without pretending to be traffic.
    pub fn peek(&self, key: u64) -> Option<Artifact> {
        self.entries.get(&key).map(|(a, _)| a.clone())
    }

    /// Atomically replaces the artifact under `key`, **re-snapshotting its
    /// budget charge**: a minimized artifact's smaller footprint releases
    /// budget immediately (the insert-time snapshot is otherwise never
    /// revisited), and a grown one triggers eviction as usual. LRU
    /// position is preserved — replacement is maintenance, not traffic.
    /// Returns `false` (storing nothing) if `key` is not resident.
    pub fn replace(&mut self, key: u64, artifact: Artifact) -> bool {
        let charged = artifact.retained_nodes();
        let Some(entry) = self.entries.get_mut(&key) else {
            return false;
        };
        let old_charged = entry.1;
        *entry = (artifact, charged);
        self.retained_nodes = self.retained_nodes - old_charged + charged;
        self.evict_to_budget();
        true
    }

    /// Evicts coldest-first until under budget. The hottest entry is never
    /// evicted, even if it alone exceeds the budget — a registry that
    /// cannot hold its current working artifact would thrash forever.
    fn evict_to_budget(&mut self) {
        while self.retained_nodes > self.max_retained_nodes && self.order.len() > 1 {
            let coldest = self.order.remove(0);
            let (_, gone_charged) = self
                .entries
                .remove(&coldest)
                .expect("order and entries agree");
            self.retained_nodes -= gone_charged;
            self.stats.evictions += 1;
        }
    }

    fn touch(&mut self, key: u64) {
        if let Some(at) = self.order.iter().position(|&k| k == key) {
            let k = self.order.remove(at);
            self.order.push(k);
        }
    }

    /// Number of retained artifacts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total retained arena nodes across artifacts, as charged at their
    /// insert time (raw circuit, plus smoothed copy and kernel tape if
    /// they had materialized by then).
    pub fn retained_nodes(&self) -> usize {
        self.retained_nodes
    }

    /// The retained-node budget.
    pub fn max_retained_nodes(&self) -> usize {
        self.max_retained_nodes
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> RegistryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trl_core::SplitMix64;
    use trl_prop::gen::random_cnf;

    #[test]
    fn fingerprint_distinguishes_formulas() {
        let a = Cnf::parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        let b = Cnf::parse_dimacs("p cnf 3 2\n1 -2 0\n2 -3 0\n").unwrap();
        let wider = Cnf::parse_dimacs("p cnf 4 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&wider));
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
    }

    #[test]
    fn hit_returns_the_same_arc() {
        let cnf = Cnf::parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        let mut r = Registry::new(1 << 20);
        let first = r.get_or_compile(&cnf);
        let second = r.get_or_compile(&cnf);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(
            r.stats(),
            RegistryStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.retained_nodes(), first.retained_nodes());
    }

    #[test]
    fn lru_evicts_coldest_by_node_budget() {
        let mut rng = SplitMix64::new(42);
        let cnfs: Vec<Cnf> = (0..4).map(|_| random_cnf(&mut rng, 8, 16, 3)).collect();
        // Budget sized to hold roughly two artifacts.
        let mut probe = Registry::new(usize::MAX);
        let sizes: Vec<usize> = cnfs
            .iter()
            .map(|c| probe.get_or_compile(c).retained_nodes())
            .collect();
        let budget = sizes[0] + sizes[1] + sizes[2] / 2;

        let mut r = Registry::new(budget);
        r.get_or_compile(&cnfs[0]);
        r.get_or_compile(&cnfs[1]);
        // Touch 0 so 1 is coldest when 2 arrives.
        r.get_or_compile(&cnfs[0]);
        r.get_or_compile(&cnfs[2]);
        assert!(r.stats().evictions > 0);
        assert!(r.retained_nodes() <= budget);
        // 1 was evicted; 0 survived.
        let before = r.stats().misses;
        r.get_or_compile(&cnfs[0]);
        assert_eq!(r.stats().misses, before, "cnfs[0] should still be a hit");
        r.get_or_compile(&cnfs[1]);
        assert_eq!(r.stats().misses, before + 1, "cnfs[1] must recompile");
    }

    #[test]
    fn single_oversized_artifact_is_kept() {
        let cnf = Cnf::parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        let mut r = Registry::new(1); // absurdly small budget
        let a = r.get_or_compile(&cnf);
        assert_eq!(r.len(), 1);
        assert!(r.retained_nodes() >= a.retained_nodes());
        // A second formula displaces it (the new one is the working set).
        let other = Cnf::parse_dimacs("p cnf 2 1\n1 2 0\n").unwrap();
        r.get_or_compile(&other);
        assert_eq!(r.len(), 1);
        assert_eq!(r.stats().evictions, 1);
    }

    #[test]
    fn eviction_balances_even_after_lazy_materialization() {
        // An artifact's footprint grows when its first counting query
        // smooths it. Eviction must debit the insert-time charge, not the
        // grown footprint — otherwise the running total underflows.
        let cnf = Cnf::parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        let mut r = Registry::new(1); // force eviction on the next insert
        let a = r.get_or_compile(&cnf);
        a.answer(&crate::executor::Query::ModelCount); // grow footprint
        assert!(a.retained_nodes() > a.raw().node_count());
        let other = Cnf::parse_dimacs("p cnf 2 1\n1 2 0\n").unwrap();
        r.get_or_compile(&other); // evicts `a`; must not panic
        assert_eq!(r.stats().evictions, 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn insert_replaces_under_same_key() {
        let cnf = Cnf::parse_dimacs("p cnf 2 1\n1 2 0\n").unwrap();
        let mut r = Registry::new(1 << 20);
        let a = r.get_or_compile(&cnf);
        let key = fingerprint(&cnf);
        r.insert(key, Artifact::Circuit(Arc::clone(&a)));
        assert_eq!(r.len(), 1);
        assert_eq!(r.retained_nodes(), a.retained_nodes());
        assert!(r.get(key).is_some());
        assert!(r.get(key ^ 1).is_none());
    }

    #[test]
    fn replace_releases_budget_immediately() {
        // Regression: an optimized artifact's smaller retained-node cost
        // must be reflected in the running budget at swap time — the
        // insert-time snapshot is revisited by `replace`, unlike `insert`
        // which resets LRU position.
        // Hand-built circuit with guaranteed slack: ⊤-padded and-gates that
        // the compact pass always eliminates.
        let mut b = trl_nnf::CircuitBuilder::new(3);
        let tt = b.true_();
        let x0 = b.lit(trl_core::Var(0).positive());
        let x1 = b.lit(trl_core::Var(1).positive());
        let nx0 = b.lit(trl_core::Var(0).negative());
        let x2 = b.lit(trl_core::Var(2).positive());
        let lhs = b.and_raw([x0, tt, x1]);
        let rhs = b.and_raw([nx0, x2, tt]);
        let root = b.or_raw([lhs, rhs]);
        let padded = b.finish(root);

        let mut r = Registry::new(1 << 20);
        let a = Arc::new(crate::prepared::PreparedCircuit::new(padded));
        a.answer(&crate::executor::Query::ModelCount); // materialize tape
        let key = 0xdead_beef_u64;
        r.insert(key, Artifact::Circuit(Arc::clone(&a)));
        let before = r.retained_nodes();

        // Swap in a strictly smaller artifact under the same key.
        let (small, report) =
            trl_minimize::minimize_circuit(a.raw(), &trl_minimize::MinimizeConfig::default());
        assert!(report.accepted, "padded circuit must have slack");
        let small = Arc::new(crate::prepared::PreparedCircuit::new(small));
        let small_cost = small.retained_nodes();
        assert!(r.replace(key, Artifact::Circuit(small)));
        assert_eq!(r.len(), 1);
        assert_eq!(r.retained_nodes(), small_cost, "budget released at swap");
        assert!(r.retained_nodes() < before);

        // Absent keys are rejected without storing anything.
        let stray = Arc::new(crate::prepared::PreparedCircuit::new(a.raw().clone()));
        assert!(!r.replace(key ^ 1, Artifact::Circuit(stray)));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn peek_does_not_touch_lru_or_stats() {
        let cnf = Cnf::parse_dimacs("p cnf 2 1\n1 2 0\n").unwrap();
        let mut r = Registry::new(1 << 20);
        r.get_or_compile(&cnf);
        let key = fingerprint(&cnf);
        let stats = r.stats();
        assert!(r.peek(key).is_some());
        assert!(r.peek(key ^ 1).is_none());
        assert_eq!(r.stats(), stats, "peek must not count as traffic");
    }

    #[test]
    fn mixed_kind_artifacts_share_one_lru_budget() {
        use crate::artifact::{classifier_fingerprint, Artifact};
        let cnf = Cnf::parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        let mut r = Registry::new(1 << 20);
        let circuit = r.get_or_compile(&cnf);
        let clf = Arc::new(trl_xai::PreparedClassifier::compile(&cnf));
        let clf_key = classifier_fingerprint(&cnf);
        let clf_nodes = clf.node_count();
        r.insert(clf_key, Artifact::Classifier(clf));
        assert_eq!(r.len(), 2, "same CNF, two kinds, two entries");
        assert_eq!(r.retained_nodes(), circuit.retained_nodes() + clf_nodes);
        let got = r.get(clf_key).expect("classifier resident");
        assert!(got.as_circuit().is_none());
        assert_eq!(got.kind().name(), "classifier");
    }
}
