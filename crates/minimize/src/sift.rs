//! Rudell sifting over an OBDD, plus the circuit → OBDD → circuit
//! round-trip that turns an order search into a d-DNNF shrink.

use std::time::Instant;

use crate::config::MinimizeConfig;
use trl_nnf::{Circuit, NnfNode};
use trl_obdd::{BddRef, Obdd};

/// What a sifting run did.
#[derive(Clone, Copy, Debug, Default)]
pub struct SiftStats {
    /// Adjacent-level swaps performed (including repositioning moves).
    pub swaps: u64,
    /// Full passes over the variables.
    pub passes: u64,
}

/// Sifts every variable to its locally best level (Rudell 1993): each
/// variable in turn is swapped to the bottom, then to the top, and parked
/// at the best position seen. A direction is abandoned early once the
/// diagram grows past `cfg.max_growth ×` the best size for that variable,
/// and the whole run stops at `deadline` or after `cfg.max_passes`
/// passes without improvement.
///
/// `root`'s function is preserved by every swap, so the caller's handle
/// stays valid throughout.
pub fn sift(m: &mut Obdd, root: BddRef, cfg: &MinimizeConfig, deadline: Instant) -> SiftStats {
    let n = m.num_vars();
    let mut stats = SiftStats::default();
    if n < 2 || m.is_terminal(root) {
        return stats;
    }
    let mut best_total = m.size(root);
    for _ in 0..cfg.max_passes {
        stats.passes += 1;
        // Sift busiest levels first — they have the most to give.
        let occupancy = m.level_occupancy(&[root]);
        let mut levels: Vec<u32> = (0..n as u32).collect();
        levels.sort_by_key(|&l| std::cmp::Reverse(occupancy[l as usize]));
        let vars: Vec<_> = levels.into_iter().map(|l| m.var_at(l)).collect();
        for v in vars {
            if Instant::now() >= deadline {
                return stats;
            }
            let mut cur = m.level_of(v);
            let mut best_size = m.size(root);
            let mut best_level = cur;
            let grown = |s: usize, best: usize| s as f64 > best as f64 * cfg.max_growth;
            // Down to the bottom...
            while (cur as usize) + 1 < n {
                m.swap_adjacent(cur);
                cur += 1;
                stats.swaps += 1;
                let s = m.size(root);
                if s < best_size {
                    best_size = s;
                    best_level = cur;
                }
                if grown(s, best_size) || Instant::now() >= deadline {
                    break;
                }
            }
            // ...then up to the top (passing back through the start)...
            while cur > 0 {
                m.swap_adjacent(cur - 1);
                cur -= 1;
                stats.swaps += 1;
                let s = m.size(root);
                if s < best_size {
                    best_size = s;
                    best_level = cur;
                }
                if grown(s, best_size) || Instant::now() >= deadline {
                    break;
                }
            }
            // ...and park at the best level seen.
            stats.swaps += m.move_var_to(v, best_level);
        }
        let total = m.size(root);
        if total >= best_total {
            break; // converged: a whole pass bought nothing
        }
        best_total = total;
    }
    stats
}

/// Imports a circuit into an OBDD manager by structural apply, giving up
/// (`None`) if the manager allocates more than `node_cap` nodes — some
/// functions are exponential under the natural order, and a background
/// pass must not OOM the server.
pub fn obdd_from_circuit(c: &Circuit, node_cap: usize) -> Option<(Obdd, BddRef)> {
    let mut m = Obdd::with_num_vars(c.num_vars());
    let mut map: Vec<BddRef> = Vec::with_capacity(c.node_count());
    for id in c.ids() {
        let r = match c.node(id) {
            NnfNode::True => Obdd::TRUE,
            NnfNode::False => Obdd::FALSE,
            NnfNode::Lit(l) => m.literal(*l),
            NnfNode::And(xs) => {
                let mut acc = Obdd::TRUE;
                for x in xs {
                    acc = m.and(acc, map[x.index()]);
                }
                acc
            }
            NnfNode::Or(xs) => {
                let mut acc = Obdd::FALSE;
                for x in xs {
                    acc = m.or(acc, map[x.index()]);
                }
                acc
            }
        };
        if m.allocated() > node_cap {
            return None;
        }
        map.push(r);
    }
    let root = map[c.root().index()];
    Some((m, root))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trl_core::SplitMix64;
    use trl_prop::gen::random_cnf;

    #[test]
    fn sifting_never_grows_the_final_diagram() {
        let mut rng = SplitMix64::new(0xbdd);
        for i in 0..10 {
            let n = 5 + i % 6;
            let cnf = random_cnf(&mut rng, n, 3 + 2 * i, 3);
            let mut m = Obdd::with_num_vars(n);
            let root = m.build_cnf(&cnf);
            if m.is_terminal(root) {
                continue; // degenerate instance: nothing to sift
            }
            let before = m.size(root);
            let count = m.count_models(root);
            let cfg = MinimizeConfig::default();
            let deadline = cfg.deadline(Instant::now());
            let stats = sift(&mut m, root, &cfg, deadline);
            assert!(m.size(root) <= before, "instance {i} grew");
            assert_eq!(m.count_models(root), count, "instance {i} changed function");
            assert!(stats.passes >= 1);
        }
    }

    #[test]
    fn import_respects_node_cap() {
        let mut rng = SplitMix64::new(1);
        let cnf = random_cnf(&mut rng, 10, 20, 3);
        let mut b = trl_nnf::CircuitBuilder::new(10);
        // A circuit shaped like the CNF itself (not compiled): ands of ors.
        let mut clauses = Vec::new();
        for cl in cnf.clauses() {
            let lits: Vec<_> = cl.literals().iter().map(|&l| b.lit(l)).collect();
            clauses.push(b.or(lits));
        }
        let root = b.and(clauses);
        let c = b.finish(root);
        assert!(obdd_from_circuit(&c, 2).is_none(), "cap must abort");
        let (m, r) = obdd_from_circuit(&c, 1 << 20).expect("generous cap");
        assert!(m.size(r) > 2);
    }
}
