//! Compile once, serve many: the `trl-engine` lifecycle end to end.
//!
//! A small CNF is compiled to a Decision-DNNF, persisted to disk in both
//! artifact formats, reloaded with full d-DNNF re-validation, registered in
//! the LRU artifact registry, and then queried in batches through the
//! multi-worker executor — model count, WMC, marginals, and MPE, each with
//! its service latency.
//!
//! Run with `cargo run --release --example serve_queries`.

use std::sync::Arc;

use three_roles::compiler::DecisionDnnfCompiler;
use three_roles::core::Var;
use three_roles::engine::{
    fingerprint, load_binary, load_nnf, save_binary, save_nnf, Artifact, Executor, PreparedCircuit,
    Query, QueryAnswer, Registry, Validation,
};
use three_roles::nnf::LitWeights;
use three_roles::prop::Cnf;

fn main() {
    // An over-constrained scheduling toy: three tasks, two slots.
    let cnf = Cnf::parse_dimacs(
        "c tasks 1..3 in slots A (odd vars) / B (even vars)\n\
         p cnf 6 7\n1 2 0\n3 4 0\n5 6 0\n-1 -3 0\n-2 -4 0\n-2 -6 0\n-3 -5 0\n",
    )
    .unwrap();

    // Compile once...
    let circuit = DecisionDnnfCompiler::default().compile(&cnf);
    println!(
        "compiled: {} vars -> {} nodes / {} edges, {} models",
        cnf.num_vars(),
        circuit.node_count(),
        circuit.edge_count(),
        circuit.model_count()
    );

    // ...persist in both formats and reload with full re-validation.
    let dir = std::env::temp_dir().join("three_roles_serve_queries");
    std::fs::create_dir_all(&dir).unwrap();
    let bin = dir.join("schedule.trlc");
    let txt = dir.join("schedule.nnf");
    save_binary(&circuit, &bin).unwrap();
    save_nnf(&circuit, &txt).unwrap();
    let from_bin = load_binary(&bin, Validation::Full).unwrap();
    let from_txt = load_nnf(&txt, Validation::Full).unwrap();
    assert_eq!(from_bin.model_count(), circuit.model_count());
    assert_eq!(from_txt.model_count(), circuit.model_count());
    println!(
        "persisted + reloaded: binary {} bytes, text {} bytes, counts agree",
        std::fs::metadata(&bin).unwrap().len(),
        std::fs::metadata(&txt).unwrap().len()
    );

    // A registry keeps prepared artifacts hot under a node budget.
    let mut registry = Registry::new(1 << 16);
    registry.insert(
        fingerprint(&cnf),
        Artifact::Circuit(Arc::new(PreparedCircuit::new(from_bin))),
    );
    let prepared = registry.get_or_compile(&cnf); // hit: no recompilation
    println!(
        "registry: {} artifact(s), {} retained nodes, stats {:?}",
        registry.len(),
        registry.retained_nodes(),
        registry.stats()
    );

    // Weights: task 1 prefers slot A, slot B is expensive for task 3.
    let mut w = LitWeights::unit(cnf.num_vars());
    w.set(Var(0).positive(), 0.9);
    w.set(Var(0).negative(), 0.1);
    w.set(Var(5).positive(), 0.2);
    w.set(Var(5).negative(), 0.8);

    // One batch, four query kinds, answered on a two-worker pool.
    let executor = Executor::new(2);
    let batch = vec![
        Query::ModelCount,
        Query::Wmc(w.clone()),
        Query::Marginals(w.clone()),
        Query::MaxWeight(w),
    ];
    let kinds: Vec<&str> = batch.iter().map(Query::kind).collect();
    let outcomes = executor.run_batch(&prepared, batch);
    for (kind, outcome) in kinds.iter().zip(&outcomes) {
        let shown = match &outcome.answer {
            QueryAnswer::ModelCount(n) => format!("{n}"),
            QueryAnswer::Wmc(x) => format!("{x:.4}"),
            QueryAnswer::Marginals { wmc, marginals } => {
                format!("wmc {wmc:.4}, P(x1)={:.4}", marginals[0].0 / wmc)
            }
            QueryAnswer::MaxWeight(Some((x, a))) => {
                let slots: Vec<String> = (0..a.len())
                    .filter(|&v| a.value(Var(v as u32)))
                    .map(|v| format!("x{}", v + 1))
                    .collect();
                format!("{x:.4} at {{{}}}", slots.join(", "))
            }
            other => format!("{other:?}"),
        };
        println!(
            "  {kind:<12} {shown}   ({:.1} us)",
            outcome.latency.as_secs_f64() * 1e6
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}
