//! The [`Engine`]: one shareable handle bundling the artifact registry and
//! the query executor, with a serving-stats surface.
//!
//! The registry and executor were designed as separable pieces (PRs 2–3);
//! a serving frontend wants them as one object it can put behind an `Arc`
//! and hand to every connection thread: compile-or-fetch through a shared
//! registry, answer through a shared worker pool, and report one coherent
//! [`StatsSnapshot`] (registry hit/miss/eviction counters, retained-node
//! budget pressure, executor backlog) for operational visibility — the
//! `stats` wire request and `three-roles client stats` read exactly this.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::error::Result;
use crate::executor::{Executor, Query, QueryOutcome, QUERY_KINDS};
use crate::prepared::PreparedCircuit;
use crate::registry::{fingerprint, Registry, RegistryStats};
use trl_obs::MetricsDump;
use trl_prop::Cnf;

/// One coherent view of a serving engine's counters, taken atomically with
/// respect to the registry (the executor backlog is an instantaneous gauge).
///
/// The first six fields are the legacy (wire version 1) surface and keep
/// their exact encoding order; everything after `queue_depth` is the
/// extended surface added with the observability layer. The
/// `connections_*` fields are zero unless a serving frontend overlays
/// them (the engine itself has no connections).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Registry hit/miss/eviction counters since engine creation.
    pub registry: RegistryStats,
    /// Artifacts currently retained.
    pub artifacts: usize,
    /// Arena nodes currently charged against the registry budget.
    pub retained_nodes: usize,
    /// The registry's retained-node budget.
    pub max_retained_nodes: usize,
    /// Executor worker threads.
    pub workers: usize,
    /// Executor jobs submitted and not yet answered.
    pub queue_depth: usize,
    /// Milliseconds since the engine was created.
    pub uptime_ms: u64,
    /// Queries answered per kind, in [`QUERY_KINDS`] order.
    pub requests_served: Vec<(String, u64)>,
    /// Connections accepted by the serving frontend since it started.
    pub connections_accepted: u64,
    /// Connections currently open on the serving frontend.
    pub connections_active: u64,
    /// A dump of every process-global metric (counters, gauges, latency
    /// histograms) at snapshot time.
    pub metrics: MetricsDump,
}

/// A compile-once/query-many engine: a [`Registry`] behind a mutex plus a
/// shared [`Executor`]. Clone-free sharing: wrap it in an `Arc`.
///
/// The mutex guards only registry bookkeeping (lookup, LRU touch, insert);
/// compilation of a missed formula happens *outside* the lock so a slow
/// compile never blocks queries against already-resident artifacts.
pub struct Engine {
    registry: Mutex<Registry>,
    executor: Executor,
    /// Creation time, the zero point of `uptime_ms`.
    start: Instant,
}

impl Engine {
    /// An engine with the given retained-node budget and worker count;
    /// `None` workers defaults to one per hardware thread
    /// ([`Executor::with_default_workers`]).
    pub fn new(max_retained_nodes: usize, workers: Option<usize>) -> Self {
        Engine {
            registry: Mutex::new(Registry::new(max_retained_nodes)),
            executor: match workers {
                Some(n) => Executor::new(n),
                None => Executor::with_default_workers(),
            },
            start: Instant::now(),
        }
    }

    /// An engine around an existing registry and executor.
    pub fn from_parts(registry: Registry, executor: Executor) -> Self {
        Engine {
            registry: Mutex::new(registry),
            executor,
            start: Instant::now(),
        }
    }

    /// The artifact for `cnf`, compiling on miss. Returns the artifact and
    /// its registry key (the CNF [`fingerprint`]) for key-addressed queries.
    ///
    /// On a miss the compile runs without holding the registry lock; if two
    /// threads race on the same formula both compile and the second insert
    /// wins — wasted work, never a wrong answer, and the lock is never held
    /// across a compilation.
    pub fn compile(&self, cnf: &Cnf) -> (u64, Arc<PreparedCircuit>) {
        // Hit-vs-compile timing: the two histograms contrast what a cached
        // fetch costs against what the fetch amortizes away.
        let begin = Instant::now();
        let key = fingerprint(cnf);
        if let Some(found) = self.lock().get(key) {
            let elapsed = begin.elapsed();
            trl_obs::histogram!("engine.registry.hit_us").record(elapsed);
            trl_obs::record_span("engine.registry.hit", elapsed);
            return (key, found);
        }
        let prepared = Arc::new(PreparedCircuit::new(
            trl_compiler::DecisionDnnfCompiler::default().compile(cnf),
        ));
        let mut registry = self.lock();
        // Count the compile as the miss it served.
        registry.note_miss();
        registry.insert(key, Arc::clone(&prepared));
        let elapsed = begin.elapsed();
        trl_obs::histogram!("engine.registry.compile_us").record(elapsed);
        trl_obs::record_span("engine.registry.compile", elapsed);
        (key, prepared)
    }

    /// The artifact under a registry key, if still resident (touches LRU).
    pub fn get(&self, key: u64) -> Option<Arc<PreparedCircuit>> {
        self.lock().get(key)
    }

    /// Validates and answers a batch on the shared worker pool
    /// ([`Executor::try_run_batch`]).
    pub fn run_batch(
        &self,
        circuit: &Arc<PreparedCircuit>,
        queries: Vec<Query>,
    ) -> Result<Vec<QueryOutcome>> {
        self.executor.try_run_batch(circuit, queries)
    }

    /// Validates and submits a batch without blocking; the completion
    /// callback fires on a worker thread once every query is answered
    /// ([`Executor::submit_batch`]).
    pub fn submit_batch<F>(
        &self,
        circuit: &Arc<PreparedCircuit>,
        queries: Vec<Query>,
        on_done: F,
    ) -> Result<()>
    where
        F: FnOnce(Vec<QueryOutcome>) + Send + 'static,
    {
        self.executor.submit_batch(circuit, queries, on_done)
    }

    /// The shared executor (for callers that manage circuits themselves).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// One coherent stats snapshot. The `connections_*` fields are left
    /// zero for a serving frontend to overlay; `metrics` is the
    /// process-global dump, so it also reflects activity outside this
    /// engine (a second engine in the same process shares it).
    pub fn stats(&self) -> StatsSnapshot {
        let served = self.executor.served_by_kind();
        let registry = self.lock();
        StatsSnapshot {
            registry: registry.stats(),
            artifacts: registry.len(),
            retained_nodes: registry.retained_nodes(),
            max_retained_nodes: registry.max_retained_nodes(),
            workers: self.executor.num_workers(),
            queue_depth: self.executor.queue_depth(),
            uptime_ms: self.start.elapsed().as_millis() as u64,
            requests_served: QUERY_KINDS
                .iter()
                .zip(served)
                .map(|(name, count)| (name.to_string(), count))
                .collect(),
            connections_accepted: 0,
            connections_active: 0,
            metrics: trl_obs::snapshot(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Registry> {
        // The registry holds no lock-ordering obligations and every
        // critical section is bookkeeping-only, so poisoning can only come
        // from a panic in map/Vec ops; propagating it would just turn one
        // failed request into a dead server.
        match self.registry.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cnf() -> Cnf {
        Cnf::parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n").unwrap()
    }

    #[test]
    fn compile_hits_on_second_request() {
        let engine = Engine::new(1 << 20, Some(2));
        let (key, first) = engine.compile(&cnf());
        let (key2, second) = engine.compile(&cnf());
        assert_eq!(key, key2);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = engine.stats();
        assert_eq!(stats.registry.hits, 1);
        assert_eq!(stats.registry.misses, 1);
        assert_eq!(stats.artifacts, 1);
        assert_eq!(stats.workers, 2);
    }

    #[test]
    fn get_by_key_and_run_batch() {
        let engine = Engine::new(1 << 20, Some(1));
        let (key, circuit) = engine.compile(&cnf());
        assert!(engine.get(key).is_some());
        assert!(engine.get(key ^ 1).is_none());
        let outcomes = engine
            .run_batch(&circuit, vec![Query::ModelCount, Query::Sat])
            .unwrap();
        assert_eq!(
            outcomes[0].answer.model_count(),
            Some(circuit.raw().model_count())
        );
    }

    #[test]
    fn default_workers_match_available_parallelism() {
        let engine = Engine::new(1 << 20, None);
        let expect = std::thread::available_parallelism().map_or(1, |p| p.get());
        assert_eq!(engine.stats().workers, expect);
    }

    #[test]
    fn stats_reflect_budget() {
        let engine = Engine::new(12345, Some(1));
        let snapshot = engine.stats();
        assert_eq!(snapshot.max_retained_nodes, 12345);
        assert_eq!(snapshot.queue_depth, 0);
        assert_eq!(snapshot.artifacts, 0);
    }
}
