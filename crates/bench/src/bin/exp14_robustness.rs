//! E14 — Fig. 29 and §5.2: robustness analysis of two networks with the
//! same architecture but different training seeds. Accuracies are similar;
//! robustness profiles are not — reproduced exactly over *all* 2^16
//! instances, the capability the paper highlights ("Figure 29 reports the
//! robustness of 2^256 instances for each CNN").
//!
//! Protocol, as in the paper: train several seeds of one architecture,
//! keep two accurate ones, compile both, compare their exact robustness
//! profiles. The *existence* of such pairs — equal accuracy, divergent
//! robustness — is the figure's point.

use trl_bench::{banner, check, row, section};
use trl_xai::images::{digit_dataset, PIXELS};
use trl_xai::robustness::robustness_profile;
use trl_xai::Bnn;

fn main() {
    banner(
        "E14",
        "Figure 29 (robustness level vs proportion of instances; model robustness)",
        "similar accuracy, very different robustness — exact histograms \
         from the compiled circuits",
    );
    let mut all_ok = true;

    section("train one architecture under several seeds (noisier data)");
    let train = digit_dataset(50, 0.18, 2024);
    let test = digit_dataset(40, 0.18, 4048);
    let acc = |net: &Bnn| {
        test.iter().filter(|(x, y)| net.classify(x) == *y).count() as f64 / test.len() as f64
    };
    struct Candidate {
        seed: u64,
        net: Bnn,
        accuracy: f64,
        robustness: f64,
        max_robustness: u32,
        size: usize,
        histogram: Vec<u128>,
    }
    let mut candidates: Vec<Candidate> = Vec::new();
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12}",
        "seed", "accuracy", "circuit", "model rob.", "max rob."
    );
    for seed in [3u64, 11, 17, 29, 41, 59] {
        let (net, _) = Bnn::train(PIXELS, 3, &train, seed, 4);
        let a = acc(&net);
        if a < 0.85 {
            continue; // keep only accurate trainings, as the paper does
        }
        let (mut m, f, _) = net.compile();
        let Some(p) = robustness_profile(&mut m, f) else {
            continue;
        };
        println!(
            "{:>6} {:>10.4} {:>12} {:>12.2} {:>12}",
            seed,
            a,
            m.size(f),
            p.model_robustness,
            p.max_robustness
        );
        candidates.push(Candidate {
            seed,
            net,
            accuracy: a,
            robustness: p.model_robustness,
            max_robustness: p.max_robustness,
            size: m.size(f),
            histogram: p.histogram,
        });
    }
    all_ok &= check("at least two accurate trainings", candidates.len() >= 2);

    // Net 1 = most robust, Net 2 = least robust among the accurate seeds.
    candidates.sort_by(|a, b| b.robustness.total_cmp(&a.robustness));
    let net1 = &candidates[0];
    let net2 = candidates.last().unwrap();

    section("the Fig. 29 pair");
    row(
        "net 1 (seed, accuracy)",
        format!("seed {}, accuracy {:.4}", net1.seed, net1.accuracy),
    );
    row(
        "net 2 (seed, accuracy)",
        format!("seed {}, accuracy {:.4}", net2.seed, net2.accuracy),
    );
    row(
        "circuit sizes (paper: 3,653 vs 440 edges)",
        format!("{} / {}", net1.size, net2.size),
    );
    row(
        "model robustness (paper: 11.77 vs 3.62)",
        format!("{:.2} / {:.2}", net1.robustness, net2.robustness),
    );
    row(
        "max robustness (paper: 27 vs 13)",
        format!("{} / {}", net1.max_robustness, net2.max_robustness),
    );

    section("the figure's two series: robustness level vs proportion of instances");
    let total = (1u128 << PIXELS) as f64;
    println!("{:>10} {:>14} {:>14}", "level", "net 1", "net 2");
    let levels = net1.histogram.len().max(net2.histogram.len());
    for k in 0..levels {
        let a = net1.histogram.get(k).copied().unwrap_or(0) as f64 / total;
        let b = net2.histogram.get(k).copied().unwrap_or(0) as f64 / total;
        println!("{:>10} {:>14.6} {:>14.6}", k + 1, a, b);
    }
    let sum1: u128 = net1.histogram.iter().sum();
    let sum2: u128 = net2.histogram.iter().sum();
    all_ok &= check(
        "each histogram accounts for all 2^16 instances",
        sum1 == 1u128 << PIXELS && sum2 == 1u128 << PIXELS,
    );

    section("shape checks (who wins, by roughly what factor)");
    all_ok &= check(
        "accuracies are comparable (gap ≤ 0.1)",
        (net1.accuracy - net2.accuracy).abs() <= 0.1,
    );
    // The 16-pixel space compresses attainable robustness (max ≈ 8, vs
    // 256 pixels in the paper), so the seed-to-seed gap is proportionally
    // smaller; the qualitative shape — same accuracy band, clearly
    // separated profiles — is the reproduced claim (EXPERIMENTS.md).
    all_ok &= check(
        "robustness differs by ≥ 1.2× despite similar accuracy",
        net1.robustness >= 1.2 * net2.robustness,
    );
    all_ok &= check(
        "net 1's maximum robustness is at least net 2's",
        net1.max_robustness >= net2.max_robustness,
    );
    // Spot-check: the per-instance DP agrees with the histogram's support.
    let (m2, f2, _) = net2.net.compile();
    let x = trl_xai::images::one_prototype();
    let r = trl_xai::robustness::decision_robustness(&m2, f2, &x).unwrap();
    all_ok &= check(
        "per-instance robustness lies within the histogram's range",
        r >= 1 && r <= net2.max_robustness,
    );

    println!();
    check("E14 overall", all_ok);
}
