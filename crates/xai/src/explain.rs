//! Explaining decisions: sufficient reasons, complete-reason circuits,
//! bias, and counterfactuals (§5.1 of the paper, \[33, 82\]).
//!
//! For a decision `f(x)`:
//!
//! * a **sufficient reason** is a minimal set of instance characteristics
//!   guaranteed to trigger the decision — a prime implicant of `f` (or of
//!   `¬f` for negative decisions) consistent with `x`;
//! * the **complete reason** is the disjunction of all sufficient reasons.
//!   It is extracted from the classifier's OBDD in *linear time* as a
//!   monotone circuit (\[33\]): decision node `(X, α, β)` with, say, `x ⊨ X`
//!   becomes `β' ∧ (X ∨ α')` — keep the agreeing branch, add the consensus.
//!
//! [`ReasonCircuit`] holds the complete reason in "agreement space"
//! (variable `i` = "instance characteristic `i` is kept"), where it is a
//! *positive monotone* function; bias checks, counterfactual queries, and
//! sufficient-reason enumeration are all simple operations there.

use trl_core::{Assignment, Cube, Var, VarSet};
use trl_obdd::{BddRef, Obdd};

/// The complete reason behind a decision, as a monotone function over
/// agreement variables (`Var(i)` ⟺ "the instance's value for feature `i`
/// is kept").
pub struct ReasonCircuit {
    /// Agreement-space manager.
    manager: Obdd,
    /// The monotone reason function in agreement space.
    root: BddRef,
    /// The instance being explained.
    instance: Assignment,
    /// The decision being explained.
    decision: bool,
}

impl ReasonCircuit {
    /// Extracts the complete reason behind the decision `f(x)` from the
    /// classifier's OBDD. For negative decisions the construction runs on
    /// `¬f`, per Fig. 26.
    pub fn new(m: &mut Obdd, f: BddRef, x: &Assignment) -> ReasonCircuit {
        let decision = m.eval(f, x);
        let target = if decision { f } else { m.not(f) };
        Self::from_target(m, target, x, decision)
    }

    /// Like [`ReasonCircuit::new`], but with the classifier's negation
    /// precomputed by the caller, so extraction never mutates `m`. This is
    /// the serving entry point: a prepared classifier computes `¬f` once
    /// at compile time and then answers explanation queries from shared
    /// references.
    pub fn with_negation(m: &Obdd, f: BddRef, f_neg: BddRef, x: &Assignment) -> ReasonCircuit {
        let decision = m.eval(f, x);
        let target = if decision { f } else { f_neg };
        Self::from_target(m, target, x, decision)
    }

    fn from_target(m: &Obdd, target: BddRef, x: &Assignment, decision: bool) -> ReasonCircuit {
        // Build the reason in agreement space within a fresh manager of the
        // same size: node (v, α, β) with agreeing child γ and other child δ
        // becomes γ' ∧ (z_v ∨ δ').
        let n = m.num_vars();
        let mut agreement = Obdd::with_num_vars(n);
        let mut memo = trl_core::FxHashMap::default();
        let root = Self::build(m, target, x, &mut agreement, &mut memo);
        ReasonCircuit {
            manager: agreement,
            root,
            instance: x.clone(),
            decision,
        }
    }

    fn build(
        m: &Obdd,
        f: BddRef,
        x: &Assignment,
        out: &mut Obdd,
        memo: &mut trl_core::FxHashMap<BddRef, BddRef>,
    ) -> BddRef {
        if f == Obdd::TRUE {
            return Obdd::TRUE;
        }
        if f == Obdd::FALSE {
            return Obdd::FALSE;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let var = m.node_var(f);
        let (agreeing, other) = if x.value(var) {
            (m.high(f), m.low(f))
        } else {
            (m.low(f), m.high(f))
        };
        let a = Self::build(m, agreeing, x, out, memo);
        let o = Self::build(m, other, x, out, memo);
        // γ' ∧ (z_v ∨ δ')
        let z = out.literal(var.positive());
        let keep = out.or(z, o);
        let r = out.and(a, keep);
        memo.insert(f, r);
        r
    }

    /// The decision being explained.
    pub fn decision(&self) -> bool {
        self.decision
    }

    /// The instance being explained.
    pub fn instance(&self) -> &Assignment {
        &self.instance
    }

    /// The reason evaluated at a *kept set*: true iff keeping exactly the
    /// instance characteristics in `kept` (others free) guarantees the
    /// decision.
    pub fn triggered_by(&self, kept: &VarSet) -> bool {
        let mut a = Assignment::all_false(self.instance.len());
        for v in kept.iter() {
            a.set(v, true);
        }
        self.manager.eval(self.root, &a)
    }

    /// All sufficient reasons, as cubes of instance literals. The
    /// enumeration walks the monotone agreement-space OBDD collecting prime
    /// implicants with subsumption filtering; output is exponential in the
    /// worst case (the paper's motivation for reasoning on the circuit
    /// instead — see the bias queries below).
    pub fn sufficient_reasons(&self) -> Vec<Cube> {
        let mut memo: trl_core::FxHashMap<BddRef, Vec<Vec<Var>>> = trl_core::FxHashMap::default();
        let sets = self.primes(self.root, &mut memo);
        let mut cubes: Vec<Cube> = sets
            .into_iter()
            .map(|vars| Cube::from_lits(vars.into_iter().map(|v| self.instance.literal_of(v))))
            .collect();
        cubes.sort();
        cubes
    }

    fn primes(
        &self,
        f: BddRef,
        memo: &mut trl_core::FxHashMap<BddRef, Vec<Vec<Var>>>,
    ) -> Vec<Vec<Var>> {
        if f == Obdd::TRUE {
            return vec![vec![]];
        }
        if f == Obdd::FALSE {
            return vec![];
        }
        if let Some(r) = memo.get(&f) {
            return r.clone();
        }
        let var = self.manager.node_var(f);
        let lo = self.primes(self.manager.low(f), memo);
        let hi = self.primes(self.manager.high(f), memo);
        // Monotone positive: primes = primes(lo) ∪ {v ∪ t : t ∈ primes(hi)
        // not subsumed by a lo-prime}.
        let mut out = lo.clone();
        for t in hi {
            let subsumed = lo.iter().any(|l| l.iter().all(|v| t.contains(v)));
            if !subsumed {
                let mut t2 = vec![var];
                t2.extend(t);
                t2.sort_unstable();
                out.push(t2);
            }
        }
        memo.insert(f, out.clone());
        out
    }

    /// Whether the decision is **biased** with respect to the protected
    /// features: it would change had only protected features changed —
    /// equivalently, every sufficient reason touches a protected feature
    /// \[33\]. One conditioning pass; no enumeration.
    pub fn decision_is_biased(&mut self, protected: &VarSet) -> bool {
        // Drop protected characteristics; if nothing triggers any more,
        // all reasons relied on them.
        let mut g = self.root;
        for v in protected.iter() {
            g = self.manager.restrict(g, v, false);
        }
        // A monotone function with all remaining characteristics kept:
        let full = Assignment::from_values(&vec![true; self.instance.len()]);
        !self.manager.eval(g, &full)
    }

    /// Whether *some* sufficient reason touches a protected feature. If
    /// the decision itself is unbiased but this holds, the **classifier**
    /// is biased: it makes a biased decision on some other instance \[33\]
    /// (Robin vs. Scott in Fig. 27).
    pub fn some_reason_touches(&mut self, protected: &VarSet) -> bool {
        // The reason function changes when protected characteristics are
        // dropped iff some prime implicant mentions them.
        let mut g = self.root;
        for v in protected.iter() {
            g = self.manager.restrict(g, v, false);
        }
        g != self.root
    }

    /// Counterfactual "the decision would stick **even if** the features
    /// in `flipped` took other values, **because** of the `because`
    /// characteristics" (§5.1): checks that the kept characteristics
    /// outside `flipped` include a trigger, and that `because` alone
    /// triggers.
    pub fn even_if_because(&mut self, flipped: &VarSet, because: &VarSet) -> bool {
        if !flipped.is_disjoint(because) {
            return false;
        }
        let all: VarSet = (0..self.instance.len() as u32).map(Var).collect();
        let kept = all.difference(flipped);
        self.triggered_by(&kept) && self.triggered_by(because)
    }

    /// Size of the reason circuit (diagram nodes).
    pub fn size(&self) -> usize {
        self.manager.size(self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trl_prop::{sufficient_reasons, Formula, TruthTable};

    fn v(i: u32) -> Var {
        Var(i)
    }

    /// Fig. 26's function f = (A + ¬C)(B + C)(A + B).
    fn fig26_formula() -> Formula {
        let (a, b, c) = (Formula::var(v(0)), Formula::var(v(1)), Formula::var(v(2)));
        Formula::conj([
            a.clone().or(c.clone().not()),
            b.clone().or(c.clone()),
            a.or(b),
        ])
    }

    #[test]
    fn sufficient_reasons_match_prime_implicant_oracle() {
        let f = fig26_formula();
        let mut m = Obdd::with_num_vars(3);
        let r = m.build_formula(&f);
        let tt = TruthTable::from_formula(&f, 3);
        for code in 0..8u64 {
            let x = Assignment::from_index(code, 3);
            let rc = ReasonCircuit::new(&mut m, r, &x);
            let got = rc.sufficient_reasons();
            let expected = sufficient_reasons(&tt, &x);
            assert_eq!(got, expected, "instance {code:03b}");
        }
    }

    #[test]
    fn reason_circuits_agree_with_oracle_on_random_functions() {
        let mut state = 0x777u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..15 {
            let n = 3 + (next() % 3) as usize;
            let mut fs: Vec<Formula> = (0..n as u32).map(|i| Formula::var(v(i))).collect();
            for _ in 0..6 {
                let i = (next() % fs.len() as u64) as usize;
                let j = (next() % fs.len() as u64) as usize;
                fs.push(match next() % 3 {
                    0 => fs[i].clone().and(fs[j].clone()),
                    1 => fs[i].clone().or(fs[j].clone()),
                    _ => fs[i].clone().not(),
                });
            }
            let f = fs.last().unwrap().clone();
            let mut m = Obdd::with_num_vars(n);
            let r = m.build_formula(&f);
            if r == Obdd::TRUE || r == Obdd::FALSE {
                continue;
            }
            let tt = TruthTable::from_formula(&f, n);
            for code in 0..1u64 << n {
                let x = Assignment::from_index(code, n);
                let rc = ReasonCircuit::new(&mut m, r, &x);
                assert_eq!(
                    rc.sufficient_reasons(),
                    sufficient_reasons(&tt, &x),
                    "n={n} instance {code:b}"
                );
            }
        }
    }

    #[test]
    fn complete_reason_is_monotone_and_triggers() {
        let f = fig26_formula();
        let mut m = Obdd::with_num_vars(3);
        let r = m.build_formula(&f);
        let x = Assignment::from_values(&[true, true, false]); // AB¬C
        let rc = ReasonCircuit::new(&mut m, r, &x);
        assert!(rc.decision());
        // Keeping everything triggers; keeping nothing does not.
        let all: VarSet = (0..3).map(Var).collect();
        assert!(rc.triggered_by(&all));
        assert!(!rc.triggered_by(&VarSet::new()));
        // Monotonicity: supersets of a trigger also trigger.
        let ab: VarSet = [v(0), v(1)].into_iter().collect();
        assert!(rc.triggered_by(&ab));
        let abc = all;
        assert!(rc.triggered_by(&abc));
    }

    #[test]
    fn bias_detection_matches_reason_structure() {
        // f = protected ∨ (skill ∧ experience), protected = {x0}.
        let f = Formula::var(v(0)).or(Formula::var(v(1)).and(Formula::var(v(2))));
        let mut m = Obdd::with_num_vars(3);
        let r = m.build_formula(&f);
        let protected: VarSet = [v(0)].into_iter().collect();
        // Instance (1,1,1): reasons {x0} and {x1,x2} — decision unbiased,
        // but some reason touches the protected feature ⇒ classifier biased.
        let x = Assignment::from_values(&[true, true, true]);
        let mut rc = ReasonCircuit::new(&mut m, r, &x);
        assert!(!rc.decision_is_biased(&protected));
        assert!(rc.some_reason_touches(&protected));
        // Instance (1,0,1): only reason is {x0} ⇒ the decision is biased.
        let x = Assignment::from_values(&[true, false, true]);
        let mut rc = ReasonCircuit::new(&mut m, r, &x);
        assert!(rc.decision_is_biased(&protected));
        // Negative decision (0,0,1): reasons for ¬f are {¬x0,¬x1}; flipping
        // the protected feature alone would reverse it ⇒ biased.
        let x = Assignment::from_values(&[false, false, true]);
        let mut rc = ReasonCircuit::new(&mut m, r, &x);
        assert!(!rc.decision());
        assert!(rc.decision_is_biased(&protected));
    }

    #[test]
    fn bias_definition_cross_check() {
        // Decision biased ⟺ ∃ change of protected features only that flips
        // the decision. Cross-check on a random function exhaustively.
        let f = Formula::var(v(0))
            .xor(Formula::var(v(1)))
            .or(Formula::var(v(2)).and(Formula::var(v(1))));
        let mut m = Obdd::with_num_vars(3);
        let r = m.build_formula(&f);
        let protected: VarSet = [v(0)].into_iter().collect();
        for code in 0..8u64 {
            let x = Assignment::from_index(code, 3);
            let mut rc = ReasonCircuit::new(&mut m, r, &x);
            let brute = {
                let flipped = x.flipped(v(0));
                m.eval(r, &flipped) != m.eval(r, &x)
            };
            assert_eq!(rc.decision_is_biased(&protected), brute, "at {code:03b}");
        }
    }

    #[test]
    fn even_if_because_queries() {
        // The April example shape (§5.1): decision sticks even if she had
        // no work experience, because she passed the entrance exam.
        // f = exam ∧ (work ∨ gpa)  over (exam=0, work=1, gpa=2).
        let f = Formula::var(v(0)).and(Formula::var(v(1)).or(Formula::var(v(2))));
        let mut m = Obdd::with_num_vars(3);
        let r = m.build_formula(&f);
        let x = Assignment::from_values(&[true, true, true]);
        let mut rc = ReasonCircuit::new(&mut m, r, &x);
        let work: VarSet = [v(1)].into_iter().collect();
        let exam_gpa: VarSet = [v(0), v(2)].into_iter().collect();
        assert!(rc.even_if_because(&work, &exam_gpa));
        // But not "because of the exam alone": exam alone is no trigger.
        let exam: VarSet = [v(0)].into_iter().collect();
        assert!(!rc.even_if_because(&work, &exam));
        // Overlapping sets are rejected.
        assert!(!rc.even_if_because(&work, &work));
    }
}
