//! Role 2 at scale: learning route distributions on a grid map
//! (Figs. 16/18) and querying them.
//!
//! ```sh
//! cargo run --example route_learning
//! ```

use three_roles::core::{Assignment, PartialAssignment, Var};
use three_roles::psdd::Psdd;
use three_roles::sdd::SddManager;
use three_roles::spaces::{compile_simple_paths, GridMap};
use three_roles::vtree::Vtree;

fn main() {
    // A 4×4 street grid; routes go corner to corner.
    let map = GridMap::new(4, 4);
    let g = map.graph();
    let (s, t) = (map.node(0, 0), map.node(3, 3));

    // Compile the space of valid simple routes with the frontier method.
    let (obdd, root) = compile_simple_paths(g, s, t);
    println!(
        "map: {} intersections, {} streets; valid routes: {}",
        g.num_nodes(),
        g.num_edges(),
        obdd.count_models(root)
    );
    println!("route circuit: {} nodes", obdd.size(root));

    // Lift to an SDD (right-linear vtree) and attach a distribution.
    let order: Vec<Var> = (0..g.num_edges() as u32).map(Var).collect();
    let mut sdd = SddManager::new(Vtree::right_linear(&order));
    let support = sdd.from_obdd(&obdd, root);
    let mut psdd = Psdd::from_sdd(&sdd, support);

    // "GPS data": all routes, weighted toward short ones.
    let data: Vec<(Assignment, f64)> = g
        .enumerate_simple_paths(s, t)
        .into_iter()
        .map(|p| {
            let w = 1.0 / (p.len() as f64).powi(3);
            (g.assignment_of(&p), w)
        })
        .collect();
    psdd.learn(&data, 0.01);
    println!("learned from {} observed routes\n", data.len());

    // Queries: how busy is the street leaving the origin heading east?
    let east = g.edge_between(map.node(0, 0), map.node(0, 1)).unwrap();
    let mut e = PartialAssignment::new(g.num_edges());
    e.assign(Var(east as u32).positive());
    println!("Pr(first move is east) = {:.4}", psdd.marginal(&e));

    // The most probable route.
    let (best, p) = psdd.mpe(&PartialAssignment::new(g.num_edges()));
    let streets: Vec<usize> = g.chosen_edges(&best);
    println!(
        "most probable route uses {} streets (p = {:.4})",
        streets.len(),
        p
    );
    assert!(g.is_simple_path(&best, s, t));
    println!("…and it is a valid simple route ✓");
}
