//! The batched query executor: a fixed worker pool dispatching grouped
//! queries through the evaluation kernels.
//!
//! Workers are plain `std::thread`s pulling jobs off a shared channel;
//! circuits are shared as `Arc<PreparedCircuit>` so a batch touching one
//! artifact clones a pointer, not a circuit. A job is no longer one query:
//! [`Executor::run_batch`] groups compatible queries (same kind, same
//! circuit) and ships them as a unit, so a worker answers each group with
//! one lane-batched tape sweep ([`trl_nnf::EvalTape`]) instead of one
//! scalar arena walk per query. When the opt-in [`ParallelPolicy`] says a
//! circuit is wide enough, the whole group instead goes to a single worker
//! that fans each tape layer across the pool's width. Each answered query
//! reports its service latency, so `bench-serve` can record tail
//! behaviour, not just throughput.
//!
//! Batches can be submitted two ways: [`Executor::run_batch`] /
//! [`Executor::try_run_batch`] block the caller until the batch drains,
//! while [`Executor::submit_batch`] returns immediately and fires a
//! completion callback from the worker that answers the last job — the
//! submission path the readiness-driven network server uses so its reactor
//! threads never block on the pool.
//!
//! The pool is deliberately dependency-free (std threads + `mpsc`): the
//! workspace builds air-gapped.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::artifact::{Artifact, ArtifactKind};
use crate::error::{EngineError, Result};
use crate::prepared::PreparedCircuit;
use trl_core::{Assignment, Cube, PartialAssignment, Var};
use trl_nnf::{LitWeights, LANES};
use trl_obs::TraceContext;

/// The node count [`ParallelPolicy::Layered`] switches at — the default
/// policy of [`Executor::with_default_workers`]. Validated by
/// `bench_eval`'s large-circuit tier: a layered sweep over the persistent
/// [`trl_nnf::SweepPool`] costs one job dispatch plus one barrier per
/// dependency layer, which the measured per-node sweep rate amortizes
/// comfortably by ~64k tape nodes, while the small tier (hundreds of
/// nodes) stays far below the cut-over and keeps its lane-batched path.
pub const DEFAULT_LAYERED_MIN_NODES: usize = 1 << 16;

/// How the executor parallelizes one query group.
///
/// Layered sweeps run on the persistent [`trl_nnf::SweepPool`] (spawned
/// once per process, chunked work-stealing within each dependency layer),
/// so dispatching one costs a condvar wake instead of per-layer thread
/// spawns. They still only pay off when a circuit's layers hold enough
/// nodes to amortize the per-layer barrier: [`ParallelPolicy::Layered`]
/// carries that node threshold, and [`Executor::with_default_workers`]
/// enables it at [`DEFAULT_LAYERED_MIN_NODES`]. [`Executor::new`] keeps
/// the policy at [`ParallelPolicy::LaneOnly`] — explicit worker counts
/// are the manual-control constructor, and the lane-batched path is the
/// safe floor everywhere (on single-CPU hosts the pool degrades to it
/// inline). Flip at runtime with [`Executor::set_parallel_policy`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ParallelPolicy {
    /// Lane-batched kernels only; groups are chunked across the worker
    /// pool, never fanned within a layer. The default.
    #[default]
    LaneOnly,
    /// Groups against circuits with at least `min_nodes` raw arena nodes
    /// run as one layer-parallel sweep across the pool's width
    /// ([`DEFAULT_LAYERED_MIN_NODES`] is the historical cut-over).
    Layered {
        /// Minimum raw arena node count before a layered sweep dispatches.
        min_nodes: usize,
    },
}

impl ParallelPolicy {
    /// A stable one-token description for logs and benchmark JSON
    /// (`"lane-only"` or `"layered>=N"`).
    pub fn describe(&self) -> String {
        match self {
            ParallelPolicy::LaneOnly => "lane-only".to_string(),
            ParallelPolicy::Layered { min_nodes } => format!("layered>={min_nodes}"),
        }
    }
}

/// Canonical query-kind names in [`Query::kind_index`] order — the row
/// order of per-kind serving stats ([`Executor::served_by_kind`], the
/// `requests_served` table in the stats snapshot, and the
/// `engine.requests.*` / `engine.latency.*_us` metric families).
///
/// The first six rows are role-1 circuit queries; the rest are the roles
/// subsystem: PSDD queries (role 2, learning), structured-space queries
/// (role 2, combinatorial spaces), and classifier meta-reasoning queries
/// (role 3). Every row's counter and latency histogram is registered
/// eagerly at [`Executor::new`], so stats tables and Prometheus scrapes
/// show zero-valued rows before a kind's first use.
pub const QUERY_KINDS: [&str; 13] = [
    "sat",
    "model_count",
    "model_count_under",
    "wmc",
    "marginals",
    "max_weight",
    "psdd_log_likelihood",
    "psdd_marginal",
    "space_count",
    "space_top",
    "sufficient_reason",
    "decision_robustness",
    "classifier_bias",
];

/// One inference request against a compiled circuit.
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// Satisfiability (linear on DNNF).
    Sat,
    /// Model count over the circuit's universe.
    ModelCount,
    /// Model count restricted to models consistent with the given
    /// evidence (partial assignment).
    ModelCountUnder(PartialAssignment),
    /// Weighted model count under the given literal weights.
    Wmc(LitWeights),
    /// WMC plus every literal's marginal in one derivative pass.
    Marginals(LitWeights),
    /// Maximum assignment weight and a maximizer (MPE once weights encode
    /// probabilities).
    MaxWeight(LitWeights),
    /// Log-likelihood of a weighted complete dataset under a learned PSDD
    /// (role 2).
    PsddLogLikelihood(Vec<(Assignment, f64)>),
    /// Marginal probability of evidence under a learned PSDD (role 2).
    PsddMarginal(PartialAssignment),
    /// Number of objects in a compiled structured space consistent with
    /// the evidence (role 2).
    SpaceCount(PartialAssignment),
    /// Maximum-weight object of a compiled structured space (role 2).
    SpaceTop(LitWeights),
    /// The decision on an instance and one shortest sufficient reason for
    /// it (role 3).
    SufficientReason(Assignment),
    /// Minimum feature flips that change a classifier's decision (role 3).
    DecisionRobustness(Assignment),
    /// Whether a classifier decides differently on some instance when only
    /// the protected features change (role 3).
    ClassifierBias(Vec<Var>),
}

impl Query {
    /// Checks that the query is well-formed for an artifact over
    /// `num_vars` variables (weighted queries, evidence, instances, and
    /// datasets must cover the universe).
    pub fn validate(&self, num_vars: usize) -> Result<()> {
        let undersized_evidence = |what: &str, len: usize| {
            Err(EngineError::Structure(format!(
                "{what} covers {len} variables but the artifact has {num_vars}"
            )))
        };
        let weights = match self {
            Query::Sat | Query::ModelCount => return Ok(()),
            Query::ModelCountUnder(pa) | Query::PsddMarginal(pa) | Query::SpaceCount(pa) => {
                if pa.len() < num_vars {
                    return undersized_evidence("evidence", pa.len());
                }
                return Ok(());
            }
            Query::SufficientReason(x) | Query::DecisionRobustness(x) => {
                if x.len() < num_vars {
                    return undersized_evidence("instance", x.len());
                }
                return Ok(());
            }
            Query::PsddLogLikelihood(data) => {
                for (a, _) in data {
                    if a.len() < num_vars {
                        return undersized_evidence("dataset example", a.len());
                    }
                }
                return Ok(());
            }
            Query::ClassifierBias(protected) => {
                for v in protected {
                    if v.index() >= num_vars {
                        return Err(EngineError::Structure(format!(
                            "protected variable {} outside the artifact's {num_vars} features",
                            v.index()
                        )));
                    }
                }
                return Ok(());
            }
            Query::Wmc(w) | Query::Marginals(w) | Query::MaxWeight(w) | Query::SpaceTop(w) => w,
        };
        if weights.num_vars() < num_vars {
            return undersized_evidence("weights", weights.num_vars());
        }
        Ok(())
    }

    /// The artifact kind this query runs against.
    pub fn artifact_kind(&self) -> ArtifactKind {
        match self {
            Query::Sat
            | Query::ModelCount
            | Query::ModelCountUnder(_)
            | Query::Wmc(_)
            | Query::Marginals(_)
            | Query::MaxWeight(_) => ArtifactKind::Circuit,
            Query::PsddLogLikelihood(_) | Query::PsddMarginal(_) => ArtifactKind::Psdd,
            Query::SpaceCount(_) | Query::SpaceTop(_) => ArtifactKind::Space,
            Query::SufficientReason(_)
            | Query::DecisionRobustness(_)
            | Query::ClassifierBias(_) => ArtifactKind::Classifier,
        }
    }

    /// A short name for logs and benchmark tables.
    pub fn kind(&self) -> &'static str {
        QUERY_KINDS[self.kind_index()]
    }

    /// This query's row in [`QUERY_KINDS`] and the per-kind stat tables.
    pub fn kind_index(&self) -> usize {
        match self {
            Query::Sat => 0,
            Query::ModelCount => 1,
            Query::ModelCountUnder(_) => 2,
            Query::Wmc(_) => 3,
            Query::Marginals(_) => 4,
            Query::MaxWeight(_) => 5,
            Query::PsddLogLikelihood(_) => 6,
            Query::PsddMarginal(_) => 7,
            Query::SpaceCount(_) => 8,
            Query::SpaceTop(_) => 9,
            Query::SufficientReason(_) => 10,
            Query::DecisionRobustness(_) => 11,
            Query::ClassifierBias(_) => 12,
        }
    }

    /// Whether queries of this kind benefit from being grouped into one
    /// lane-batched kernel sweep.
    fn groupable(&self) -> bool {
        matches!(
            self,
            Query::ModelCount | Query::ModelCountUnder(_) | Query::Wmc(_) | Query::Marginals(_)
        )
    }

    /// Bucket index for grouping; only meaningful for groupable queries.
    fn group_bucket(&self) -> usize {
        match self {
            Query::ModelCount => 0,
            Query::ModelCountUnder(_) => 1,
            Query::Wmc(_) => 2,
            Query::Marginals(_) => 3,
            _ => usize::MAX,
        }
    }
}

/// The value a [`Query`] produced.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryAnswer {
    /// Answer to [`Query::Sat`].
    Sat(bool),
    /// Answer to [`Query::ModelCount`], [`Query::ModelCountUnder`], and
    /// [`Query::SpaceCount`].
    ModelCount(u128),
    /// Answer to [`Query::Wmc`].
    Wmc(f64),
    /// Answer to [`Query::Marginals`].
    Marginals {
        /// The total weighted model count.
        wmc: f64,
        /// Per variable: `(WMC(Δ∧v), WMC(Δ∧¬v))`.
        marginals: Vec<(f64, f64)>,
    },
    /// Answer to [`Query::MaxWeight`] and [`Query::SpaceTop`]: `None` iff
    /// the space is empty.
    MaxWeight(Option<(f64, Assignment)>),
    /// Answer to [`Query::PsddLogLikelihood`].
    LogLikelihood(f64),
    /// Answer to [`Query::PsddMarginal`].
    Probability(f64),
    /// Answer to [`Query::SufficientReason`]: the decision and one
    /// shortest sufficient reason (`None` only for an unsatisfiable
    /// target).
    Reason {
        /// The classifier's decision on the instance.
        decision: bool,
        /// A minimal cube of instance literals guaranteeing the decision.
        reason: Option<Cube>,
    },
    /// Answer to [`Query::DecisionRobustness`]: `None` for constant
    /// classifiers.
    Robustness(Option<u32>),
    /// Answer to [`Query::ClassifierBias`].
    Bias(bool),
}

impl QueryAnswer {
    /// The model count, if this is a counting answer.
    pub fn model_count(&self) -> Option<u128> {
        match self {
            QueryAnswer::ModelCount(n) => Some(*n),
            _ => None,
        }
    }

    /// The WMC value, if this is a weighted-counting answer.
    pub fn wmc(&self) -> Option<f64> {
        match self {
            QueryAnswer::Wmc(x) => Some(*x),
            QueryAnswer::Marginals { wmc, .. } => Some(*wmc),
            _ => None,
        }
    }
}

/// One answered query: the answer plus its service latency. For a query
/// answered as part of a kernel group, the latency is the group's sweep
/// time — the wall time that query actually waited on a worker.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The computed answer.
    pub answer: QueryAnswer,
    /// Worker service time for this query (shared across a group).
    pub latency: Duration,
}

/// The completion callback of an asynchronously submitted batch.
type Completion = Box<dyn FnOnce(Vec<QueryOutcome>) + Send + 'static>;

/// Shared state of one submitted batch: the jobs it was split into all
/// hold an `Arc` to it, and whichever worker finishes the last job
/// attributes the batch's stats and runs the completion callback.
struct Pending {
    /// Outcome slot per submission index.
    slots: Mutex<Vec<Option<QueryOutcome>>>,
    /// Jobs not yet answered; the worker that decrements this to zero
    /// finalizes the batch.
    jobs_left: AtomicUsize,
    /// Kind index per submission index, for per-kind stat attribution.
    kinds: Vec<usize>,
    /// Whether this batch dispatched layer-parallel sweeps.
    layered: bool,
    on_done: Mutex<Option<Completion>>,
    /// The owning executor's served-by-kind table (shared so completion
    /// can attribute from a worker thread).
    stats: Arc<ExecutorStats>,
}

impl Pending {
    /// Called by the worker that answered the batch's last job: drains the
    /// outcome slots, attributes stats, and fires the completion callback.
    fn finalize(&self) {
        let outcomes: Vec<QueryOutcome> = {
            let mut slots = self.slots.lock().expect("batch slots lock");
            slots
                .iter_mut()
                .map(|s| s.take().expect("every index answered exactly once"))
                .collect()
        };
        // One pass of stat attribution per batch: engine-scoped per-kind
        // totals plus the process-global request counters and latency
        // histograms — a few relaxed atomics per query.
        trl_obs::counter!("engine.batches").inc();
        trl_obs::counter!("engine.requests").add(outcomes.len() as u64);
        if self.layered {
            trl_obs::counter!("engine.layered_dispatches").inc();
        }
        for (&kind, outcome) in self.kinds.iter().zip(&outcomes) {
            self.stats.served_by_kind[kind].fetch_add(1, Ordering::Relaxed);
            kind_counter(kind).inc();
            kind_histogram(kind).record(outcome.latency);
        }
        if let Some(done) = self.on_done.lock().expect("completion lock").take() {
            done(outcomes);
        }
    }
}

/// Served-by-kind counters, shared between the executor handle and
/// in-flight batch completions.
struct ExecutorStats {
    served_by_kind: [AtomicU64; QUERY_KINDS.len()],
}

/// A group of same-kind queries shipped to one worker as a unit.
struct Job {
    artifact: Artifact,
    /// Submission indices, parallel to `queries`.
    indices: Vec<usize>,
    queries: Vec<Query>,
    /// Threads the worker may fan each tape layer across (1 = lane-batched
    /// only).
    layer_threads: usize,
    /// When the job entered the channel — queue wait is measured from here
    /// to the moment a worker picks the job up.
    submitted: Instant,
    /// The sampled trace context of the request this job belongs to, if
    /// any: the worker records its queue wait and installs the context
    /// around the answering sweep so kernel spans attach to the tree.
    ctx: Option<TraceContext>,
    pending: Arc<Pending>,
}

/// The `engine.requests.<kind>` counter for a [`Query::kind_index`] row,
/// resolved once per kind for the process.
fn kind_counter(kind: usize) -> &'static trl_obs::Counter {
    static HANDLES: OnceLock<[&'static trl_obs::Counter; QUERY_KINDS.len()]> = OnceLock::new();
    HANDLES.get_or_init(|| {
        std::array::from_fn(|i| trl_obs::counter(&format!("engine.requests.{}", QUERY_KINDS[i])))
    })[kind]
}

/// The `engine.latency.<kind>_us` histogram for a kind row.
fn kind_histogram(kind: usize) -> &'static trl_obs::Histogram {
    static HANDLES: OnceLock<[&'static trl_obs::Histogram; QUERY_KINDS.len()]> = OnceLock::new();
    HANDLES.get_or_init(|| {
        std::array::from_fn(|i| {
            trl_obs::histogram(&format!("engine.latency.{}_us", QUERY_KINDS[i]))
        })
    })[kind]
}

/// A fixed pool of worker threads answering query batches against shared
/// immutable circuits. Dropping the executor shuts the workers down.
pub struct Executor {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Jobs submitted but not yet fully answered, across all callers —
    /// the pool's instantaneous backlog, surfaced as a serving stat.
    in_flight: Arc<AtomicUsize>,
    /// Queries answered since construction, one row per
    /// [`QUERY_KINDS`] entry — the per-kind `requests_served` table of
    /// this executor's stats snapshot (engine-scoped, unlike the
    /// process-global `engine.requests.*` counters).
    stats: Arc<ExecutorStats>,
    /// The [`ParallelPolicy`] encoded as a minimum node count: `0` means
    /// lane-only (layered sweeps never dispatch), anything else is
    /// `Layered { min_nodes }`. Atomic so serving frontends can flip the
    /// policy through a shared `&Executor`.
    layered_min_nodes: AtomicUsize,
}

impl Executor {
    /// Spawns a pool of `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let in_flight = Arc::clone(&in_flight);
                std::thread::Builder::new()
                    .name(format!("trl-engine-worker-{i}"))
                    .spawn(move || Self::worker_loop(&rx, &in_flight))
                    .expect("spawn worker thread")
            })
            .collect();
        // Register every per-kind counter and latency histogram up front:
        // stats tables and Prometheus scrapes must show zero-valued rows
        // for kinds that have not been exercised yet, with no
        // dynamic-label gaps when a new kind first fires.
        for kind in 0..QUERY_KINDS.len() {
            kind_counter(kind);
            kind_histogram(kind);
        }
        let _ = trl_obs::counter!("engine.batches");
        let _ = trl_obs::counter!("engine.requests");
        Executor {
            tx: Some(tx),
            workers: handles,
            in_flight,
            stats: Arc::new(ExecutorStats {
                served_by_kind: [const { AtomicU64::new(0) }; QUERY_KINDS.len()],
            }),
            layered_min_nodes: AtomicUsize::new(0),
        }
    }

    /// Spawns one worker per hardware thread
    /// ([`std::thread::available_parallelism`], falling back to 1) — the
    /// default when no explicit worker count is configured — and enables
    /// [`ParallelPolicy::Layered`] at [`DEFAULT_LAYERED_MIN_NODES`]: with
    /// the persistent sweep pool, layer-parallel dispatch is a measured
    /// win past that size and a no-op degradation below one participant,
    /// so the auto-sized executor no longer needs a manual
    /// [`Executor::set_parallel_policy`] call to benefit.
    pub fn with_default_workers() -> Self {
        let ex = Executor::new(std::thread::available_parallelism().map_or(1, |p| p.get()));
        ex.set_parallel_policy(ParallelPolicy::Layered {
            min_nodes: DEFAULT_LAYERED_MIN_NODES,
        });
        ex
    }

    fn worker_loop(rx: &Mutex<Receiver<Job>>, in_flight: &AtomicUsize) {
        loop {
            // Hold the lock only to receive, never while answering.
            let job = match rx.lock() {
                Ok(guard) => guard.recv(),
                Err(_) => return, // a sibling panicked; shut down
            };
            let Ok(job) = job else {
                return; // executor dropped: no more jobs
            };
            let queue_wait = job.submitted.elapsed();
            trl_obs::histogram!("engine.queue_wait_us").record(queue_wait);
            if let Some(ctx) = job.ctx {
                trl_obs::record_span_under(ctx, "engine.queue_wait", job.submitted, queue_wait);
            }
            let start = Instant::now();
            let answers = trl_obs::with_current_trace(job.ctx, || {
                let _batch = trl_obs::trace_span("executor.batch");
                match job.artifact.as_circuit() {
                    Some(circuit) => circuit.answer_batch(&job.queries, job.layer_threads),
                    // Role-2/3 artifacts have no lane-batched kernels;
                    // answer each query through the prepared form's
                    // `&self` entry point.
                    None => job.queries.iter().map(|q| job.artifact.answer(q)).collect(),
                }
            });
            let latency = start.elapsed();
            trl_obs::histogram!("engine.service_us").record(latency);
            {
                let mut slots = job.pending.slots.lock().expect("batch slots lock");
                for (&index, answer) in job.indices.iter().zip(answers) {
                    slots[index] = Some(QueryOutcome { answer, latency });
                }
            }
            in_flight.fetch_sub(1, Ordering::Relaxed);
            // The last job standing finalizes: stat attribution plus the
            // batch's completion callback, both on this worker thread.
            if job.pending.jobs_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                job.pending.finalize();
            }
        }
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs submitted to the pool and not yet answered — an instantaneous
    /// backlog gauge for serving stats, not a synchronization primitive.
    pub fn queue_depth(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Queries answered since construction, one row per [`QUERY_KINDS`]
    /// entry.
    pub fn served_by_kind(&self) -> [u64; QUERY_KINDS.len()] {
        std::array::from_fn(|i| self.stats.served_by_kind[i].load(Ordering::Relaxed))
    }

    /// Sets how groups parallelize (see [`ParallelPolicy`]). Takes effect
    /// for batches submitted after the call; safe through a shared
    /// reference.
    pub fn set_parallel_policy(&self, policy: ParallelPolicy) {
        let encoded = match policy {
            ParallelPolicy::LaneOnly => 0,
            // `min_nodes == 0` means "always layered"; encode it as 1 so it
            // stays distinguishable from the lane-only sentinel (every
            // circuit has at least one node, so the behavior is identical).
            ParallelPolicy::Layered { min_nodes } => min_nodes.max(1),
        };
        self.layered_min_nodes.store(encoded, Ordering::Relaxed);
    }

    /// The active [`ParallelPolicy`].
    pub fn parallel_policy(&self) -> ParallelPolicy {
        match self.layered_min_nodes.load(Ordering::Relaxed) {
            0 => ParallelPolicy::LaneOnly,
            min_nodes => ParallelPolicy::Layered { min_nodes },
        }
    }

    /// Validates a batch of queries against a circuit and answers them on
    /// the pool, returning outcomes in submission order.
    pub fn run_batch(
        &self,
        circuit: &Arc<PreparedCircuit>,
        queries: Vec<Query>,
    ) -> Vec<QueryOutcome> {
        self.try_run_batch(circuit, queries)
            .expect("batch queries valid for this circuit")
    }

    /// [`Executor::run_batch`], returning the first validation error
    /// instead of panicking. No query runs unless the whole batch is valid.
    ///
    /// Blocks until the batch drains; implemented over
    /// [`Executor::submit_batch`] with a channel completion.
    pub fn try_run_batch(
        &self,
        circuit: &Arc<PreparedCircuit>,
        queries: Vec<Query>,
    ) -> Result<Vec<QueryOutcome>> {
        self.try_run_artifact_batch(&Artifact::Circuit(Arc::clone(circuit)), queries)
    }

    /// [`Executor::try_run_batch`] against any typed artifact.
    pub fn try_run_artifact_batch(
        &self,
        artifact: &Artifact,
        queries: Vec<Query>,
    ) -> Result<Vec<QueryOutcome>> {
        let (done_tx, done_rx) = channel();
        self.submit_artifact_batch(artifact, queries, move |outcomes| {
            // The submitter may have given up waiting; that's its business.
            let _ = done_tx.send(outcomes);
        })?;
        Ok(done_rx.recv().expect("a worker died mid-batch"))
    }

    /// Validates and submits a circuit batch without blocking — see
    /// [`Executor::submit_artifact_batch`] for the semantics.
    pub fn submit_batch<F>(
        &self,
        circuit: &Arc<PreparedCircuit>,
        queries: Vec<Query>,
        on_done: F,
    ) -> Result<()>
    where
        F: FnOnce(Vec<QueryOutcome>) + Send + 'static,
    {
        self.submit_artifact_batch(&Artifact::Circuit(Arc::clone(circuit)), queries, on_done)
    }

    /// Validates and submits a batch without blocking: `on_done` fires on
    /// a worker thread (or inline, for an empty batch) once every query is
    /// answered, receiving outcomes in submission order. This is the
    /// readiness-driven server's path — a reactor thread submits a
    /// pipelined connection's queries as one batch and keeps polling while
    /// the pool works.
    ///
    /// Every query must be addressed to the artifact's kind
    /// ([`Artifact::validate`]). Circuit queries of the same counting kind
    /// are grouped and each group split into lane-aligned chunks across
    /// the pool (or handed whole to a layer-parallel sweep when the active
    /// [`ParallelPolicy`] says the circuit is wide enough); SAT, MPE, and
    /// every role-2/3 query run individually.
    pub fn submit_artifact_batch<F>(
        &self,
        artifact: &Artifact,
        queries: Vec<Query>,
        on_done: F,
    ) -> Result<()>
    where
        F: FnOnce(Vec<QueryOutcome>) + Send + 'static,
    {
        self.submit_artifact_batch_traced(artifact, queries, None, on_done)
    }

    /// [`Executor::submit_artifact_batch`] carrying a sampled
    /// [`TraceContext`]: every job records its queue wait as a child span
    /// and installs the context on the answering worker, so kernel-level
    /// spans (sweeps, layer barriers) land in the request's tree.
    pub fn submit_artifact_batch_traced<F>(
        &self,
        artifact: &Artifact,
        queries: Vec<Query>,
        ctx: Option<TraceContext>,
        on_done: F,
    ) -> Result<()>
    where
        F: FnOnce(Vec<QueryOutcome>) + Send + 'static,
    {
        for q in &queries {
            artifact.validate(q)?;
        }
        let n = queries.len();
        let tx = self.tx.as_ref().expect("executor is live until dropped");

        // Partition into per-kind groups (indices + queries, in submission
        // order) and ungroupable singles.
        let mut buckets: [(Vec<usize>, Vec<Query>); 4] = Default::default();
        let mut singles: Vec<(usize, Query)> = Vec::new();
        let mut kinds = Vec::with_capacity(n);
        for (index, query) in queries.into_iter().enumerate() {
            kinds.push(query.kind_index());
            if query.groupable() {
                let b = &mut buckets[query.group_bucket()];
                b.0.push(index);
                b.1.push(query);
            } else {
                singles.push((index, query));
            }
        }

        let workers = self.num_workers();
        let layered = match (self.parallel_policy(), artifact.as_circuit()) {
            (ParallelPolicy::Layered { min_nodes }, Some(circuit)) => {
                circuit.raw().node_count() >= min_nodes
            }
            _ => false,
        };
        // `jobs_left` starts at 1: the submitter holds a guard so no job
        // finishing early can finalize the batch before every job is in
        // the channel. The guard drops after the last send.
        let pending = Arc::new(Pending {
            slots: Mutex::new((0..n).map(|_| None).collect()),
            jobs_left: AtomicUsize::new(1),
            kinds,
            layered,
            on_done: Mutex::new(Some(Box::new(on_done))),
            stats: Arc::clone(&self.stats),
        });

        let send = |indices: Vec<usize>, queries: Vec<Query>, layer_threads: usize| {
            let job = Job {
                artifact: artifact.clone(),
                indices,
                queries,
                layer_threads,
                submitted: Instant::now(),
                ctx,
                pending: Arc::clone(&pending),
            };
            pending.jobs_left.fetch_add(1, Ordering::Relaxed);
            self.in_flight.fetch_add(1, Ordering::Relaxed);
            tx.send(job).expect("worker pool alive");
        };

        for (indices, group) in buckets {
            if group.is_empty() {
                continue;
            }
            if layered {
                // One job, whole group: the worker fans each tape layer
                // across the persistent sweep pool's full width (the
                // kernel clamps to what the pool actually has).
                send(indices, group, trl_nnf::SweepPool::global().size());
                continue;
            }
            // Split the group across workers in lane-aligned chunks, so
            // every chunk fills whole value planes.
            let per_worker = group.len().div_ceil(workers);
            let chunk = per_worker.max(LANES).div_ceil(LANES) * LANES;
            let mut indices = indices.into_iter();
            let mut group = group.into_iter();
            loop {
                let ix: Vec<usize> = indices.by_ref().take(chunk).collect();
                if ix.is_empty() {
                    break;
                }
                let qs: Vec<Query> = group.by_ref().take(ix.len()).collect();
                send(ix, qs, 1);
            }
        }
        for (index, query) in singles {
            send(vec![index], vec![query], 1);
        }

        // Drop the submission guard; if every job already drained (or the
        // batch was empty) this thread finalizes inline.
        if pending.jobs_left.fetch_sub(1, Ordering::AcqRel) == 1 {
            pending.finalize();
        }
        Ok(())
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        self.tx.take();
        // The executor can be dropped *from one of its own workers*: an
        // async completion callback may hold the last strong reference to
        // whatever owns the executor and release it as the closure drops.
        // Joining that thread would be a self-join (EDEADLK); detach it —
        // the closed channel already guarantees it exits on its own.
        let me = std::thread::current().id();
        for h in self.workers.drain(..) {
            if h.thread().id() == me {
                drop(h);
            } else {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trl_compiler::DecisionDnnfCompiler;
    use trl_prop::Cnf;

    fn prepared() -> Arc<PreparedCircuit> {
        let cnf = Cnf::parse_dimacs("p cnf 4 3\n1 2 0\n-1 3 0\n-2 -4 0\n").unwrap();
        Arc::new(PreparedCircuit::new(
            DecisionDnnfCompiler::default().compile(&cnf),
        ))
    }

    #[test]
    fn batch_answers_in_submission_order() {
        let p = prepared();
        let expected_count = p.raw().model_count();
        let ex = Executor::new(3);
        assert_eq!(ex.num_workers(), 3);
        let mut queries = Vec::new();
        for _ in 0..17 {
            queries.push(Query::ModelCount);
            queries.push(Query::Sat);
            queries.push(Query::Wmc(LitWeights::unit(4)));
        }
        let outcomes = ex.run_batch(&p, queries);
        assert_eq!(outcomes.len(), 51);
        for chunk in outcomes.chunks(3) {
            assert_eq!(chunk[0].answer.model_count(), Some(expected_count));
            assert_eq!(chunk[1].answer, QueryAnswer::Sat(true));
            assert_eq!(chunk[2].answer.wmc(), Some(expected_count as f64));
            assert!(chunk.iter().all(|o| o.latency > Duration::ZERO));
        }
    }

    #[test]
    fn mixed_kind_batch_matches_direct_answers() {
        let p = prepared();
        let mut w = LitWeights::unit(4);
        for v in 0..4u32 {
            w.set(trl_core::Var(v).positive(), 0.3 + 0.1 * v as f64);
            w.set(trl_core::Var(v).negative(), 0.7 - 0.1 * v as f64);
        }
        let mut pa = PartialAssignment::new(4);
        pa.assign(trl_core::Var(0).positive());
        let mut queries = Vec::new();
        for i in 0..9 {
            queries.push(Query::Wmc(w.clone()));
            queries.push(Query::Marginals(w.clone()));
            queries.push(Query::ModelCountUnder(pa.clone()));
            queries.push(Query::MaxWeight(w.clone()));
            if i % 2 == 0 {
                queries.push(Query::Sat);
            }
        }
        let ex = Executor::new(2);
        let outcomes = ex.run_batch(&p, queries.clone());
        for (q, o) in queries.iter().zip(&outcomes) {
            assert_eq!(o.answer, p.answer(q), "kind={}", q.kind());
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let ex = Executor::new(2);
        assert!(ex.run_batch(&prepared(), Vec::new()).is_empty());
    }

    #[test]
    fn undersized_weights_rejected_before_running() {
        let ex = Executor::new(1);
        let bad = vec![Query::ModelCount, Query::Wmc(LitWeights::unit(2))];
        assert!(matches!(
            ex.try_run_batch(&prepared(), bad),
            Err(EngineError::Structure(_))
        ));
        let bad_evidence = vec![Query::ModelCountUnder(PartialAssignment::new(2))];
        assert!(matches!(
            ex.try_run_batch(&prepared(), bad_evidence),
            Err(EngineError::Structure(_))
        ));
    }

    #[test]
    fn many_batches_reuse_the_pool() {
        let p = prepared();
        let ex = Executor::new(2);
        for _ in 0..10 {
            let outcomes = ex.run_batch(&p, vec![Query::ModelCount; 8]);
            assert!(outcomes
                .iter()
                .all(|o| o.answer.model_count() == Some(p.raw().model_count())));
        }
    }

    #[test]
    fn zero_worker_request_still_gets_one() {
        let ex = Executor::new(0);
        assert_eq!(ex.num_workers(), 1);
        let outcomes = ex.run_batch(&prepared(), vec![Query::Sat]);
        assert_eq!(outcomes[0].answer, QueryAnswer::Sat(true));
    }

    #[test]
    fn parallel_policy_defaults_off_and_round_trips() {
        let ex = Executor::new(1);
        assert_eq!(ex.parallel_policy(), ParallelPolicy::LaneOnly);
        ex.set_parallel_policy(ParallelPolicy::Layered { min_nodes: 4096 });
        assert_eq!(
            ex.parallel_policy(),
            ParallelPolicy::Layered { min_nodes: 4096 }
        );
        assert_eq!(ex.parallel_policy().describe(), "layered>=4096");
        ex.set_parallel_policy(ParallelPolicy::LaneOnly);
        assert_eq!(ex.parallel_policy(), ParallelPolicy::LaneOnly);
        assert_eq!(ex.parallel_policy().describe(), "lane-only");
    }

    #[test]
    fn default_workers_auto_tune_the_layered_policy() {
        let ex = Executor::with_default_workers();
        assert_eq!(
            ex.parallel_policy(),
            ParallelPolicy::Layered {
                min_nodes: DEFAULT_LAYERED_MIN_NODES
            }
        );
        // Explicit worker counts are the manual-control constructor and
        // keep the lane-only floor.
        assert_eq!(Executor::new(2).parallel_policy(), ParallelPolicy::LaneOnly);
    }

    #[test]
    fn layered_opt_in_answers_identically() {
        let p = prepared();
        let ex = Executor::new(2);
        let lane = ex.run_batch(&p, vec![Query::ModelCount; 20]);
        // min_nodes: 1 forces the layered sweep even on this tiny circuit.
        ex.set_parallel_policy(ParallelPolicy::Layered { min_nodes: 1 });
        let layered = ex.run_batch(&p, vec![Query::ModelCount; 20]);
        for (a, b) in lane.iter().zip(&layered) {
            assert_eq!(a.answer, b.answer);
        }
    }

    #[test]
    fn submit_batch_completes_asynchronously_in_submission_order() {
        let p = prepared();
        let ex = Executor::new(2);
        let expected: Vec<_> = [
            Query::ModelCount,
            Query::Sat,
            Query::Wmc(LitWeights::unit(4)),
        ]
        .iter()
        .map(|q| p.answer(q))
        .collect();
        let (tx, rx) = std::sync::mpsc::channel();
        for _ in 0..8 {
            let tx = tx.clone();
            ex.submit_batch(
                &p,
                vec![
                    Query::ModelCount,
                    Query::Sat,
                    Query::Wmc(LitWeights::unit(4)),
                ],
                move |outcomes| {
                    let _ = tx.send(outcomes);
                },
            )
            .unwrap();
        }
        drop(tx);
        let mut seen = 0;
        while let Ok(outcomes) = rx.recv() {
            assert_eq!(outcomes.len(), 3);
            for (o, e) in outcomes.iter().zip(&expected) {
                assert_eq!(&o.answer, e);
            }
            seen += 1;
        }
        assert_eq!(seen, 8);
    }

    #[test]
    fn submit_batch_empty_fires_inline() {
        let ex = Executor::new(1);
        let fired = Arc::new(AtomicUsize::new(0));
        let flag = Arc::clone(&fired);
        ex.submit_batch(&prepared(), Vec::new(), move |outcomes| {
            assert!(outcomes.is_empty());
            flag.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn role_2_and_3_artifacts_answer_through_the_pool() {
        use trl_core::Var;
        let cnf = Cnf::parse_dimacs("p cnf 3 2\n-1 2 0\n-2 3 0\n").unwrap();
        let data = vec![
            (Assignment::from_values(&[false, false, false]), 3.0),
            (Assignment::from_values(&[true, true, true]), 1.0),
        ];
        let psdd = Arc::new(trl_psdd::PreparedPsdd::learn_from_cnf(&cnf, &data, 0.1).unwrap());
        let clf = Arc::new(trl_xai::PreparedClassifier::compile(&cnf));
        let space = Arc::new(trl_spaces::PreparedSpace::compile(
            trl_spaces::Graph::new(3, vec![(0, 1), (1, 2), (0, 2)]),
            0,
            2,
        ));
        let ex = Executor::new(2);

        let mut e = PartialAssignment::new(3);
        e.assign(Var(2).positive());
        let art = Artifact::Psdd(Arc::clone(&psdd));
        let outcomes = ex
            .try_run_artifact_batch(
                &art,
                vec![
                    Query::PsddLogLikelihood(data.clone()),
                    Query::PsddMarginal(e.clone()),
                ],
            )
            .unwrap();
        assert_eq!(
            outcomes[0].answer,
            QueryAnswer::LogLikelihood(psdd.log_likelihood(&data))
        );
        assert_eq!(
            outcomes[1].answer,
            QueryAnswer::Probability(psdd.marginal(&e))
        );

        let art = Artifact::Space(Arc::clone(&space));
        let outcomes = ex
            .try_run_artifact_batch(
                &art,
                vec![
                    Query::SpaceCount(PartialAssignment::new(3)),
                    Query::SpaceTop(LitWeights::unit(3)),
                ],
            )
            .unwrap();
        assert_eq!(
            outcomes[0].answer,
            QueryAnswer::ModelCount(space.path_count())
        );
        assert!(matches!(
            outcomes[1].answer,
            QueryAnswer::MaxWeight(Some(_))
        ));

        let x = Assignment::from_values(&[true, true, true]);
        let art = Artifact::Classifier(Arc::clone(&clf));
        let outcomes = ex
            .try_run_artifact_batch(
                &art,
                vec![
                    Query::SufficientReason(x.clone()),
                    Query::DecisionRobustness(x.clone()),
                    Query::ClassifierBias(vec![Var(0)]),
                ],
            )
            .unwrap();
        let (decision, reason) = clf.sufficient_reason(&x);
        assert_eq!(outcomes[0].answer, QueryAnswer::Reason { decision, reason });
        assert_eq!(
            outcomes[1].answer,
            QueryAnswer::Robustness(clf.robustness(&x))
        );
        assert_eq!(
            outcomes[2].answer,
            QueryAnswer::Bias(clf.is_biased(&[Var(0)]))
        );

        let served = ex.served_by_kind();
        for kind in 6..QUERY_KINDS.len() {
            assert!(served[kind] > 0, "kind {} unattributed", QUERY_KINDS[kind]);
        }
    }

    #[test]
    fn kind_mismatch_rejected_before_running() {
        let ex = Executor::new(1);
        let result = ex.try_run_artifact_batch(
            &Artifact::Circuit(prepared()),
            vec![Query::SpaceCount(PartialAssignment::new(4))],
        );
        assert!(matches!(result, Err(EngineError::Structure(_))));
    }

    #[test]
    fn submit_batch_rejects_invalid_without_firing() {
        let ex = Executor::new(1);
        let result = ex.submit_batch(
            &prepared(),
            vec![Query::Wmc(LitWeights::unit(2))],
            move |_| panic!("completion must not fire for a rejected batch"),
        );
        assert!(matches!(result, Err(EngineError::Structure(_))));
    }
}
