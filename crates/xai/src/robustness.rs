//! Robustness and formal properties (§5.2 of the paper, \[80, 81\]).
//!
//! * **Decision robustness** — the smallest number of feature flips that
//!   change the decision on an instance. coNP-complete on the black box;
//!   linear in a compiled OBDD \[81\].
//! * **Model robustness** — the average decision robustness over *all*
//!   instances \[80\]. Computed exactly here by layered Hamming-ball
//!   expansion with circuit operations, producing the full histogram
//!   behind Fig. 29 ("the robustness of 2^256 instances" — here 2^n).
//! * **Monotonicity** — a global property provable on the circuit (§5.2's
//!   closing example).

use trl_core::{Assignment, Var};
use trl_obdd::{BddRef, Obdd};

/// The exact robustness profile of a classifier.
#[derive(Clone, Debug, PartialEq)]
pub struct RobustnessProfile {
    /// `histogram[k]` = number of instances with decision robustness
    /// exactly `k + 1` (an instance at distance `d` from the decision
    /// boundary set needs `d` flips; minimum meaningful robustness is 1).
    pub histogram: Vec<u128>,
    /// The average robustness over all `2^n` instances — the paper's
    /// "model robustness" (11.77 vs 3.62 for the two nets of Fig. 29).
    pub model_robustness: f64,
    /// The largest robustness any instance attains (27 vs 13 in Fig. 29).
    pub max_robustness: u32,
}

/// Decision robustness of `f` at `x`: the minimum flips changing the
/// decision, or `None` for constant functions (no flip ever changes it).
pub fn decision_robustness(m: &Obdd, f: BddRef, x: &Assignment) -> Option<u32> {
    let current = m.eval(f, x);
    m.min_flips_to(f, x, !current)
}

/// The exact robustness histogram of `f` over all `2^n` instances, by
/// layered expansion: `L₀` = instances of the opposite class; `L_{k+1}` =
/// `L_k` plus everything one flip away. Instances first reached at layer
/// `k` have robustness `k`. Returns `None` for constant functions.
pub fn robustness_profile(m: &mut Obdd, f: BddRef) -> Option<RobustnessProfile> {
    if f == Obdd::TRUE || f == Obdd::FALSE {
        return None;
    }
    let n = m.num_vars();
    let vars: Vec<Var> = m.order().to_vec();
    let total = 1u128 << n;
    let mut histogram = Vec::new();
    let mut weighted = 0u128;
    let mut max_robustness = 0u32;

    // Process each class: distance of class-c instances to the ¬c set.
    for class in [true, false] {
        let class_set = if class { f } else { m.not(f) };
        let mut layer = m.not(class_set); // L₀: the opposite class
        let mut k = 0u32;
        let mut reached_prev = m.count_models(layer); // instances at distance ≤ k (incl. other class)
        loop {
            k += 1;
            // Expand by one flip.
            let mut next = layer;
            for &v in &vars {
                let flipped = m.flip_var(layer, v);
                next = m.or(next, flipped);
            }
            let in_class_now = {
                let x = m.and(next, class_set);
                m.count_models(x)
            };
            let in_class_prev = {
                let x = m.and(layer, class_set);
                m.count_models(x)
            };
            let newly = in_class_now - in_class_prev;
            if histogram.len() < k as usize {
                histogram.resize(k as usize, 0);
            }
            histogram[(k - 1) as usize] += newly;
            weighted += newly * k as u128;
            if newly > 0 {
                max_robustness = max_robustness.max(k);
            }
            let reached = m.count_models(next);
            if reached == total {
                break;
            }
            assert!(reached > reached_prev, "expansion stalled");
            reached_prev = reached;
            layer = next;
        }
    }
    Some(RobustnessProfile {
        model_robustness: weighted as f64 / total as f64,
        max_robustness,
        histogram,
    })
}

/// Whether `f` is monotone (non-decreasing) in `var`: flipping `var` from
/// 0 to 1 never turns the decision off. One implication check on the
/// circuit — the formal property proof of §5.2.
pub fn is_monotone_in(m: &mut Obdd, f: BddRef, var: Var) -> bool {
    let f0 = m.restrict(f, var, false);
    let f1 = m.restrict(f, var, true);
    let imp = m.implies(f0, f1);
    imp == Obdd::TRUE
}

/// Whether `f` is monotone in every variable — e.g. "a loan applicant is
/// always approved when they only improve on an approved applicant".
pub fn is_monotone(m: &mut Obdd, f: BddRef) -> bool {
    let vars: Vec<Var> = m.order().to_vec();
    vars.into_iter().all(|v| is_monotone_in(m, f, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trl_prop::Formula;

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn brute_profile(m: &Obdd, f: BddRef) -> (f64, u32, Vec<u128>) {
        let n = m.num_vars();
        let mut hist: Vec<u128> = Vec::new();
        let mut total = 0u128;
        let mut maxr = 0u32;
        for code in 0..1u64 << n {
            let x = Assignment::from_index(code, n);
            let cls = m.eval(f, &x);
            let mut best = u32::MAX;
            for other in 0..1u64 << n {
                let y = Assignment::from_index(other, n);
                if m.eval(f, &y) != cls {
                    best = best.min(x.hamming_distance(&y) as u32);
                }
            }
            total += best as u128;
            maxr = maxr.max(best);
            if hist.len() < best as usize {
                hist.resize(best as usize, 0);
            }
            hist[(best - 1) as usize] += 1;
        }
        (total as f64 / (1u128 << n) as f64, maxr, hist)
    }

    #[test]
    fn decision_robustness_matches_min_flips() {
        let f = Formula::var(v(0))
            .and(Formula::var(v(1)))
            .or(Formula::var(v(2)).and(Formula::var(v(3))));
        let mut m = Obdd::with_num_vars(4);
        let r = m.build_formula(&f);
        for code in 0..16u64 {
            let x = Assignment::from_index(code, 4);
            let rob = decision_robustness(&m, r, &x).unwrap();
            let cls = m.eval(r, &x);
            let brute = (0..16u64)
                .map(|c| Assignment::from_index(c, 4))
                .filter(|y| m.eval(r, y) != cls)
                .map(|y| x.hamming_distance(&y) as u32)
                .min()
                .unwrap();
            assert_eq!(rob, brute, "at {code:04b}");
        }
    }

    #[test]
    fn profile_matches_brute_force() {
        let f = Formula::var(v(0))
            .xor(Formula::var(v(1)))
            .or(Formula::var(v(2)).and(Formula::var(v(3))));
        let mut m = Obdd::with_num_vars(4);
        let r = m.build_formula(&f);
        let profile = robustness_profile(&mut m, r).unwrap();
        let (avg, maxr, hist) = brute_profile(&m, r);
        assert!((profile.model_robustness - avg).abs() < 1e-12);
        assert_eq!(profile.max_robustness, maxr);
        assert_eq!(profile.histogram, hist);
        // Histogram totals the instance space.
        let total: u128 = profile.histogram.iter().sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn profile_on_high_robustness_function() {
        // A cube x0∧x1∧x2∧x3: the all-ones instance flips with 1;
        // the all-zeros instance needs... distance to the unique model.
        let f = Formula::conj((0..4).map(|i| Formula::var(v(i))));
        let mut m = Obdd::with_num_vars(4);
        let r = m.build_formula(&f);
        let profile = robustness_profile(&mut m, r).unwrap();
        let (avg, maxr, hist) = brute_profile(&m, r);
        assert!((profile.model_robustness - avg).abs() < 1e-12);
        assert_eq!(profile.max_robustness, maxr);
        assert_eq!(maxr, 4);
        assert_eq!(profile.histogram, hist);
    }

    #[test]
    fn constants_have_no_profile() {
        let mut m = Obdd::with_num_vars(3);
        assert!(robustness_profile(&mut m, Obdd::TRUE).is_none());
        let x = Assignment::from_index(0, 3);
        assert_eq!(decision_robustness(&m, Obdd::TRUE, &x), None);
    }

    #[test]
    fn monotonicity_checks() {
        let mut m = Obdd::with_num_vars(3);
        // Monotone: x0 ∨ (x1 ∧ x2).
        let f = m.build_formula(&Formula::var(v(0)).or(Formula::var(v(1)).and(Formula::var(v(2)))));
        assert!(is_monotone(&mut m, f));
        // Not monotone in x1: x0 ⊕ x1.
        let g = m.build_formula(&Formula::var(v(0)).xor(Formula::var(v(1))));
        assert!(!is_monotone_in(&mut m, g, v(1)));
        assert!(!is_monotone(&mut m, g));
        // Monotone in an irrelevant variable.
        assert!(is_monotone_in(&mut m, f, v(2)));
    }
}
