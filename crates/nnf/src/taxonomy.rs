//! The circuit taxonomy of Fig. 12 (the knowledge compilation map \[34\]).
//!
//! Every tractable language in the paper is NNF plus properties:
//!
//! ```text
//! NNF ⊇ DNNF ⊇ d-DNNF ⊇ structured d-DNNF ⊇ SDD ⊇ OBDD
//! ```
//!
//! [`classify`] reports which properties a given circuit satisfies, so the
//! inclusions can be *observed* on compiled circuits (experiment
//! `exp18_taxonomy`). Determinism is semantic, so classification is exact
//! only for circuits small enough for the exhaustive check; pass
//! `check_determinism: false` to skip it on larger circuits.

use crate::circuit::Circuit;
use crate::properties;
use trl_vtree::Vtree;

/// The properties of a circuit, as reported by [`classify`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CircuitClass {
    /// Decomposable (and-gates have disjoint inputs): the circuit is a DNNF.
    pub decomposable: bool,
    /// Deterministic (or-gates mutually exclusive); `None` if not checked.
    pub deterministic: Option<bool>,
    /// Smooth (or-gate inputs mention the same variables).
    pub smooth: bool,
    /// Structured by the supplied vtree; `None` if no vtree was supplied.
    pub structured: Option<bool>,
}

impl CircuitClass {
    /// The most specific language name from Fig. 12's spine that the
    /// observed properties certify.
    pub fn language(&self) -> &'static str {
        match (self.decomposable, self.deterministic, self.structured) {
            (true, Some(true), Some(true)) => "structured d-DNNF (SDD-style)",
            (true, Some(true), _) => "d-DNNF",
            (true, _, Some(true)) => "structured DNNF",
            (true, _, _) => "DNNF",
            _ => "NNF",
        }
    }
}

/// Classifies a circuit. `vtree` enables the structuredness check;
/// `check_determinism` runs the exhaustive semantic check (≤ 20 variables).
pub fn classify(c: &Circuit, vtree: Option<&Vtree>, check_determinism: bool) -> CircuitClass {
    CircuitClass {
        decomposable: properties::is_decomposable(c),
        deterministic: check_determinism.then(|| properties::is_deterministic_exhaustive(c)),
        smooth: properties::is_smooth(c),
        structured: vtree.map(|vt| properties::respects_vtree(c, vt)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use trl_core::Var;

    fn v(i: u32) -> Var {
        Var(i)
    }

    #[test]
    fn plain_nnf_is_only_nnf() {
        // x0 ∨ x1 is not deterministic; (x0 ∧ x0-sharing) breaks nothing
        // here, so build a non-decomposable and-gate explicitly.
        let mut b = CircuitBuilder::new(2);
        let x0 = b.var(v(0));
        let x1 = b.var(v(1));
        let both = b.and_raw([x0, x1]);
        let shared = b.and_raw([x0, both]); // shares x0 → not decomposable
        let c = b.finish(shared);
        let class = classify(&c, None, true);
        assert!(!class.decomposable);
        assert_eq!(class.language(), "NNF");
    }

    #[test]
    fn dnnf_without_determinism() {
        let mut b = CircuitBuilder::new(2);
        let x0 = b.var(v(0));
        let x1 = b.var(v(1));
        let r = b.or([x0, x1]); // overlapping or: not deterministic
        let c = b.finish(r);
        let class = classify(&c, None, true);
        assert!(class.decomposable);
        assert_eq!(class.deterministic, Some(false));
        assert_eq!(class.language(), "DNNF");
    }

    #[test]
    fn ddnnf_classification() {
        let mut b = CircuitBuilder::new(2);
        let x0 = b.var(v(0));
        let nx0 = b.lit(v(0).negative());
        let x1 = b.var(v(1));
        let lhs = b.and([x0, x1]);
        let rhs = b.and([nx0, x1]);
        let r = b.or([lhs, rhs]);
        let c = b.finish(r);
        let class = classify(&c, None, true);
        assert_eq!(class.language(), "d-DNNF");
        assert!(class.smooth);
    }

    #[test]
    fn skipping_the_determinism_check() {
        let mut b = CircuitBuilder::new(2);
        let x0 = b.var(v(0));
        let c = b.finish(x0);
        let class = classify(&c, None, false);
        assert_eq!(class.deterministic, None);
        assert_eq!(class.language(), "DNNF");
    }

    #[test]
    fn structured_classification_with_vtree() {
        let mut b = CircuitBuilder::new(2);
        let x0 = b.var(v(0));
        let x1 = b.var(v(1));
        let r = b.and([x0, x1]);
        let c = b.finish(r);
        let vt = Vtree::right_linear(&[v(0), v(1)]);
        let class = classify(&c, Some(&vt), true);
        assert_eq!(class.structured, Some(true));
        assert_eq!(class.language(), "structured d-DNNF (SDD-style)");
    }
}
