//! The seed d-DNNF compiler, preserved verbatim as a benchmark baseline.
//!
//! This is the naive Dsharp-style trace the repository started with:
//! component keys are fully materialized `Vec<Vec<Lit>>` of reduced clauses
//! (allocated, sorted, and hashed on every probe), unit propagation rescans
//! every clause of the component until fixpoint, components come from
//! union-find over repeated clause scans, and branching is static
//! max-occurrence. `trl-compiler` replaced all four mechanisms (packed
//! signatures, two-watched-literal propagation, occurrence-list component
//! discovery, VSADS); this copy exists so `bench_trajectory` and
//! `benches/compile.rs` can report honest before/after numbers against the
//! original algorithm on the machine at hand. Do not use it for anything
//! but benchmarking — the real compiler is strictly better.

use trl_core::{FxHashMap, Lit, Var};
use trl_nnf::{Circuit, CircuitBuilder, NnfId};
use trl_prop::Cnf;

/// Cache counters for the baseline run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SeedStats {
    pub cache_hits: u64,
    pub cache_misses: u64,
}

/// Compiles with the seed algorithm, returning the circuit and counters.
pub fn compile(cnf: &Cnf) -> (Circuit, SeedStats) {
    let mut st = Compilation::new(cnf);
    let all: Vec<u32> = (0..cnf.clauses().len() as u32).collect();
    let root = st.compile_component(&all);
    let stats = st.stats;
    (st.builder.finish(root), stats)
}

/// Signature of a reduced component: the sorted list of reduced clauses.
type ComponentKey = Vec<Vec<Lit>>;

struct Compilation<'a> {
    cnf: &'a Cnf,
    builder: CircuitBuilder,
    /// Current values: 0 = unset, 1 = false, 2 = true.
    value: Vec<u8>,
    trail: Vec<Var>,
    cache: FxHashMap<ComponentKey, NnfId>,
    stats: SeedStats,
}

impl<'a> Compilation<'a> {
    fn new(cnf: &'a Cnf) -> Self {
        Compilation {
            cnf,
            builder: CircuitBuilder::new(cnf.num_vars()),
            value: vec![0; cnf.num_vars()],
            trail: Vec::new(),
            cache: FxHashMap::default(),
            stats: SeedStats::default(),
        }
    }

    fn lit_value(&self, l: Lit) -> u8 {
        match self.value[l.var().index()] {
            0 => 0,
            v => {
                let is_true = v == 2;
                if l.is_positive() == is_true {
                    2
                } else {
                    1
                }
            }
        }
    }

    fn assign(&mut self, l: Lit) {
        self.value[l.var().index()] = if l.is_positive() { 2 } else { 1 };
        self.trail.push(l.var());
    }

    fn backtrack_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let v = self.trail.pop().unwrap();
            self.value[v.index()] = 0;
        }
    }

    /// Unit propagation by fixpoint rescans over the given clauses.
    fn propagate(&mut self, clauses: &[u32]) -> Option<Vec<Lit>> {
        let mut implied = Vec::new();
        loop {
            let mut progressed = false;
            'clauses: for &ci in clauses {
                let c = &self.cnf.clauses()[ci as usize];
                let mut unassigned = None;
                let mut n_un = 0;
                for &l in c.literals() {
                    match self.lit_value(l) {
                        2 => continue 'clauses,
                        1 => {}
                        _ => {
                            unassigned = Some(l);
                            n_un += 1;
                            if n_un > 1 {
                                continue 'clauses;
                            }
                        }
                    }
                }
                match (n_un, unassigned) {
                    (0, _) => return None,
                    (1, Some(l)) => {
                        self.assign(l);
                        implied.push(l);
                        progressed = true;
                    }
                    _ => unreachable!(),
                }
            }
            if !progressed {
                return Some(implied);
            }
        }
    }

    fn active_clauses(&self, clauses: &[u32]) -> Vec<u32> {
        clauses
            .iter()
            .copied()
            .filter(|&ci| {
                self.cnf.clauses()[ci as usize]
                    .literals()
                    .iter()
                    .all(|&l| self.lit_value(l) != 2)
            })
            .collect()
    }

    /// Partitions active clauses by shared unassigned variables
    /// (union-find over variables).
    fn components(&self, active: &[u32]) -> Vec<Vec<u32>> {
        let n = self.cnf.num_vars();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for &ci in active {
            let mut first: Option<u32> = None;
            for &l in self.cnf.clauses()[ci as usize].literals() {
                if self.lit_value(l) != 0 {
                    continue;
                }
                let v = l.var().0;
                match first {
                    None => first = Some(v),
                    Some(f) => {
                        let (a, b) = (find(&mut parent, f), find(&mut parent, v));
                        parent[a as usize] = b;
                    }
                }
            }
        }
        let mut groups: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for &ci in active {
            let rep = self.cnf.clauses()[ci as usize]
                .literals()
                .iter()
                .find(|&&l| self.lit_value(l) == 0)
                .map(|&l| find(&mut parent, l.var().0))
                .expect("active clause has an unassigned literal");
            groups.entry(rep).or_default().push(ci);
        }
        let mut out: Vec<Vec<u32>> = groups.into_values().collect();
        out.sort_by_key(|g| g[0]);
        out
    }

    fn component_key(&self, clauses: &[u32]) -> ComponentKey {
        let mut key: ComponentKey = clauses
            .iter()
            .map(|&ci| {
                self.cnf.clauses()[ci as usize]
                    .literals()
                    .iter()
                    .copied()
                    .filter(|&l| self.lit_value(l) == 0)
                    .collect::<Vec<Lit>>()
            })
            .collect();
        key.sort();
        key.dedup();
        key
    }

    /// Picks the unassigned variable occurring most often in the clauses.
    fn pick_branch(&self, clauses: &[u32]) -> Var {
        let mut counts: FxHashMap<Var, u32> = FxHashMap::default();
        for &ci in clauses {
            for &l in self.cnf.clauses()[ci as usize].literals() {
                if self.lit_value(l) == 0 {
                    *counts.entry(l.var()).or_insert(0) += 1;
                }
            }
        }
        counts
            .into_iter()
            .max_by_key(|&(v, c)| (c, std::cmp::Reverse(v.0)))
            .expect("no unassigned variable in active component")
            .0
    }

    fn compile_component(&mut self, clauses: &[u32]) -> NnfId {
        let mark = self.trail.len();
        let Some(implied) = self.propagate(clauses) else {
            self.backtrack_to(mark);
            return self.builder.false_();
        };
        let implied_cube: Vec<Lit> = implied.clone();
        let active = self.active_clauses(clauses);
        let result = if active.is_empty() {
            self.builder.cube(implied_cube.iter().copied())
        } else {
            let comps = self.components(&active);
            let mut parts: Vec<NnfId> = Vec::with_capacity(comps.len() + 1);
            parts.push(self.builder.cube(implied_cube.iter().copied()));
            let mut failed = false;
            for comp in comps {
                let sub = self.compile_one(&comp);
                if self.builder_is_false(sub) {
                    failed = true;
                    parts.clear();
                    break;
                }
                parts.push(sub);
            }
            if failed {
                self.builder.false_()
            } else {
                self.builder.and(parts)
            }
        };
        self.backtrack_to(mark);
        result
    }

    fn builder_is_false(&mut self, id: NnfId) -> bool {
        id == self.builder.false_()
    }

    fn compile_one(&mut self, comp: &[u32]) -> NnfId {
        let key = self.component_key(comp);
        if let Some(&id) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            return id;
        }
        self.stats.cache_misses += 1;
        let v = self.pick_branch(comp);
        let mark = self.trail.len();

        self.assign(v.positive());
        let pos_body = self.compile_component(comp);
        self.backtrack_to(mark);

        self.assign(v.negative());
        let neg_body = self.compile_component(comp);
        self.backtrack_to(mark);

        let pos_lit = self.builder.lit(v.positive());
        let neg_lit = self.builder.lit(v.negative());
        let pos = self.builder.and([pos_lit, pos_body]);
        let neg = self.builder.and([neg_lit, neg_body]);
        let id = self.builder.or([pos, neg]);
        self.cache.insert(key, id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{random_3cnf, Rng};
    use trl_compiler::DecisionDnnfCompiler;

    #[test]
    fn seed_baseline_agrees_with_current_compiler() {
        let mut rng = Rng::new(9);
        for _ in 0..10 {
            let cnf = random_3cnf(&mut rng, 10, 24);
            let (seed, _) = compile(&cnf);
            let new = DecisionDnnfCompiler::default().compile(&cnf);
            assert_eq!(seed.model_count(), new.model_count());
        }
    }
}
