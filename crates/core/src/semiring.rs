//! Evaluation semirings.
//!
//! A smooth d-DNNF circuit evaluates to the (weighted) model count when
//! or-gates sum and and-gates multiply (Fig. 8 of the paper), and to the MPE
//! value when or-gates maximize instead. Abstracting the two operations as a
//! semiring lets one circuit-traversal routine answer both query families.

/// A commutative semiring over `f64`-representable values.
pub trait Semiring: Copy {
    /// The carried value type.
    type Value: Copy + PartialEq + std::fmt::Debug;

    /// The additive identity (value of an empty or-gate / `⊥`).
    fn zero() -> Self::Value;
    /// The multiplicative identity (value of an empty and-gate / `⊤`).
    fn one() -> Self::Value;
    /// Combination at or-gates.
    fn add(a: Self::Value, b: Self::Value) -> Self::Value;
    /// Combination at and-gates.
    fn mul(a: Self::Value, b: Self::Value) -> Self::Value;
}

/// The real (sum, product) semiring: weighted model counting.
#[derive(Clone, Copy, Debug)]
pub struct Real;

impl Semiring for Real {
    type Value = f64;

    fn zero() -> f64 {
        0.0
    }
    fn one() -> f64 {
        1.0
    }
    fn add(a: f64, b: f64) -> f64 {
        a + b
    }
    fn mul(a: f64, b: f64) -> f64 {
        a * b
    }
}

/// The (max, product) semiring: most-probable-explanation values.
#[derive(Clone, Copy, Debug)]
pub struct MaxProd;

impl Semiring for MaxProd {
    type Value = f64;

    fn zero() -> f64 {
        0.0
    }
    fn one() -> f64 {
        1.0
    }
    fn add(a: f64, b: f64) -> f64 {
        a.max(b)
    }
    fn mul(a: f64, b: f64) -> f64 {
        a * b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_semiring_laws_spot_checks() {
        assert_eq!(Real::add(Real::zero(), 3.0), 3.0);
        assert_eq!(Real::mul(Real::one(), 3.0), 3.0);
        assert_eq!(Real::mul(Real::zero(), 3.0), 0.0);
        assert_eq!(Real::add(1.5, 2.5), 4.0);
    }

    #[test]
    fn maxprod_add_is_max() {
        assert_eq!(MaxProd::add(0.3, 0.7), 0.7);
        assert_eq!(MaxProd::add(MaxProd::zero(), 0.2), 0.2);
        assert_eq!(MaxProd::mul(0.5, 0.5), 0.25);
    }
}
