//! Vtrees: full binary trees whose leaves are in one-to-one correspondence
//! with circuit variables (Fig. 10 of the paper).
//!
//! A vtree fixes the *structure* dimension of structured-decomposable
//! circuits: every and-gate of a structured DNNF or SDD respects some vtree
//! node, with its two inputs ranging over the node's left and right
//! subtrees. Three shapes matter in the paper:
//!
//! * **right-linear** vtrees (Fig. 10c) — SDDs structured by them *are*
//!   OBDDs;
//! * **balanced / dissection** vtrees — often exponentially smaller SDDs
//!   than any OBDD (Bova's separation, exercised by `exp05_succinctness`);
//! * **constrained** vtrees for `X|Y` (Fig. 10b) — unlock E-MAJSAT and
//!   MAJMAJSAT in linear time on the compiled SDD \[61\].
//!
//! The tree is an immutable arena ([`Vtree`]) with O(1) ancestor tests via
//! in-order leaf intervals and O(depth) LCA.

use trl_core::{Var, VarSet};

/// Index of a node within a [`Vtree`] arena.
pub type VtreeNodeId = usize;

#[derive(Clone, Debug)]
enum Node {
    Leaf(Var),
    Internal {
        left: VtreeNodeId,
        right: VtreeNodeId,
    },
}

/// An immutable vtree over a set of variables.
#[derive(Clone, Debug)]
pub struct Vtree {
    nodes: Vec<Node>,
    parent: Vec<Option<VtreeNodeId>>,
    depth: Vec<u32>,
    /// In-order interval of leaf positions covered by each node.
    first: Vec<u32>,
    last: Vec<u32>,
    /// Leaf node of each variable (indexed by variable).
    leaf_of: Vec<Option<VtreeNodeId>>,
    /// Variables below each node.
    vars: Vec<VarSet>,
    root: VtreeNodeId,
}

impl Vtree {
    /// Builds a right-linear vtree over the given variable order: SDDs
    /// respecting it are OBDDs with that order (Fig. 10c).
    pub fn right_linear(order: &[Var]) -> Vtree {
        assert!(!order.is_empty(), "vtree needs at least one variable");
        Builder::default().build(&Shape::right_linear(order))
    }

    /// Builds a left-linear vtree over the given variable order.
    pub fn left_linear(order: &[Var]) -> Vtree {
        assert!(!order.is_empty(), "vtree needs at least one variable");
        Builder::default().build(&Shape::left_linear(order))
    }

    /// Builds a balanced vtree over the given variable order.
    pub fn balanced(order: &[Var]) -> Vtree {
        assert!(!order.is_empty(), "vtree needs at least one variable");
        Builder::default().build(&Shape::balanced(order))
    }

    /// Builds a constrained vtree for `bottom | top` (paper notation `X|Y`,
    /// Fig. 10b): the `top` variables hang as left leaves along the right
    /// spine, and a balanced subtree over the `bottom` variables terminates
    /// the spine. The terminating node is returned by
    /// [`Vtree::constrained_node`] as the node `u` whose variables are
    /// exactly `bottom`.
    pub fn constrained(top: &[Var], bottom: &[Var]) -> Vtree {
        assert!(
            !bottom.is_empty(),
            "constrained vtree needs bottom variables"
        );
        let mut shape = Shape::balanced(bottom);
        for &v in top.iter().rev() {
            shape = Shape::Internal(Box::new(Shape::Leaf(v)), Box::new(shape));
        }
        Builder::default().build(&shape)
    }

    /// Builds a vtree from an explicit [`Shape`].
    pub fn from_shape(shape: &Shape) -> Vtree {
        Builder::default().build(shape)
    }

    /// The root node.
    pub fn root(&self) -> VtreeNodeId {
        self.root
    }

    /// Number of nodes (leaves + internal).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of variables (= leaves).
    pub fn num_vars(&self) -> usize {
        self.leaf_of.iter().filter(|l| l.is_some()).count()
    }

    /// Whether `node` is a leaf, and if so for which variable.
    pub fn leaf_var(&self, node: VtreeNodeId) -> Option<Var> {
        match self.nodes[node] {
            Node::Leaf(v) => Some(v),
            Node::Internal { .. } => None,
        }
    }

    /// The left child of an internal node.
    pub fn left(&self, node: VtreeNodeId) -> VtreeNodeId {
        match self.nodes[node] {
            Node::Internal { left, .. } => left,
            Node::Leaf(_) => panic!("leaf has no children"),
        }
    }

    /// The right child of an internal node.
    pub fn right(&self, node: VtreeNodeId) -> VtreeNodeId {
        match self.nodes[node] {
            Node::Internal { right, .. } => right,
            Node::Leaf(_) => panic!("leaf has no children"),
        }
    }

    /// Whether the node is internal.
    pub fn is_internal(&self, node: VtreeNodeId) -> bool {
        matches!(self.nodes[node], Node::Internal { .. })
    }

    /// The parent, if any.
    pub fn parent(&self, node: VtreeNodeId) -> Option<VtreeNodeId> {
        self.parent[node]
    }

    /// The leaf node of a variable. Panics if the variable is not in the tree.
    pub fn leaf_of_var(&self, var: Var) -> VtreeNodeId {
        self.leaf_of
            .get(var.index())
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("{var} is not in this vtree"))
    }

    /// Whether the variable appears in this vtree.
    pub fn contains_var(&self, var: Var) -> bool {
        var.index() < self.leaf_of.len() && self.leaf_of[var.index()].is_some()
    }

    /// The variables below `node`.
    pub fn vars(&self, node: VtreeNodeId) -> &VarSet {
        &self.vars[node]
    }

    /// Whether `anc` is an ancestor of `node` (a node is its own ancestor).
    pub fn is_ancestor(&self, anc: VtreeNodeId, node: VtreeNodeId) -> bool {
        self.first[anc] <= self.first[node] && self.last[node] <= self.last[anc]
    }

    /// Whether `anc` is a *strict* ancestor of `node`.
    pub fn is_strict_ancestor(&self, anc: VtreeNodeId, node: VtreeNodeId) -> bool {
        anc != node && self.is_ancestor(anc, node)
    }

    /// The lowest common ancestor of two nodes.
    pub fn lca(&self, mut a: VtreeNodeId, mut b: VtreeNodeId) -> VtreeNodeId {
        while self.depth[a] > self.depth[b] {
            a = self.parent[a].unwrap();
        }
        while self.depth[b] > self.depth[a] {
            b = self.parent[b].unwrap();
        }
        while a != b {
            a = self.parent[a].unwrap();
            b = self.parent[b].unwrap();
        }
        a
    }

    /// Whether `node` lies in the left subtree of internal node `of`.
    pub fn in_left_subtree(&self, node: VtreeNodeId, of: VtreeNodeId) -> bool {
        self.is_ancestor(self.left(of), node)
    }

    /// Whether `node` lies in the right subtree of internal node `of`.
    pub fn in_right_subtree(&self, node: VtreeNodeId, of: VtreeNodeId) -> bool {
        self.is_ancestor(self.right(of), node)
    }

    /// For a vtree built by [`Vtree::constrained`], the node `u` of
    /// Fig. 10(b): reached from the root by right children only, whose
    /// variables are exactly `bottom`. Returns the first right-spine node
    /// whose variable set equals `bottom`, if any.
    pub fn constrained_node(&self, bottom: &VarSet) -> Option<VtreeNodeId> {
        let mut n = self.root;
        loop {
            if self.vars(n) == bottom {
                return Some(n);
            }
            if self.is_internal(n) {
                n = self.right(n);
            } else {
                return None;
            }
        }
    }

    /// Nodes in post-order (children before parents).
    pub fn post_order(&self) -> Vec<VtreeNodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(self.root, false)];
        while let Some((n, expanded)) = stack.pop() {
            if expanded || !self.is_internal(n) {
                out.push(n);
            } else {
                stack.push((n, true));
                stack.push((self.right(n), false));
                stack.push((self.left(n), false));
            }
        }
        out
    }

    /// Whether the vtree is right-linear (every left child is a leaf).
    pub fn is_right_linear(&self) -> bool {
        (0..self.nodes.len()).all(|n| !self.is_internal(n) || !self.is_internal(self.left(n)))
    }

    /// The declarative [`Shape`] of this vtree — the inverse of
    /// [`Vtree::from_shape`]. Minimizers edit shapes (rotate, swap) and
    /// rebuild, keeping the arena immutable.
    pub fn to_shape(&self) -> Shape {
        self.shape_of(self.root)
    }

    fn shape_of(&self, node: VtreeNodeId) -> Shape {
        match self.nodes[node] {
            Node::Leaf(v) => Shape::Leaf(v),
            Node::Internal { left, right } => Shape::Internal(
                Box::new(self.shape_of(left)),
                Box::new(self.shape_of(right)),
            ),
        }
    }

    /// The in-order variable sequence (left-to-right leaves). For a
    /// right-linear vtree this is the OBDD variable order.
    pub fn variable_order(&self) -> Vec<Var> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            match self.nodes[n] {
                Node::Leaf(v) => out.push(v),
                Node::Internal { left, right } => {
                    stack.push(right);
                    stack.push(left);
                }
            }
        }
        out
    }
}

/// A declarative vtree shape, for constructing custom trees.
#[derive(Clone, Debug)]
pub enum Shape {
    /// A leaf holding one variable.
    Leaf(Var),
    /// An internal node with ordered children (left, right).
    Internal(Box<Shape>, Box<Shape>),
}

impl Shape {
    /// Right-linear shape over an order.
    pub fn right_linear(order: &[Var]) -> Shape {
        let (&head, rest) = order.split_first().expect("non-empty order");
        if rest.is_empty() {
            Shape::Leaf(head)
        } else {
            Shape::Internal(
                Box::new(Shape::Leaf(head)),
                Box::new(Shape::right_linear(rest)),
            )
        }
    }

    /// Left-linear shape over an order.
    pub fn left_linear(order: &[Var]) -> Shape {
        let (&tail, rest) = order.split_last().expect("non-empty order");
        if rest.is_empty() {
            Shape::Leaf(tail)
        } else {
            Shape::Internal(
                Box::new(Shape::left_linear(rest)),
                Box::new(Shape::Leaf(tail)),
            )
        }
    }

    /// Balanced shape over an order.
    pub fn balanced(order: &[Var]) -> Shape {
        match order {
            [] => panic!("non-empty order required"),
            [v] => Shape::Leaf(*v),
            _ => {
                let mid = order.len() / 2;
                Shape::Internal(
                    Box::new(Shape::balanced(&order[..mid])),
                    Box::new(Shape::balanced(&order[mid..])),
                )
            }
        }
    }

    /// Number of internal nodes — the move targets of [`Shape::apply_move`].
    pub fn internal_count(&self) -> usize {
        match self {
            Shape::Leaf(_) => 0,
            Shape::Internal(l, r) => 1 + l.internal_count() + r.internal_count(),
        }
    }

    /// Applies `mv` at the `target`-th internal node (pre-order index),
    /// returning the rewritten shape — or `None` when the move does not
    /// apply there (rotating through a leaf child, or `target` out of
    /// range). The original shape is never mutated.
    pub fn apply_move(&self, target: usize, mv: VtreeMove) -> Option<Shape> {
        let mut counter = 0usize;
        self.apply_move_rec(target, mv, &mut counter)
    }

    fn apply_move_rec(&self, target: usize, mv: VtreeMove, counter: &mut usize) -> Option<Shape> {
        let Shape::Internal(l, r) = self else {
            return None;
        };
        let here = *counter;
        *counter += 1;
        if here == target {
            return mv.apply(l, r);
        }
        // Recurse left first (pre-order); only one subtree can hold `target`.
        if let Some(new_left) = l.apply_move_rec(target, mv, counter) {
            return Some(Shape::Internal(Box::new(new_left), r.clone()));
        }
        if let Some(new_right) = r.apply_move_rec(target, mv, counter) {
            return Some(Shape::Internal(l.clone(), Box::new(new_right)));
        }
        None
    }
}

/// A local vtree edit: the three semantics-preserving structural moves of
/// SDD minimization (Choi & Darwiche 2013). Rotations re-associate a
/// nested pair; child swap flips one node's children. All three preserve
/// the leaf *set* (never the in-order sequence), so any SDD can be
/// re-compiled against the edited tree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VtreeMove {
    /// `(a, (b, c))` → `((a, b), c)`. Needs an internal right child.
    RotateLeft,
    /// `((a, b), c)` → `(a, (b, c))`. Needs an internal left child.
    RotateRight,
    /// `(a, b)` → `(b, a)`. Always applies at an internal node.
    SwapChildren,
}

impl VtreeMove {
    /// All moves, in the order minimizers enumerate them.
    pub const ALL: [VtreeMove; 3] = [
        VtreeMove::RotateLeft,
        VtreeMove::RotateRight,
        VtreeMove::SwapChildren,
    ];

    fn apply(self, left: &Shape, right: &Shape) -> Option<Shape> {
        match self {
            VtreeMove::RotateLeft => {
                let Shape::Internal(b, c) = right else {
                    return None;
                };
                Some(Shape::Internal(
                    Box::new(Shape::Internal(Box::new(left.clone()), b.clone())),
                    c.clone(),
                ))
            }
            VtreeMove::RotateRight => {
                let Shape::Internal(a, b) = left else {
                    return None;
                };
                Some(Shape::Internal(
                    a.clone(),
                    Box::new(Shape::Internal(b.clone(), Box::new(right.clone()))),
                ))
            }
            VtreeMove::SwapChildren => Some(Shape::Internal(
                Box::new(right.clone()),
                Box::new(left.clone()),
            )),
        }
    }
}

#[derive(Default)]
struct Builder {
    nodes: Vec<Node>,
    parent: Vec<Option<VtreeNodeId>>,
    depth: Vec<u32>,
    first: Vec<u32>,
    last: Vec<u32>,
    vars: Vec<VarSet>,
    leaf_of: Vec<Option<VtreeNodeId>>,
    next_pos: u32,
}

impl Builder {
    fn build(mut self, shape: &Shape) -> Vtree {
        let root = self.add(shape, 0);
        self.parent[root] = None;
        Vtree {
            nodes: self.nodes,
            parent: self.parent,
            depth: self.depth,
            first: self.first,
            last: self.last,
            leaf_of: self.leaf_of,
            vars: self.vars,
            root,
        }
    }

    fn add(&mut self, shape: &Shape, depth: u32) -> VtreeNodeId {
        match shape {
            Shape::Leaf(v) => {
                let id = self.push(Node::Leaf(*v), depth);
                let pos = self.next_pos;
                self.next_pos += 1;
                self.first[id] = pos;
                self.last[id] = pos;
                if v.index() >= self.leaf_of.len() {
                    self.leaf_of.resize(v.index() + 1, None);
                }
                assert!(
                    self.leaf_of[v.index()].is_none(),
                    "variable {v} appears twice in vtree"
                );
                self.leaf_of[v.index()] = Some(id);
                self.vars[id].insert(*v);
                id
            }
            Shape::Internal(l, r) => {
                let left = self.add(l, depth + 1);
                let right = self.add(r, depth + 1);
                let id = self.push(Node::Internal { left, right }, depth);
                self.parent[left] = Some(id);
                self.parent[right] = Some(id);
                self.first[id] = self.first[left];
                self.last[id] = self.last[right];
                let mut vs = self.vars[left].clone();
                vs.union_with(&self.vars[right]);
                self.vars[id] = vs;
                id
            }
        }
    }

    fn push(&mut self, node: Node, depth: u32) -> VtreeNodeId {
        let id = self.nodes.len();
        self.nodes.push(node);
        self.parent.push(None);
        self.depth.push(depth);
        self.first.push(0);
        self.last.push(0);
        self.vars.push(VarSet::new());
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(n: u32) -> Vec<Var> {
        (0..n).map(Var).collect()
    }

    #[test]
    fn right_linear_structure() {
        let t = Vtree::right_linear(&vars(4));
        assert!(t.is_right_linear());
        assert_eq!(t.num_vars(), 4);
        assert_eq!(t.node_count(), 7);
        assert_eq!(t.variable_order(), vars(4));
        // Root's left child is the leaf of x0.
        assert_eq!(t.leaf_var(t.left(t.root())), Some(Var(0)));
    }

    #[test]
    fn left_linear_and_balanced() {
        let l = Vtree::left_linear(&vars(4));
        assert!(!l.is_right_linear());
        assert_eq!(l.variable_order(), vars(4));
        let b = Vtree::balanced(&vars(4));
        assert_eq!(b.variable_order(), vars(4));
        // Balanced over 4: root splits 2/2.
        assert_eq!(b.vars(b.left(b.root())).len(), 2);
    }

    #[test]
    fn single_variable_tree() {
        let t = Vtree::balanced(&vars(1));
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.leaf_var(t.root()), Some(Var(0)));
        assert!(t.is_right_linear());
    }

    #[test]
    fn ancestor_and_lca() {
        let t = Vtree::balanced(&vars(8));
        let root = t.root();
        let l0 = t.leaf_of_var(Var(0));
        let l7 = t.leaf_of_var(Var(7));
        assert!(t.is_ancestor(root, l0));
        assert!(t.is_ancestor(l0, l0));
        assert!(!t.is_strict_ancestor(l0, l0));
        assert!(!t.is_ancestor(l0, root));
        assert_eq!(t.lca(l0, l7), root);
        let l1 = t.leaf_of_var(Var(1));
        let lca01 = t.lca(l0, l1);
        assert!(t.is_strict_ancestor(lca01, l0));
        assert!(t.in_left_subtree(l0, lca01));
        assert!(t.in_right_subtree(l1, lca01));
        assert_ne!(lca01, root);
    }

    #[test]
    fn vars_per_node() {
        let t = Vtree::right_linear(&vars(3));
        let root = t.root();
        assert_eq!(t.vars(root).len(), 3);
        let right = t.right(root);
        assert_eq!(t.vars(right).len(), 2);
        assert!(t.vars(right).contains(Var(1)));
        assert!(!t.vars(right).contains(Var(0)));
    }

    #[test]
    fn constrained_vtree_has_bottom_node_on_right_spine() {
        let top = vars(3);
        let bottom: Vec<Var> = (3..7).map(Var).collect();
        let t = Vtree::constrained(&top, &bottom);
        let bottom_set: VarSet = bottom.iter().copied().collect();
        let u = t.constrained_node(&bottom_set).expect("node u exists");
        assert_eq!(t.vars(u), &bottom_set);
        // u is reached by right children only.
        let mut n = t.root();
        while n != u {
            n = t.right(n);
        }
        // Top variables are left leaves along the spine, in order.
        assert_eq!(t.leaf_var(t.left(t.root())), Some(Var(0)));
    }

    #[test]
    fn post_order_is_children_first() {
        let t = Vtree::balanced(&vars(5));
        let order = t.post_order();
        assert_eq!(order.len(), t.node_count());
        let position: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for n in 0..t.node_count() {
            if t.is_internal(n) {
                assert!(position[&t.left(n)] < position[&n]);
                assert!(position[&t.right(n)] < position[&n]);
            }
        }
        assert_eq!(*order.last().unwrap(), t.root());
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_variable_panics() {
        let shape = Shape::Internal(Box::new(Shape::Leaf(Var(0))), Box::new(Shape::Leaf(Var(0))));
        let _ = Vtree::from_shape(&shape);
    }

    /// In-order-insensitive leaf multiset of a shape.
    fn leaf_set(s: &Shape) -> Vec<Var> {
        let mut out = match s {
            Shape::Leaf(v) => vec![*v],
            Shape::Internal(l, r) => {
                let mut a = leaf_set(l);
                a.extend(leaf_set(r));
                a
            }
        };
        out.sort();
        out
    }

    #[test]
    fn to_shape_round_trips() {
        for t in [
            Vtree::balanced(&vars(7)),
            Vtree::right_linear(&vars(5)),
            Vtree::left_linear(&vars(4)),
        ] {
            let rebuilt = Vtree::from_shape(&t.to_shape());
            assert_eq!(rebuilt.node_count(), t.node_count());
            assert_eq!(rebuilt.variable_order(), t.variable_order());
        }
    }

    #[test]
    fn rotations_reassociate_and_invert() {
        // Right-linear (0,(1,(2,3))) rotated left at the root becomes
        // ((0,1),(2,3)); rotating that back right restores the original.
        let shape = Shape::right_linear(&vars(4));
        let rotated = shape.apply_move(0, VtreeMove::RotateLeft).unwrap();
        let t = Vtree::from_shape(&rotated);
        assert_eq!(t.vars(t.left(t.root())).len(), 2);
        assert_eq!(t.variable_order(), vars(4));
        let back = rotated.apply_move(0, VtreeMove::RotateRight).unwrap();
        let rt = Vtree::from_shape(&back);
        assert!(rt.is_right_linear());
        assert_eq!(rt.variable_order(), vars(4));
    }

    #[test]
    fn moves_preserve_leaf_set_everywhere() {
        let shape = Shape::balanced(&vars(9));
        let internals = shape.internal_count();
        assert_eq!(internals, 8);
        let expect = leaf_set(&shape);
        let mut applied = 0;
        for target in 0..internals {
            for mv in VtreeMove::ALL {
                if let Some(next) = shape.apply_move(target, mv) {
                    applied += 1;
                    assert_eq!(leaf_set(&next), expect, "{mv:?} at {target}");
                    assert_eq!(next.internal_count(), internals);
                    // The edited shape still builds a valid vtree.
                    let t = Vtree::from_shape(&next);
                    assert_eq!(t.num_vars(), 9);
                }
            }
        }
        // Child swap always applies; at least some rotations do too.
        assert!(applied > internals);
    }

    #[test]
    fn inapplicable_moves_return_none() {
        let pair = Shape::balanced(&vars(2)); // (0, 1): both children leaves
        assert!(pair.apply_move(0, VtreeMove::RotateLeft).is_none());
        assert!(pair.apply_move(0, VtreeMove::RotateRight).is_none());
        assert!(pair.apply_move(0, VtreeMove::SwapChildren).is_some());
        assert!(pair.apply_move(1, VtreeMove::SwapChildren).is_none());
        assert!(Shape::Leaf(Var(0))
            .apply_move(0, VtreeMove::SwapChildren)
            .is_none());
    }

    #[test]
    fn swap_children_flips_order_not_set() {
        let shape = Shape::balanced(&vars(4));
        let swapped = shape.apply_move(0, VtreeMove::SwapChildren).unwrap();
        let t = Vtree::from_shape(&swapped);
        assert_eq!(t.variable_order(), [Var(2), Var(3), Var(0), Var(1)]);
    }

    #[test]
    fn non_contiguous_variables_supported() {
        let t = Vtree::balanced(&[Var(5), Var(2), Var(9)]);
        assert_eq!(t.num_vars(), 3);
        assert!(t.contains_var(Var(9)));
        assert!(!t.contains_var(Var(0)));
        assert_eq!(t.leaf_var(t.leaf_of_var(Var(2))), Some(Var(2)));
    }
}
