//! E01 — Fig. 2: the medical Bayesian network and the four canonical
//! queries whose decision versions climb NP ⊆ PP ⊆ NP^PP ⊆ PP^PP.
//!
//! Every query is answered twice: by the dedicated algorithm (variable
//! elimination / enumeration) and by the reduction route (compiled
//! circuit), and the two must agree.

use trl_bayesnet::compiled::{map_value_sdd, sdp_sdd};
use trl_bayesnet::models::{medical, medical_vars::*};
use trl_bayesnet::{CompiledBn, EncodingStyle};
use trl_bench::{banner, check, row, section};

fn main() {
    banner(
        "E01",
        "Figure 2 (medical network; MPE/MAR/MAP/SDP ladder)",
        "the four BN queries reduce to circuit queries with identical answers",
    );
    let bn = medical();
    let compiled = CompiledBn::new(bn.clone(), EncodingStyle::LocalStructure);
    let mut all_ok = true;

    section("MPE (NP): most probable complete instantiation");
    let evidence = vec![];
    let (inst_ve, val_ve) = bn.mpe(&evidence);
    let (inst_c, val_c) = compiled.mpe(&evidence);
    let names = ["sex", "c", "T1", "T2", "AGREE"];
    let show = |inst: &[usize]| {
        inst.iter()
            .enumerate()
            .map(|(v, &x)| format!("{}={}", names[v], x))
            .collect::<Vec<_>>()
            .join(", ")
    };
    row("VE MPE", format!("{} (p = {val_ve:.6})", show(&inst_ve)));
    row("circuit MPE", format!("{} (p = {val_c:.6})", show(&inst_c)));
    all_ok &= check("MPE values agree", (val_ve - val_c).abs() < 1e-9);

    section("MAR (PP): per-variable marginals, as displayed in Fig. 2");
    let posts = compiled.posteriors(&evidence);
    for v in 0..bn.num_vars() {
        let ve = bn.posterior(v, &evidence);
        row(
            &format!("Pr({})", names[v]),
            format!(
                "circuit [{:.4}, {:.4}]   VE [{:.4}, {:.4}]",
                posts[v][0], posts[v][1], ve[0], ve[1]
            ),
        );
        all_ok &= (posts[v][0] - ve[0]).abs() < 1e-9;
    }
    all_ok &= check("all marginals agree (one derivative pass vs VE)", all_ok);

    section("MAR with evidence: both tests positive");
    let ev = vec![(T1, 1), (T2, 1)];
    let pc = compiled.posterior(C, &ev)[1];
    let pv = bn.posterior(C, &ev)[1];
    row("Pr(c | T1=+, T2=+) circuit", format!("{pc:.6}"));
    row("Pr(c | T1=+, T2=+) VE", format!("{pv:.6}"));
    all_ok &= check("conditional marginal agrees", (pc - pv).abs() < 1e-9);

    section("MAP (NP^PP): most probable (sex, c) given AGREE = 1");
    let ev = vec![(AGREE, 1)];
    let (map_inst, map_ve) = bn.map(&[SEX, C], &ev);
    let map_sdd = map_value_sdd(&bn, &[SEX, C], &ev);
    row(
        "VE MAP over {sex, c}",
        format!("sex={}, c={} (p = {map_ve:.6})", map_inst[0], map_inst[1]),
    );
    row("constrained-vtree SDD MAP value", format!("{map_sdd:.6}"));
    all_ok &= check("MAP values agree", (map_ve - map_sdd).abs() < 1e-9);

    section("SDP (PP^PP): operate if Pr(c | tests) ≥ 0.9 — Fig. 2's scenario");
    for threshold in [0.9, 0.5, 0.1] {
        let ve = bn.sdp(C, 1, threshold, &[T1, T2], &vec![]);
        let circuit = sdp_sdd(&bn, C, 1, threshold, &[T1, T2], &vec![]);
        row(
            &format!("SDP(T={threshold})"),
            format!("circuit {circuit:.6}   enumeration {ve:.6}"),
        );
        all_ok &= (ve - circuit).abs() < 1e-9;
    }
    all_ok &= check("SDP via constrained SDD agrees with enumeration", all_ok);

    println!();
    check("E01 overall", all_ok);
}
