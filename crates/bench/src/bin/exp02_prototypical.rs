//! E02 — Fig. 3: the four prototypical problems SAT, MAJSAT, E-MAJSAT,
//! MAJMAJSAT decided systematically by compilation into circuits of
//! increasing tractability, validated against brute force.

use trl_bench::{banner, check, random_3cnf, row, section, Rng};
use trl_compiler::{compile_sdd_constrained, DecisionDnnfCompiler};
use trl_core::{Assignment, Var};
use trl_prop::{Cnf, Solver};

fn brute_emaj(cnf: &Cnf, ny: usize) -> (u128, u128, u128) {
    // (max_y count_z, #y with strict z-majority, total z space)
    let n = cnf.num_vars();
    let nz = n - ny;
    let mut best = 0u128;
    let mut majority_y = 0u128;
    for ycode in 0..1u64 << ny {
        let mut count = 0u128;
        for zcode in 0..1u64 << nz {
            let mut a = Assignment::all_false(n);
            for b in 0..ny {
                a.set(Var(b as u32), ycode >> b & 1 == 1);
            }
            for b in 0..nz {
                a.set(Var((ny + b) as u32), zcode >> b & 1 == 1);
            }
            if cnf.eval(&a) {
                count += 1;
            }
        }
        best = best.max(count);
        if count * 2 > 1u128 << nz {
            majority_y += 1;
        }
    }
    (best, majority_y, 1u128 << nz)
}

fn main() {
    banner(
        "E02",
        "Figure 3 (SAT / MAJSAT / E-MAJSAT / MAJMAJSAT on a circuit)",
        "compiling into DNNF, d-DNNF, and constrained SDDs decides the \
         prototypical problems of NP, PP, NP^PP, PP^PP",
    );
    let mut rng = Rng::new(0xf1e2);
    let mut all_ok = true;

    for trial in 0..6 {
        let ny = 2 + trial % 3;
        let n = ny + 4 + trial % 2;
        let cnf = random_3cnf(&mut rng, n, n + 3 + trial);
        section(&format!(
            "instance {trial}: {n} variables ({ny} Y + {} Z), {} clauses",
            n - ny,
            cnf.clauses().len()
        ));

        // SAT (NP): decomposability suffices.
        let ddnnf = DecisionDnnfCompiler::default().compile(&cnf);
        let sat_circuit = ddnnf.sat_dnnf();
        let sat_dpll = Solver::new(&cnf).is_sat();
        row("SAT via DNNF / DPLL", format!("{sat_circuit} / {sat_dpll}"));
        all_ok &= sat_circuit == sat_dpll;

        // MAJSAT (PP): + determinism (+ smoothness) → linear counting.
        let count = ddnnf.model_count();
        let brute = Solver::new(&cnf).count_models() as u128;
        let majsat = count * 2 > 1u128 << n;
        row(
            "#SAT via d-DNNF / DPLL",
            format!("{count} / {brute}  (MAJSAT = {majsat})"),
        );
        all_ok &= count == brute;

        // E-MAJSAT and MAJMAJSAT (NP^PP, PP^PP): constrained vtrees.
        let y_vars: Vec<Var> = (0..ny as u32).map(Var).collect();
        let (m, f, u) = compile_sdd_constrained(&cnf, &y_vars);
        let (best_brute, majy_brute, z_total) = brute_emaj(&cnf, ny);
        let best = m.emajsat_count(f, u);
        let emajsat = best * 2 > z_total;
        row(
            "E-MAJSAT: max_y #z circuit / brute",
            format!("{best} / {best_brute}  (decision = {emajsat})"),
        );
        all_ok &= best == best_brute;

        let threshold = z_total / 2 + 1;
        let majy = m.majmajsat_count(f, u, threshold);
        let majmaj = majy * 2 > 1u128 << ny;
        row(
            "MAJMAJSAT: #y with z-majority circuit / brute",
            format!("{majy} / {majy_brute}  (decision = {majmaj})"),
        );
        all_ok &= majy == majy_brute;
        all_ok &= m.emajsat(f, u) == emajsat;
        all_ok &= m.majmajsat(f, u) == majmaj;
    }

    println!();
    check("E02 overall: all four problems decided correctly", all_ok);
}
