//! A circuit prepared for serving: smoothed once, queried many times.
//!
//! Every counting-style query in `trl-nnf` (`model_count`, `wmc`,
//! `wmc_marginals`, `max_weight`) smooths the circuit internally — correct,
//! but wasteful when the *same* circuit answers thousands of queries: the
//! smoothing copy dominates the single numeric pass that follows it.
//! [`PreparedCircuit`] hoists that work out of the query path, which is the
//! batch-amortization the executor's throughput numbers come from
//! (`BENCH_engine.json`).

use crate::executor::{Query, QueryAnswer};
use trl_nnf::{smooth, Circuit};

/// An immutable, shareable serving artifact: the compiled circuit plus its
/// smoothed form. Wrap it in an `Arc` and hand it to any number of
/// executor workers.
#[derive(Clone, Debug)]
pub struct PreparedCircuit {
    raw: Circuit,
    smoothed: Circuit,
}

impl PreparedCircuit {
    /// Prepares a compiled circuit for serving (smooths it once).
    pub fn new(raw: Circuit) -> Self {
        let smoothed = smooth(&raw);
        PreparedCircuit { raw, smoothed }
    }

    /// The circuit as compiled/loaded (not smoothed).
    pub fn raw(&self) -> &Circuit {
        &self.raw
    }

    /// The smoothed circuit the counting queries run on.
    pub fn smoothed(&self) -> &Circuit {
        &self.smoothed
    }

    /// Number of variables in the universe.
    pub fn num_vars(&self) -> usize {
        self.raw.num_vars()
    }

    /// Retained footprint in arena nodes (raw + smoothed), the unit the
    /// registry's eviction budget is denominated in.
    pub fn retained_nodes(&self) -> usize {
        self.raw.node_count() + self.smoothed.node_count()
    }

    /// Answers one query. Weighted queries require weights covering the
    /// circuit's universe (checked; see [`Query::validate`]).
    pub fn answer(&self, query: &Query) -> QueryAnswer {
        query
            .validate(self.num_vars())
            .expect("query validated against this circuit");
        match query {
            Query::Sat => QueryAnswer::Sat(self.raw.sat_dnnf()),
            Query::ModelCount => QueryAnswer::ModelCount(self.smoothed.model_count_presmoothed()),
            Query::Wmc(w) => QueryAnswer::Wmc(self.smoothed.wmc_presmoothed(w)),
            Query::Marginals(w) => {
                let (wmc, marginals) = self.smoothed.wmc_marginals_presmoothed(w);
                QueryAnswer::Marginals { wmc, marginals }
            }
            Query::MaxWeight(w) => QueryAnswer::MaxWeight(self.smoothed.max_weight_presmoothed(w)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trl_compiler::DecisionDnnfCompiler;
    use trl_nnf::LitWeights;
    use trl_prop::Cnf;

    #[test]
    fn answers_match_direct_queries() {
        let cnf = Cnf::parse_dimacs("p cnf 4 3\n1 2 0\n-1 3 0\n-2 -4 0\n").unwrap();
        let c = DecisionDnnfCompiler::default().compile(&cnf);
        let mut w = LitWeights::unit(4);
        w.set(trl_core::Var(1).positive(), 0.4);
        w.set(trl_core::Var(1).negative(), 0.6);
        let p = PreparedCircuit::new(c.clone());

        assert_eq!(p.answer(&Query::Sat), QueryAnswer::Sat(true));
        assert_eq!(
            p.answer(&Query::ModelCount),
            QueryAnswer::ModelCount(c.model_count())
        );
        assert_eq!(
            p.answer(&Query::Wmc(w.clone())),
            QueryAnswer::Wmc(c.wmc(&w))
        );
        let (wmc, marginals) = c.wmc_marginals(&w);
        assert_eq!(
            p.answer(&Query::Marginals(w.clone())),
            QueryAnswer::Marginals { wmc, marginals }
        );
        assert_eq!(
            p.answer(&Query::MaxWeight(w.clone())),
            QueryAnswer::MaxWeight(c.max_weight(&w))
        );
        assert_eq!(
            p.retained_nodes(),
            p.raw().node_count() + p.smoothed().node_count()
        );
    }
}
