//! The Bayesian network → weighted model counting encoding (§2.2, \[24\]).
//!
//! One Boolean *indicator* `λ_{X=x}` per variable/value with exactly-one
//! constraints, and one *parameter* variable per CPT entry with
//! `P ⇔ λ_x ∧ λ_{u₁} ∧ ⋯` (presence of θ in a joint-distribution row,
//! Fig. 4). Weights: indicators and negative parameter literals weigh 1;
//! positive parameter literals weigh their CPT entries. Then every model of
//! Δ corresponds to one network instantiation with weight equal to its
//! probability (expression (1) of the paper), so
//! `Pr(α) = WMC(Δ ∧ α)`.
//!
//! [`EncodingStyle::LocalStructure`] adds the refinements of \[10, 32\]:
//! zero parameters become plain clauses, one parameters vanish, and rows of
//! a CPT sharing a probability share one parameter variable (the
//! context-specific-independence refinement) — giving the compiler
//! exponentially less work on highly deterministic networks (`exp17`).

use crate::net::BayesNet;
use crate::ve::Evidence;
use trl_core::{Lit, Var};
use trl_nnf::LitWeights;
use trl_prop::Cnf;

/// Which encoding refinements to apply.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EncodingStyle {
    /// One parameter variable per CPT entry, full biconditional clauses.
    Baseline,
    /// 0/1-parameter shortcuts and equal-parameter sharing.
    #[default]
    LocalStructure,
}

/// The result of encoding a network.
pub struct BnEncoding {
    /// The CNF Δ.
    pub cnf: Cnf,
    /// Literal weights for WMC.
    pub weights: LitWeights,
    /// `indicators[v][x]` is the Boolean variable of `λ_{v=x}`.
    pub indicators: Vec<Vec<Var>>,
    /// The style used.
    pub style: EncodingStyle,
}

impl BnEncoding {
    /// Encodes a network.
    pub fn new(bn: &BayesNet, style: EncodingStyle) -> Self {
        let mut next = 0u32;
        let mut fresh = || {
            let v = Var(next);
            next += 1;
            v
        };
        let indicators: Vec<Vec<Var>> = (0..bn.num_vars())
            .map(|v| (0..bn.cardinality(v)).map(|_| fresh()).collect())
            .collect();

        // Collect clauses first; the variable universe grows as parameter
        // and auxiliary variables are allocated.
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        let mut weighted: Vec<(Var, f64)> = Vec::new();

        // Exactly-one over each variable's indicators.
        for ind in &indicators {
            clauses.push(ind.iter().map(|v| v.positive()).collect());
            for i in 0..ind.len() {
                for j in i + 1..ind.len() {
                    clauses.push(vec![ind[i].negative(), ind[j].negative()]);
                }
            }
        }

        for v in 0..bn.num_vars() {
            let parents = bn.parents(v).to_vec();
            let parent_cards: Vec<usize> = parents.iter().map(|&p| bn.cardinality(p)).collect();
            let n_configs: usize = parent_cards.iter().product();
            // Context cube of a row: λ_{v=x} ∧ λ_{u₁=c₁} ∧ ⋯
            let context = |config: usize, x: usize| -> Vec<Lit> {
                let mut lits = vec![indicators[v][x].positive()];
                let mut c = config;
                for k in (0..parents.len()).rev() {
                    let val = c % parent_cards[k];
                    c /= parent_cards[k];
                    lits.push(indicators[parents[k]][val].positive());
                }
                lits.reverse(); // parents first, then the child — cosmetic
                lits
            };

            match style {
                EncodingStyle::Baseline => {
                    for config in 0..n_configs {
                        for x in 0..bn.cardinality(v) {
                            let p = bn.cpt(v)[config * bn.cardinality(v) + x];
                            let theta = fresh();
                            weighted.push((theta, p));
                            let ctx = context(config, x);
                            // θ ⇒ each context literal.
                            for &l in &ctx {
                                clauses.push(vec![theta.negative(), l]);
                            }
                            // context ⇒ θ.
                            let mut big: Vec<Lit> = ctx.iter().map(|&l| !l).collect();
                            big.push(theta.positive());
                            clauses.push(big);
                        }
                    }
                }
                EncodingStyle::LocalStructure => {
                    // Group rows of this CPT by probability value.
                    let mut groups: Vec<(f64, Vec<(usize, usize)>)> = Vec::new();
                    for config in 0..n_configs {
                        for x in 0..bn.cardinality(v) {
                            let p = bn.cpt(v)[config * bn.cardinality(v) + x];
                            if p == 0.0 {
                                // Forbid the context outright.
                                let ctx = context(config, x);
                                clauses.push(ctx.iter().map(|&l| !l).collect());
                                continue;
                            }
                            if p == 1.0 {
                                continue; // weight 1: no variable needed
                            }
                            match groups.iter_mut().find(|(q, _)| *q == p) {
                                Some((_, rows)) => rows.push((config, x)),
                                None => groups.push((p, vec![(config, x)])),
                            }
                        }
                    }
                    for (p, rows) in groups {
                        let theta = fresh();
                        weighted.push((theta, p));
                        if rows.len() == 1 {
                            let (config, x) = rows[0];
                            let ctx = context(config, x);
                            for &l in &ctx {
                                clauses.push(vec![theta.negative(), l]);
                            }
                            let mut big: Vec<Lit> = ctx.iter().map(|&l| !l).collect();
                            big.push(theta.positive());
                            clauses.push(big);
                        } else {
                            // Shared parameter: θ ⇔ (row₁ ∨ ⋯ ∨ rowₖ) via
                            // one auxiliary per row (Tseitin-style; each
                            // network instantiation extends uniquely, so
                            // weighted counts are preserved).
                            let mut row_vars = Vec::with_capacity(rows.len());
                            for (config, x) in rows {
                                let r = fresh();
                                row_vars.push(r);
                                let ctx = context(config, x);
                                for &l in &ctx {
                                    clauses.push(vec![r.negative(), l]);
                                }
                                let mut big: Vec<Lit> = ctx.iter().map(|&l| !l).collect();
                                big.push(r.positive());
                                clauses.push(big);
                            }
                            // θ ⇔ ∨ rᵢ
                            for &r in &row_vars {
                                clauses.push(vec![theta.positive(), r.negative()]);
                            }
                            let mut big: Vec<Lit> = row_vars.iter().map(|r| r.positive()).collect();
                            big.push(theta.negative());
                            clauses.push(big);
                        }
                    }
                }
            }
        }

        let num_vars = next as usize;
        let mut cnf = Cnf::new(num_vars);
        for c in clauses {
            cnf.add_clause(c);
        }
        let mut weights = LitWeights::unit(num_vars);
        for (var, p) in weighted {
            weights.set(var.positive(), p);
        }
        BnEncoding {
            cnf,
            weights,
            indicators,
            style,
        }
    }

    /// Weights adjusted for evidence: indicators contradicting the evidence
    /// get weight 0, so `WMC = Pr(evidence)`.
    pub fn weights_with_evidence(&self, evidence: &Evidence) -> LitWeights {
        let mut w = self.weights.clone();
        for &(v, val) in evidence {
            for (x, &ind) in self.indicators[v].iter().enumerate() {
                if x != val {
                    w.set(ind.positive(), 0.0);
                }
            }
        }
        w
    }

    /// The indicator literal asserting `var = value`.
    pub fn indicator(&self, var: usize, value: usize) -> Lit {
        self.indicators[var][value].positive()
    }

    /// Decodes a model of Δ into a network instantiation (the values whose
    /// indicators are true).
    pub fn decode(&self, a: &trl_core::Assignment) -> Vec<usize> {
        self.indicators
            .iter()
            .map(|ind| {
                ind.iter()
                    .position(|v| a.value(*v))
                    .expect("exactly-one violated in model")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use trl_compiler::ModelCounter;
    use trl_prop::Solver;

    #[test]
    fn model_count_equals_instantiation_count() {
        // "The resulting Boolean formula Δ will have exactly eight models,
        //  which correspond to the network instantiations." (§2.2)
        let bn = models::abc();
        for style in [EncodingStyle::Baseline, EncodingStyle::LocalStructure] {
            let enc = BnEncoding::new(&bn, style);
            let count = Solver::new(&enc.cnf).count_models();
            assert_eq!(count, 8, "style {style:?}");
        }
    }

    #[test]
    fn model_weights_equal_joint_probabilities() {
        let bn = models::abc();
        for style in [EncodingStyle::Baseline, EncodingStyle::LocalStructure] {
            let enc = BnEncoding::new(&bn, style);
            for model in Solver::new(&enc.cnf).enumerate_models() {
                let inst = enc.decode(&model);
                let weight = enc.weights.weight_of(&model);
                let joint = bn.joint(&inst);
                assert!(
                    (weight - joint).abs() < 1e-12,
                    "style {style:?}: weight {weight} vs joint {joint} at {inst:?}"
                );
            }
        }
    }

    #[test]
    fn wmc_of_delta_is_one() {
        let bn = models::abc();
        let enc = BnEncoding::new(&bn, EncodingStyle::LocalStructure);
        let total = ModelCounter::default().wmc(&enc.cnf, &enc.weights);
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evidence_weights_give_marginals() {
        let bn = models::abc();
        let enc = BnEncoding::new(&bn, EncodingStyle::LocalStructure);
        let counter = ModelCounter::default();
        // Pr(B=1) via WMC vs VE.
        let w = enc.weights_with_evidence(&vec![(1, 1)]);
        let wmc = counter.wmc(&enc.cnf, &w);
        let ve = bn.pr_evidence(&vec![(1, 1)]);
        assert!((wmc - ve).abs() < 1e-12);
        // Joint evidence.
        let w = enc.weights_with_evidence(&vec![(0, 0), (2, 1)]);
        let wmc = counter.wmc(&enc.cnf, &w);
        let ve = bn.pr_evidence(&vec![(0, 0), (2, 1)]);
        assert!((wmc - ve).abs() < 1e-12);
    }

    #[test]
    fn deterministic_network_encodes_correctly() {
        // The medical network has a fully deterministic AGREE variable.
        let bn = models::medical();
        for style in [EncodingStyle::Baseline, EncodingStyle::LocalStructure] {
            let enc = BnEncoding::new(&bn, style);
            let counter = ModelCounter::default();
            let total = counter.wmc(&enc.cnf, &enc.weights);
            assert!((total - 1.0).abs() < 1e-9, "style {style:?}: {total}");
            let w = enc.weights_with_evidence(&vec![(4, 1)]);
            let wmc = counter.wmc(&enc.cnf, &w);
            let ve = bn.pr_evidence(&vec![(4, 1)]);
            assert!((wmc - ve).abs() < 1e-9, "style {style:?}");
        }
    }

    #[test]
    fn local_structure_produces_smaller_encoding_on_deterministic_nets() {
        let bn = models::medical();
        let base = BnEncoding::new(&bn, EncodingStyle::Baseline);
        let local = BnEncoding::new(&bn, EncodingStyle::LocalStructure);
        assert!(local.cnf.num_vars() < base.cnf.num_vars());
    }

    #[test]
    fn multivalued_network_round_trips() {
        let mut bn = BayesNet::new();
        let a = bn.add_var("A", 3, &[], vec![0.2, 0.3, 0.5]).unwrap();
        bn.add_var("B", 2, &[a], vec![0.9, 0.1, 0.5, 0.5, 0.2, 0.8])
            .unwrap();
        let enc = BnEncoding::new(&bn, EncodingStyle::LocalStructure);
        let count = Solver::new(&enc.cnf).count_models();
        assert_eq!(count, 6);
        let total = ModelCounter::default().wmc(&enc.cnf, &enc.weights);
        assert!((total - 1.0).abs() < 1e-12);
    }
}
