//! Workspace-wide error type.

use std::fmt;

/// Errors surfaced by the public APIs of the workspace crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A textual input (DIMACS, network file, dataset) failed to parse.
    Parse(String),
    /// An argument violated a documented precondition.
    Invalid(String),
    /// A circuit lacked a property required by the requested query
    /// (e.g. counting on a non-deterministic DNNF).
    MissingProperty(String),
    /// A resource limit (node budget, size cap) was exceeded.
    LimitExceeded(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Invalid(m) => write!(f, "invalid argument: {m}"),
            Error::MissingProperty(m) => write!(f, "missing circuit property: {m}"),
            Error::LimitExceeded(m) => write!(f, "limit exceeded: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = Error::Parse("bad header".into());
        assert_eq!(e.to_string(), "parse error: bad header");
        let e = Error::MissingProperty("determinism".into());
        assert!(e.to_string().contains("determinism"));
    }
}
