//! Clauses, CNF formulas, DIMACS I/O, conditioning, and unit propagation.

use trl_core::{Assignment, Error, Lit, PartialAssignment, Result, Var, VarSet};

/// A disjunction of literals, kept sorted and duplicate-free.
///
/// A clause containing complementary literals is a tautology; callers that
/// care (e.g. the compilers) detect this with [`Clause::is_tautology`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Builds a clause from literals (sorted, deduplicated).
    pub fn new(lits: impl IntoIterator<Item = Lit>) -> Self {
        let mut v: Vec<Lit> = lits.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Clause { lits: v }
    }

    /// The empty clause (the constant `false`).
    pub fn empty() -> Self {
        Clause { lits: Vec::new() }
    }

    /// The literals, sorted by code.
    pub fn literals(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether this is the empty (unsatisfiable) clause.
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Whether this is a unit clause.
    pub fn is_unit(&self) -> bool {
        self.lits.len() == 1
    }

    /// Whether the clause contains both polarities of some variable.
    pub fn is_tautology(&self) -> bool {
        self.lits.windows(2).any(|w| w[0].var() == w[1].var())
    }

    /// Whether the clause contains `lit`.
    pub fn contains(&self, lit: Lit) -> bool {
        self.lits.binary_search(&lit).is_ok()
    }

    /// Evaluates the clause under a total assignment.
    pub fn eval(&self, a: &Assignment) -> bool {
        self.lits.iter().any(|&l| a.satisfies(l))
    }

    /// The variables mentioned by the clause.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.lits.iter().map(|l| l.var())
    }
}

/// A CNF formula: a conjunction of clauses over variables `0..num_vars`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Clause>,
}

impl Cnf {
    /// An empty CNF (the constant `true`) over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Builds a CNF from clauses.
    pub fn from_clauses(num_vars: usize, clauses: impl IntoIterator<Item = Clause>) -> Self {
        let clauses: Vec<Clause> = clauses.into_iter().collect();
        debug_assert!(clauses
            .iter()
            .flat_map(|c| c.vars())
            .all(|v| v.index() < num_vars));
        Cnf { num_vars, clauses }
    }

    /// Number of variables (the variable universe is `0..num_vars`).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Adds a clause.
    pub fn push(&mut self, clause: Clause) {
        for v in clause.vars() {
            debug_assert!(v.index() < self.num_vars, "clause variable out of range");
        }
        self.clauses.push(clause);
    }

    /// Adds a clause given as raw literals.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        self.push(Clause::new(lits));
    }

    /// Whether the formula has no clauses (is valid).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Whether the formula contains the empty clause (is trivially false).
    pub fn has_empty_clause(&self) -> bool {
        self.clauses.iter().any(|c| c.is_empty())
    }

    /// Evaluates the formula under a total assignment.
    pub fn eval(&self, a: &Assignment) -> bool {
        self.clauses.iter().all(|c| c.eval(a))
    }

    /// The set of variables actually mentioned by clauses.
    pub fn mentioned_vars(&self) -> VarSet {
        self.clauses.iter().flat_map(|c| c.vars()).collect()
    }

    /// Conditions the CNF on a literal: satisfied clauses vanish, the
    /// opposite literal is removed from the rest. The variable universe is
    /// unchanged.
    pub fn condition(&self, lit: Lit) -> Cnf {
        let mut clauses = Vec::with_capacity(self.clauses.len());
        for c in &self.clauses {
            if c.contains(lit) {
                continue;
            }
            if c.contains(!lit) {
                clauses.push(Clause::new(
                    c.literals().iter().copied().filter(|&l| l != !lit),
                ));
            } else {
                clauses.push(c.clone());
            }
        }
        Cnf {
            num_vars: self.num_vars,
            clauses,
        }
    }

    /// Exhaustive unit propagation starting from the given assumptions.
    ///
    /// Returns the extended partial assignment, or `None` on conflict.
    /// The input CNF is not modified.
    pub fn propagate(&self, assumptions: &[Lit]) -> Option<PartialAssignment> {
        let mut pa = PartialAssignment::new(self.num_vars);
        let mut queue: Vec<Lit> = Vec::new();
        for &l in assumptions {
            match pa.eval(l) {
                Some(false) => return None,
                Some(true) => {}
                None => {
                    pa.assign(l);
                    queue.push(l);
                }
            }
        }
        // Simple fixed-point loop: re-scan clauses until no new units.
        // (The compilers keep their own watched structures; this entry point
        // serves the lightweight callers.)
        loop {
            let mut new_unit = None;
            'clauses: for c in &self.clauses {
                let mut unassigned = None;
                let mut count = 0;
                for &l in c.literals() {
                    match pa.eval(l) {
                        Some(true) => continue 'clauses,
                        Some(false) => {}
                        None => {
                            unassigned = Some(l);
                            count += 1;
                            if count > 1 {
                                continue 'clauses;
                            }
                        }
                    }
                }
                match (count, unassigned) {
                    (0, _) => return None, // all literals false
                    (1, Some(l)) => {
                        new_unit = Some(l);
                        break;
                    }
                    _ => unreachable!(),
                }
            }
            match new_unit {
                Some(l) => {
                    pa.assign(l);
                    queue.push(l);
                }
                None => break,
            }
        }
        Some(pa)
    }

    /// Parses a DIMACS CNF document.
    ///
    /// DIMACS numbers variables from 1; variable `i` becomes [`Var`] `i - 1`.
    ///
    /// Accepts the dialect quirks found in real benchmark suites: `c`
    /// comment lines interleaved anywhere (including after clauses), CR-LF
    /// line endings, clauses spanning lines or sharing a line, and the
    /// SATLIB footer convention — a `%` line ends the clause section and
    /// everything after it (conventionally a lone `0`) is ignored.
    pub fn parse_dimacs(text: &str) -> Result<Cnf> {
        let mut num_vars: Option<usize> = None;
        let mut declared_clauses: Option<usize> = None;
        let mut clauses = Vec::new();
        let mut current: Vec<Lit> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('%') {
                // SATLIB footer: the clause section is over.
                break;
            }
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            // A lone `0` after all declared clauses is the other half of the
            // SATLIB footer; don't read it as an empty clause.
            if line == "0" && current.is_empty() && declared_clauses == Some(clauses.len()) {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                let mut it = rest.split_whitespace();
                if it.next() != Some("cnf") {
                    return Err(Error::Parse("expected 'p cnf <vars> <clauses>'".into()));
                }
                let nv: usize = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| Error::Parse("bad variable count".into()))?;
                let nc: usize = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| Error::Parse("bad clause count".into()))?;
                num_vars = Some(nv);
                declared_clauses = Some(nc);
                continue;
            }
            let nv = num_vars.ok_or_else(|| Error::Parse("clause before 'p cnf' header".into()))?;
            for tok in line.split_whitespace() {
                let x: i64 = tok
                    .parse()
                    .map_err(|_| Error::Parse(format!("bad literal token '{tok}'")))?;
                if x == 0 {
                    clauses.push(Clause::new(current.drain(..)));
                } else {
                    let var = x.unsigned_abs() as usize - 1;
                    if var >= nv {
                        return Err(Error::Parse(format!(
                            "literal {x} out of range for {nv} variables"
                        )));
                    }
                    current.push(Var(var as u32).literal(x > 0));
                }
            }
        }
        if !current.is_empty() {
            return Err(Error::Parse("last clause not terminated by 0".into()));
        }
        let num_vars = num_vars.ok_or_else(|| Error::Parse("missing 'p cnf' header".into()))?;
        if let Some(nc) = declared_clauses {
            if nc != clauses.len() {
                return Err(Error::Parse(format!(
                    "header declared {nc} clauses, found {}",
                    clauses.len()
                )));
            }
        }
        Ok(Cnf { num_vars, clauses })
    }

    /// Builds the var→clause adjacency index for this formula.
    ///
    /// The compilers use this to discover connected components and to drive
    /// occurrence-based branching without rescanning the clause list.
    pub fn occurrences(&self) -> Occurrences {
        Occurrences::build(self)
    }

    /// Serializes to DIMACS.
    pub fn to_dimacs(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len()).unwrap();
        for c in &self.clauses {
            for &l in c.literals() {
                let x = l.var().index() as i64 + 1;
                write!(out, "{} ", if l.is_positive() { x } else { -x }).unwrap();
            }
            out.push_str("0\n");
        }
        out
    }
}

/// Var→clause adjacency in compressed sparse-row layout: for each variable,
/// the indices of the clauses that mention it (either polarity).
///
/// Built once per formula in two counting passes — no per-variable `Vec`s —
/// so it stays cheap even for the 50k-variable chain instances the compiler
/// regression tests exercise.
#[derive(Clone, Debug)]
pub struct Occurrences {
    starts: Vec<u32>,
    clauses: Vec<u32>,
}

impl Occurrences {
    /// Builds the index for `cnf`.
    pub fn build(cnf: &Cnf) -> Self {
        let n = cnf.num_vars();
        let mut starts = vec![0u32; n + 1];
        for c in cnf.clauses() {
            for v in c.vars() {
                starts[v.index() + 1] += 1;
            }
        }
        for i in 0..n {
            starts[i + 1] += starts[i];
        }
        let mut clauses = vec![0u32; starts[n] as usize];
        let mut cursor = starts.clone();
        for (ci, c) in cnf.clauses().iter().enumerate() {
            for v in c.vars() {
                let slot = &mut cursor[v.index()];
                clauses[*slot as usize] = ci as u32;
                *slot += 1;
            }
        }
        Occurrences { starts, clauses }
    }

    /// The indices of clauses mentioning `v`.
    pub fn of(&self, v: Var) -> &[u32] {
        let lo = self.starts[v.index()] as usize;
        let hi = self.starts[v.index() + 1] as usize;
        &self.clauses[lo..hi]
    }

    /// How many clauses mention `v`.
    pub fn degree(&self, v: Var) -> usize {
        self.of(v).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i32) -> Lit {
        Var(i.unsigned_abs() - 1).literal(i > 0)
    }

    #[test]
    fn clause_dedup_and_tautology() {
        let c = Clause::new([lit(1), lit(1), lit(-2)]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_tautology());
        let t = Clause::new([lit(1), lit(-1)]);
        assert!(t.is_tautology());
    }

    #[test]
    fn eval_matches_semantics() {
        // (x0 ∨ ¬x1) ∧ (x1 ∨ x2)
        let mut f = Cnf::new(3);
        f.add_clause([lit(1), lit(-2)]);
        f.add_clause([lit(2), lit(3)]);
        let sat: Vec<u64> = (0..8)
            .filter(|&code| f.eval(&Assignment::from_index(code, 3)))
            .collect();
        // models: x1=0 needs x2=1: 100,101,110? enumerate: value = bit i for var i.
        // clause1: x0 ∨ ¬x1; clause2: x1 ∨ x2.
        let expected: Vec<u64> = (0..8u64)
            .filter(|&c| {
                let x0 = c & 1 == 1;
                let x1 = c >> 1 & 1 == 1;
                let x2 = c >> 2 & 1 == 1;
                (x0 || !x1) && (x1 || x2)
            })
            .collect();
        assert_eq!(sat, expected);
    }

    #[test]
    fn condition_removes_and_shrinks() {
        let mut f = Cnf::new(2);
        f.add_clause([lit(1), lit(2)]);
        f.add_clause([lit(-1)]);
        let g = f.condition(lit(1));
        // clause (x0∨x1) satisfied, clause (¬x0) loses its literal → empty clause
        assert_eq!(g.clauses().len(), 1);
        assert!(g.has_empty_clause());
        let h = f.condition(lit(-1));
        assert_eq!(h.clauses().len(), 1);
        assert_eq!(h.clauses()[0], Clause::new([lit(2)]));
    }

    #[test]
    fn propagate_chains_units() {
        // x0, x0→x1 (¬x0∨x1), x1→x2
        let mut f = Cnf::new(3);
        f.add_clause([lit(1)]);
        f.add_clause([lit(-1), lit(2)]);
        f.add_clause([lit(-2), lit(3)]);
        let pa = f.propagate(&[]).unwrap();
        assert_eq!(pa.eval(lit(1)), Some(true));
        assert_eq!(pa.eval(lit(2)), Some(true));
        assert_eq!(pa.eval(lit(3)), Some(true));
    }

    #[test]
    fn propagate_detects_conflict() {
        let mut f = Cnf::new(2);
        f.add_clause([lit(1)]);
        f.add_clause([lit(-1), lit(2)]);
        f.add_clause([lit(-2)]);
        assert!(f.propagate(&[]).is_none());
        // also via assumptions
        let mut g = Cnf::new(1);
        g.add_clause([lit(1)]);
        assert!(g.propagate(&[lit(-1)]).is_none());
    }

    #[test]
    fn dimacs_round_trip() {
        let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let f = Cnf::parse_dimacs(text).unwrap();
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.clauses().len(), 2);
        let again = Cnf::parse_dimacs(&f.to_dimacs()).unwrap();
        assert_eq!(f, again);
    }

    #[test]
    fn dimacs_errors() {
        assert!(Cnf::parse_dimacs("1 2 0\n").is_err()); // no header
        assert!(Cnf::parse_dimacs("p cnf 1 1\n2 0\n").is_err()); // var out of range
        assert!(Cnf::parse_dimacs("p cnf 2 1\n1 2\n").is_err()); // unterminated
        assert!(Cnf::parse_dimacs("p cnf 2 5\n1 0\n").is_err()); // wrong count
    }

    #[test]
    fn occurrence_index_matches_clause_scan() {
        let f = Cnf::parse_dimacs("p cnf 4 3\n1 -2 0\n2 3 0\n-1 -3 4 0\n").unwrap();
        let occ = f.occurrences();
        for v in 0..4u32 {
            let expect: Vec<u32> = f
                .clauses()
                .iter()
                .enumerate()
                .filter(|(_, c)| c.vars().any(|u| u == Var(v)))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(occ.of(Var(v)), &expect[..], "var {v}");
            assert_eq!(occ.degree(Var(v)), expect.len());
        }
    }

    #[test]
    fn dimacs_interleaved_comments_after_clauses() {
        let text = "c head\np cnf 3 3\n1 2 0\nc between clauses\n-1 3 0\nc another\n-2 0\nc tail\n";
        let f = Cnf::parse_dimacs(text).unwrap();
        assert_eq!(f.clauses().len(), 3);
        assert_eq!(f.clauses()[1], Clause::new([lit(-1), lit(3)]));
    }

    #[test]
    fn dimacs_satlib_footer() {
        // SATLIB uf* files end with "%\n0\n" (and often a blank line).
        let text = "p cnf 3 2\n1 -2 0\n2 3 0\n%\n0\n\n";
        let f = Cnf::parse_dimacs(text).unwrap();
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.clauses().len(), 2);
        // Footer without the % line: a lone trailing 0.
        let g = Cnf::parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n0\n").unwrap();
        assert_eq!(g, f);
        // Junk after % is ignored, even unparsable junk.
        let h = Cnf::parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n%\nnot a clause\n").unwrap();
        assert_eq!(h, f);
        // But a lone 0 *before* the declared count is still an empty clause,
        // caught by the count check.
        assert!(Cnf::parse_dimacs("p cnf 3 2\n1 -2 0\n0\n2 3 0\n").is_err());
    }

    #[test]
    fn dimacs_crlf_line_endings() {
        let text = "c dos file\r\np cnf 2 2\r\n1 2 0\r\n-1 2 0\r\n";
        let f = Cnf::parse_dimacs(text).unwrap();
        assert_eq!(f.num_vars(), 2);
        assert_eq!(f.clauses().len(), 2);
        assert_eq!(f.clauses()[1], Clause::new([lit(-1), lit(2)]));
    }

    #[test]
    fn multiline_and_multi_clause_per_line() {
        let f = Cnf::parse_dimacs("p cnf 2 2\n1 0 -1\n2 0\n").unwrap();
        assert_eq!(f.clauses().len(), 2);
        assert_eq!(f.clauses()[1], Clause::new([lit(-1), lit(2)]));
    }
}
