//! Sentential Decision Diagrams (SDDs) \[28\].
//!
//! SDDs combine *structured decomposability* (every and-gate respects a
//! vtree node, Fig. 10) with the *sentential decision* property (Fig. 9):
//! each decision node is a multiplexer `(p₁∧s₁) ∨ ⋯ ∨ (pₖ∧sₖ)` whose primes
//! `pᵢ` form a partition — consistent, mutually exclusive, exhaustive — of
//! the assignments to the vtree node's left variables. Under any input
//! exactly one prime is high, so determinism holds by construction.
//!
//! What this buys, per the paper:
//! * **polytime apply** — conjoin/disjoin two SDDs in `O(s·t)`; negation in
//!   linear time (§3). Plain DNNFs cannot be conjoined in polytime under
//!   standard assumptions \[34\].
//! * **canonicity** — compressed and trimmed SDDs are unique per
//!   (function, vtree) \[28, 89\]; equivalence checks are handle comparisons.
//! * **succinctness** — SDDs subsume OBDDs (right-linear vtrees, Fig. 10c)
//!   and are exponentially more succinct \[5\]; `exp05_succinctness`
//!   demonstrates the separation.
//! * **the upper complexity classes** — with a *constrained* vtree
//!   (Fig. 10b), E-MAJSAT and MAJMAJSAT become linear-time traversals \[61\];
//!   see [`SddManager::emajsat_count`] and [`SddManager::majmajsat_count`].
//!
//! The manager ([`SddManager`]) owns the vtree and a unique table; all
//! handles ([`SddRef`]) are canonical within their manager.

pub mod convert;
pub mod manager;
pub mod queries;
pub mod spine;

pub use manager::{ApplyCacheStats, SddManager, SddRef};
