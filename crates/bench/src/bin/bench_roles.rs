//! Roles serving benchmark: closed-loop throughput and tail latency for
//! every role-2/role-3 query kind over the `trl-server` wire, written to
//! `BENCH_roles.json` at the repository root. Run with `cargo run
//! --release -p trl-bench --bin bench_roles`; pass `--smoke` for the
//! fast CI leg (shorter streams, same JSON shape).
//!
//! One server hosts all three artifact kinds at once — a PSDD learned
//! from weighted complete data, an s–t simple-path structured space, and
//! a CNF classifier — and a single blocking client then drives a
//! deterministic stream of each new query kind against its artifact.
//! Every wire answer is checked against the in-process executor's answer
//! for the same query (floats travel as IEEE-754 bit patterns, so
//! equality is exact), making the benchmark double as an end-to-end
//! bit-identity sweep across all seven kinds.

use std::sync::Arc;
use std::time::Instant;

use trl_bench::harness::LatencySummary;
use trl_bench::{banner, check, row, section, Rng};
use trl_core::{Assignment, PartialAssignment, Var};
use trl_engine::{Engine, Query, QueryAnswer};
use trl_nnf::LitWeights;
use trl_prop::Cnf;
use trl_server::{Client, Server, ServerConfig};

/// Queries per kind in the full run.
const STREAM: usize = 512;
/// Queries per kind under `--smoke`.
const SMOKE_STREAM: usize = 32;
/// Training examples drawn for the learned PSDD.
const TRAIN_EXAMPLES: usize = 24;

struct KindResult {
    kind: &'static str,
    queries: usize,
    qps: f64,
    latency: LatencySummary,
    mismatches: usize,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let stream = if smoke { SMOKE_STREAM } else { STREAM };

    banner(
        "bench_roles",
        "roles 2+3 serving: per-kind throughput + tail latency over TCP (BENCH_roles.json)",
        "every role query answered over the wire, bit-identical to in-process",
    );

    // An 8-variable CNF with enough models to sample training data and
    // classifier instances from; a 3x3-ish graph for the space.
    let cnf =
        Cnf::parse_dimacs("p cnf 8 6\n1 2 3 0\n-1 4 0\n-2 5 6 0\n-3 7 0\n-4 -8 7 0\n5 -6 8 0\n")
            .unwrap();
    let n = cnf.num_vars();
    let models = enumerate_models(&cnf);
    row("cnf models", models.len());
    assert!(models.len() >= 4, "instance needs a richer model pool");

    let (num_nodes, edges, s, t) = diamond_grid();
    let e = edges.len();

    let mut rng = Rng::new(0x5eed_0007);
    let data: Vec<(Assignment, f64)> = (0..TRAIN_EXAMPLES)
        .map(|_| {
            let m = models[rng.below(models.len())].clone();
            (m, 1.0 + rng.uniform() * 3.0)
        })
        .collect();
    let alpha = 1.0;

    // In-process ground truth engine and the served engine are distinct;
    // agreement below is pipeline determinism, not cache sharing.
    let reference = Engine::new(1 << 22, None);
    let (psdd_key, psdd) = reference.learn_psdd(&cnf, &data, alpha).expect("learn");
    let (space_key, space) = reference
        .compile_space(num_nodes, &edges, s, t)
        .expect("space");
    let (clf_key, clf) = reference.compile_classifier(&cnf);
    row(
        "artifacts",
        format!(
            "psdd {} nodes (train LL {:.3}), space {} nodes ({} paths), classifier {} nodes",
            psdd.node_count(),
            psdd.train_log_likelihood(),
            space.node_count(),
            space.path_count(),
            clf.node_count()
        ),
    );

    let engine = Arc::new(Engine::new(1 << 22, None));
    let handle = Server::bind("127.0.0.1:0", engine, ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let learned = client.learn_psdd(&cnf, &data, alpha).expect("wire learn");
    assert_eq!(learned.key, psdd_key, "content-keyed fingerprints drifted");
    let wire_space = client
        .compile_space(num_nodes as u32, &edges, s, t)
        .expect("wire space");
    assert_eq!(wire_space.key, space_key);
    let wire_clf = client.compile_classifier(&cnf).expect("wire classifier");
    assert_eq!(wire_clf.key, clf_key);

    // Deterministic per-kind query streams.
    let streams: Vec<(&'static str, u64, Vec<Query>)> = vec![
        (
            "psdd_log_likelihood",
            psdd_key,
            (0..stream)
                .map(|_| {
                    let k = 2 + rng.below(5);
                    Query::PsddLogLikelihood(
                        (0..k)
                            .map(|_| (models[rng.below(models.len())].clone(), 1.0 + rng.uniform()))
                            .collect(),
                    )
                })
                .collect(),
        ),
        (
            "psdd_marginal",
            psdd_key,
            (0..stream)
                .map(|_| Query::PsddMarginal(random_evidence(&mut rng, n, 2)))
                .collect(),
        ),
        (
            "space_count",
            space_key,
            (0..stream)
                .map(|_| Query::SpaceCount(random_evidence(&mut rng, e, 2)))
                .collect(),
        ),
        (
            "space_top",
            space_key,
            (0..stream)
                .map(|_| Query::SpaceTop(random_weights(&mut rng, e)))
                .collect(),
        ),
        (
            "sufficient_reason",
            clf_key,
            (0..stream)
                .map(|_| Query::SufficientReason(random_instance(&mut rng, n)))
                .collect(),
        ),
        (
            "decision_robustness",
            clf_key,
            (0..stream)
                .map(|_| Query::DecisionRobustness(random_instance(&mut rng, n)))
                .collect(),
        ),
        (
            "classifier_bias",
            clf_key,
            (0..stream)
                .map(|_| {
                    let k = 1 + rng.below(3);
                    let mut vars: Vec<Var> = (0..k).map(|_| Var(rng.below(n) as u32)).collect();
                    vars.sort_unstable();
                    vars.dedup();
                    Query::ClassifierBias(vars)
                })
                .collect(),
        ),
    ];

    let mut results = Vec::new();
    for (kind, key, queries) in streams {
        let artifact = reference.get(key).expect("reference artifact");
        let expected: Vec<QueryAnswer> = reference
            .run_artifact_batch(&artifact, queries.clone())
            .expect("reference batch")
            .into_iter()
            .map(|o| o.answer)
            .collect();

        let mut latencies_us = Vec::with_capacity(queries.len());
        let mut mismatches = 0usize;
        let start = Instant::now();
        for (query, expect) in queries.iter().zip(&expected) {
            let sent = Instant::now();
            let answer = client.query(key, query.clone()).expect("wire query");
            latencies_us.push(sent.elapsed().as_secs_f64() * 1e6);
            if answer != *expect {
                mismatches += 1;
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        let qps = queries.len() as f64 / elapsed;
        let latency = LatencySummary::from_us(&mut latencies_us);
        section(kind);
        row(
            "networked",
            format!(
                "{qps:.0} qps, p50 {:.1} us, p95 {:.1} us, p99 {:.1} us",
                latency.p50_us, latency.p95_us, latency.p99_us
            ),
        );
        results.push(KindResult {
            kind,
            queries: queries.len(),
            qps,
            latency,
            mismatches,
        });
    }
    handle.shutdown();

    section("criteria");
    let mismatches: usize = results.iter().map(|r| r.mismatches).sum();
    let mut ok = check(
        "every wire answer of every role kind is bit-identical to in-process",
        mismatches == 0,
    );
    ok &= check(
        "all seven role query kinds were served",
        results.len() == 7 && results.iter().all(|r| r.queries > 0),
    );

    let json = to_json(smoke, stream, &results, mismatches == 0);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_roles.json");
    std::fs::write(path, json).expect("write BENCH_roles.json");
    println!("\nwrote {path}");
    std::process::exit(if ok { 0 } else { 1 });
}

/// All satisfying complete assignments of a small CNF, by enumeration.
fn enumerate_models(cnf: &Cnf) -> Vec<Assignment> {
    let n = cnf.num_vars();
    assert!(n <= 20, "enumeration pool is for small universes");
    let mut models = Vec::new();
    for bits in 0u32..(1 << n) {
        let values: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        let a = Assignment::from_values(&values);
        let satisfied = cnf.clauses().iter().all(|c| {
            c.literals()
                .iter()
                .any(|l| a.value(l.var()) == l.is_positive())
        });
        if satisfied {
            models.push(a);
        }
    }
    models
}

/// A 6-node, 9-edge planar graph with many s-t simple paths.
fn diamond_grid() -> (usize, Vec<(u32, u32)>, u32, u32) {
    (
        6,
        vec![
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (2, 4),
            (3, 4),
            (3, 5),
            (4, 5),
            (1, 4),
        ],
        0,
        5,
    )
}

fn random_evidence(rng: &mut Rng, n: usize, max_lits: usize) -> PartialAssignment {
    let mut pa = PartialAssignment::new(n);
    for _ in 0..rng.below(max_lits + 1) {
        pa.assign(Var(rng.below(n) as u32).literal(rng.next_u64() & 1 == 0));
    }
    pa
}

fn random_weights(rng: &mut Rng, n: usize) -> LitWeights {
    let mut w = LitWeights::unit(n);
    for v in 0..n as u32 {
        let p = rng.uniform();
        w.set(Var(v).positive(), p);
        w.set(Var(v).negative(), 1.0 - p);
    }
    w
}

fn random_instance(rng: &mut Rng, n: usize) -> Assignment {
    let values: Vec<bool> = (0..n).map(|_| rng.next_u64() & 1 == 1).collect();
    Assignment::from_values(&values)
}

/// Renders the `BENCH_roles.json` document: one row per role query kind
/// with throughput and nearest-rank latency percentiles.
fn to_json(smoke: bool, stream: usize, results: &[KindResult], identical: bool) -> String {
    use std::fmt::Write;
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"bench_roles\",\n");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"queries_per_kind\": {stream},");
    let _ = writeln!(out, "  \"identical\": {identical},");
    out.push_str("  \"kinds\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"kind\": \"{}\", \"queries\": {}, \"net_qps\": {:.0}, \"latency\": {} }}",
            r.kind,
            r.queries,
            r.qps,
            r.latency.to_json_fragment()
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
