//! E17 — §2 and \[32\]: reduction-based inference wins when networks have an
//! abundance of 0/1 parameters and context-specific independence. Sweeps
//! network determinism and compares circuit sizes under the baseline vs
//! local-structure encodings, and circuit query time vs VE.

use trl_bayesnet::models::random_network;
use trl_bayesnet::{BnEncoding, CompiledBn, EncodingStyle};
use trl_bench::{banner, check, row, section, timed};
use trl_compiler::DecisionDnnfCompiler;

fn main() {
    banner(
        "E17",
        "§2 / [32] (reductions win under 0/1 parameters and CSI)",
        "as determinism grows, the local-structure encoding and its \
         compiled circuit shrink; answers stay exact vs VE",
    );
    let mut all_ok = true;

    section("determinism sweep: encoding and circuit sizes (n = 14 variables)");
    println!(
        "{:>12} {:>16} {:>16} {:>16} {:>16}",
        "determinism", "base enc vars", "local enc vars", "base circuit", "local circuit"
    );
    let mut sizes: Vec<(f64, usize, usize)> = Vec::new();
    for det in [0.0, 0.3, 0.6, 0.9] {
        let bn = random_network(421, 14, 3, det);
        let base = BnEncoding::new(&bn, EncodingStyle::Baseline);
        let local = BnEncoding::new(&bn, EncodingStyle::LocalStructure);
        let cbase = DecisionDnnfCompiler::default().compile(&base.cnf);
        let clocal = DecisionDnnfCompiler::default().compile(&local.cnf);
        println!(
            "{:>12.1} {:>16} {:>16} {:>16} {:>16}",
            det,
            base.cnf.num_vars(),
            local.cnf.num_vars(),
            cbase.edge_count(),
            clocal.edge_count()
        );
        sizes.push((det, cbase.edge_count(), clocal.edge_count()));
    }
    let low_ratio = sizes[0].2 as f64 / sizes[0].1 as f64;
    let high_ratio = sizes.last().unwrap().2 as f64 / sizes.last().unwrap().1 as f64;
    row(
        "local/baseline circuit ratio (det 0.0 → 0.9)",
        format!("{low_ratio:.2} → {high_ratio:.2}"),
    );
    all_ok &= check(
        "local-structure advantage grows with determinism",
        high_ratio < low_ratio,
    );
    all_ok &= check(
        "at high determinism the local circuit is ≥ 2× smaller",
        sizes.last().unwrap().1 as f64 >= 2.0 * sizes.last().unwrap().2 as f64,
    );

    section("exactness: circuit posteriors vs VE on a deterministic-heavy net");
    let bn = random_network(99, 10, 3, 0.7);
    let compiled = CompiledBn::new(bn.clone(), EncodingStyle::LocalStructure);
    let mut agree = true;
    let ev = vec![(3usize, 1usize)];
    if bn.pr_evidence(&ev) > 0.0 {
        let circuit_posts = compiled.posteriors(&ev);
        #[allow(clippy::needless_range_loop)] // v indexes parallel per-variable tables
        for v in 0..bn.num_vars() {
            let ve = bn.posterior(v, &ev);
            for val in 0..2 {
                agree &= (circuit_posts[v][val] - ve[val]).abs() < 1e-9;
            }
        }
    }
    all_ok &= check("all posteriors agree with VE", agree);

    section("repeated queries: compiled circuit vs VE (the practical win)");
    let bn = random_network(7, 14, 3, 0.6);
    let (compiled, t_compile) =
        timed(|| CompiledBn::new(bn.clone(), EncodingStyle::LocalStructure));
    let queries: Vec<Vec<(usize, usize)>> =
        (0..40).map(|q| vec![((q * 3 + 1) % 14, q % 2)]).collect();
    let (_, t_circuit) = timed(|| {
        for ev in &queries {
            if compiled.pr_evidence(ev) > 0.0 {
                let _ = compiled.posteriors(ev);
            }
        }
    });
    let (_, t_ve) = timed(|| {
        for ev in &queries {
            if bn.pr_evidence(ev) > 0.0 {
                #[allow(clippy::needless_range_loop)] // v indexes parallel per-variable tables
                for v in 0..bn.num_vars() {
                    let _ = bn.posterior(v, ev);
                }
            }
        }
    });
    row("one-time compilation", format!("{t_compile:.4}s"));
    row(
        &format!("{} full posterior sweeps on the circuit", queries.len()),
        format!("{t_circuit:.4}s"),
    );
    row(
        &format!("{} full posterior sweeps with VE", queries.len()),
        format!("{t_ve:.4}s"),
    );
    row(
        "query-time speedup",
        format!("{:.1}×", t_ve / t_circuit.max(1e-9)),
    );
    all_ok &= check("compiled queries are faster than VE", t_circuit < t_ve);

    println!();
    check("E17 overall", all_ok);
}
