//! Combinatorial and structured probability spaces (§4.1–4.2 of the paper).
//!
//! A *structured space* is the set of satisfying assignments of a Boolean
//! formula; a *combinatorial space* is the special case whose assignments
//! encode combinatorial objects. The paper's two running examples are both
//! here:
//!
//! * **routes** (Fig. 16): each map edge is a Boolean variable; valid
//!   simple `s`–`t` paths are compiled directly into a decision diagram by
//!   the frontier method (\[60\]'s Simpath family) — see [`simpath`];
//! * **rankings** (Fig. 17): `n²` variables `A_ij` ("item `i` at position
//!   `j`") with permutation constraints — see [`rankings`], with the
//!   dedicated Mallows-model baseline of \[36, 49\] in [`mallows`];
//! * **hierarchical maps** (Figs. 18–22): regions whose inner navigation
//!   becomes independent given the crossing edges, quantified by
//!   conditional PSDDs into a structured Bayesian network \[78, 79\] — see
//!   [`hiermap`].
//!
//! Compiled spaces feed `trl-psdd`: learn parameters from route/ranking
//! data, then reason in time linear in the circuit.

pub mod graph;
pub mod hiermap;
pub mod mallows;
pub mod rankings;
pub mod serve;
pub mod simpath;

pub use graph::{Graph, GridMap};
pub use mallows::Mallows;
pub use serve::PreparedSpace;
pub use simpath::compile_simple_paths;
