//! Boolean circuits in Negation Normal Form and their tractable subsets.
//!
//! NNF circuits (Fig. 5 of the paper) have and-gates, or-gates, and
//! inverters that feed only from variables — i.e. the internal nodes are
//! `∧`/`∨` over literals and constants. Plain NNF circuits are intractable;
//! the paper's §3 reviews how imposing properties unlocks the complexity
//! ladder:
//!
//! | property (circuit class)              | unlocked query            | class |
//! |---------------------------------------|---------------------------|-------|
//! | decomposability (DNNF)                | SAT in linear time        | NP    |
//! | + determinism (+smoothness) (d-DNNF)  | #SAT / WMC in linear time | PP    |
//! | + structure + sentential decision     | E-MAJSAT, MAJMAJSAT       | NP^PP, PP^PP (see `trl-sdd`) |
//!
//! This crate provides:
//! * [`Circuit`] — an arena-allocated NNF DAG with structural hashing
//!   ([`CircuitBuilder`]), evaluation, and conditioning;
//! * [`properties`] — polytime structural checks for decomposability,
//!   smoothness and structuredness, exhaustive determinism checking for
//!   test-sized circuits, and the smoothing transform;
//! * [`queries`] — the polytime queries themselves: SAT on DNNF, model
//!   counting (optionally under evidence) / weighted model counting
//!   (Fig. 8) / MPE / all-marginals on smooth d-DNNF, model enumeration,
//!   and minimum cardinality;
//! * [`kernel`] — the serving-grade evaluation kernels: the reachable
//!   arena linearized into a layer-ordered instruction tape
//!   ([`EvalTape`]), swept by scalar, lane-batched ([`LANES`] queries per
//!   scan), and layer-parallel kernels whose answers are bit-identical to
//!   the scalar [`queries`].

pub mod circuit;
pub mod kernel;
pub mod properties;
pub mod queries;
pub mod sample;
pub mod taxonomy;

pub use circuit::{Circuit, CircuitBuilder, NnfId, NnfNode};
pub use kernel::{EvalTape, LANES};
pub use properties::smooth;
pub use queries::LitWeights;
pub use sample::ModelSampler;
pub use taxonomy::{classify, CircuitClass};
