#!/usr/bin/env bash
# Lint + format gate. Run from the repo root (or any subdirectory):
#
#   ci/check.sh          # clippy (all targets, warnings are errors) + fmt
#   ci/check.sh --fix    # apply clippy suggestions and rustfmt in place
#
# The same commands run in CI; keep them byte-for-byte in sync.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix" ]]; then
    cargo clippy --workspace --all-targets --fix --allow-dirty --allow-staged -- -D warnings
    cargo fmt --all
else
    cargo clippy --workspace --all-targets -- -D warnings
    cargo fmt --all --check
fi

echo "ci/check.sh: OK"
