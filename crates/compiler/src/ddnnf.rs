//! CNF → Decision-DNNF by exhaustive DPLL with component caching.
//!
//! The compiler is the "trace" construction of \[38\]: run a DPLL search that
//! does not stop at the first model, record unit implications as conjoined
//! literals, split the residual CNF into variable-disjoint *components*
//! (conjoined decomposably), branch on a variable (the deterministic
//! decision or-gate `(x ∧ Δ|x) ∨ (¬x ∧ Δ|¬x)`), and cache compiled
//! components so shared subproblems compile once. This is exactly how
//! Dsharp arises from sharpSAT \[56, 88\].
//!
//! The search core uses the machinery of modern model counters:
//!
//! * **Two-watched-literal propagation.** Each clause of length ≥ 2 keeps
//!   two watched literals; assigning a literal only visits the clauses
//!   watching its negation. Watches need no restoration on backtracking.
//!   Global watches are sound under component decomposition: a clause
//!   outside the current component shares no unassigned variable with it,
//!   so it can never become unit while the component is being compiled.
//! * **Packed component signatures.** A component is keyed by its sorted
//!   clause-index list plus a 64-bit hash of its reduced literal content,
//!   computed in one pass over the component — no per-clause allocation,
//!   unlike re-materializing reduced clause sets. Distinct clause sets
//!   never collide (the index list is compared exactly); distinct reduced
//!   contents over the *same* clause set collide with probability ~2⁻⁶⁴,
//!   the standard sharpSAT/Dsharp trade. [`SignatureMode::Exact`] keeps
//!   the allocation-heavy exact keys for ablation, and debug builds
//!   shadow every packed entry with its exact key to detect collisions.
//! * **Dynamic branching.** The default [`Heuristic::Vsads`] scores a
//!   variable by clause activity (bumped on every conflict, periodically
//!   halved) plus its occurrence count in the current component —
//!   sharpSAT's VSADS. The seed's static max-occurrence rule and a naive
//!   first-unassigned rule remain as ablation baselines.
//! * **Adjacency-driven component discovery.** Components are found by a
//!   breadth-first sweep over the var→clause index
//!   ([`trl_prop::Occurrences`]) with epoch-stamped visited arrays, so
//!   discovery allocates nothing beyond the component lists themselves.
//!
//! The output [`Circuit`] is decomposable and deterministic **by
//! construction**, so every d-DNNF query of `trl-nnf` applies.

use std::hash::Hasher;
use std::time::{Duration, Instant};

use trl_core::hash::FxHasher;
use trl_core::{FxHashMap, Lit, Var};
use trl_nnf::{Circuit, CircuitBuilder, LitWeights, NnfId};
use trl_prop::{Cnf, Occurrences};

/// Component-cache configuration, an ablation knob of `exp15`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CacheMode {
    /// Cache compiled components keyed on their reduced clause sets.
    #[default]
    Components,
    /// No caching: pure search-tree trace (can be exponentially slower).
    None,
}

/// How cached components are keyed, an ablation knob of `exp15`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SignatureMode {
    /// Sorted clause-index list + 64-bit content hash. No per-clause
    /// allocation on probes; collisions are possible but astronomically
    /// unlikely (and checked in debug builds).
    #[default]
    Packed,
    /// The reduced clause sets themselves. Exact, but every probe
    /// materializes the component's clauses.
    Exact,
}

/// Branching heuristic, an ablation knob of `exp15`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Heuristic {
    /// VSADS: conflict-driven variable activity plus the occurrence count
    /// in the current component. Activities are bumped for the variables
    /// of every conflicting clause and halved every 128 conflicts.
    #[default]
    Vsads,
    /// The variable occurring most often in the component (ties broken
    /// toward the lowest index) — the seed compiler's static rule.
    MaxOccurrence,
    /// The lowest-indexed unassigned variable — the naive baseline.
    FirstUnassigned,
}

/// Counters describing one compilation run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompileStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Conflicts hit during unit propagation.
    pub conflicts: u64,
    /// Literals processed by the watched-literal propagator.
    pub propagations: u64,
    /// Component-cache hits.
    pub cache_hits: u64,
    /// Component-cache misses (each miss compiles a component).
    pub cache_misses: u64,
    /// Nodes in the finished circuit.
    pub nodes: usize,
    /// Edges in the finished circuit.
    pub edges: usize,
}

/// CNF → Decision-DNNF compiler.
#[derive(Clone, Copy, Debug, Default)]
pub struct DecisionDnnfCompiler {
    /// Cache configuration.
    pub cache: CacheMode,
    /// Component-key representation.
    pub signature: SignatureMode,
    /// Branching heuristic.
    pub heuristic: Heuristic,
}

/// Compilations over at least this many variables run on a dedicated
/// big-stack thread: the search recurses once per decision level, and deep
/// instances (e.g. 50k-variable chains) overflow the default stack.
const BIG_INSTANCE_VARS: usize = 5_000;
const COMPILE_STACK_BYTES: usize = 256 * 1024 * 1024;

impl DecisionDnnfCompiler {
    /// Creates a compiler with the given cache mode and default signature
    /// and heuristic.
    pub fn new(cache: CacheMode) -> Self {
        DecisionDnnfCompiler {
            cache,
            ..Self::default()
        }
    }

    /// Sets the component-key representation.
    pub fn with_signature(mut self, signature: SignatureMode) -> Self {
        self.signature = signature;
        self
    }

    /// Sets the branching heuristic.
    pub fn with_heuristic(mut self, heuristic: Heuristic) -> Self {
        self.heuristic = heuristic;
        self
    }

    /// Compiles a CNF into a Decision-DNNF circuit over the CNF's variable
    /// universe.
    pub fn compile(&self, cnf: &Cnf) -> Circuit {
        self.compile_with_stats(cnf).0
    }

    /// Compiles and reports search statistics.
    ///
    /// Large instances are compiled on a dedicated thread with a big stack
    /// (the search recurses per decision level), so callers never need to
    /// manage stack size themselves.
    pub fn compile_with_stats(&self, cnf: &Cnf) -> (Circuit, CompileStats) {
        if cnf.num_vars() < BIG_INSTANCE_VARS {
            return self.run(cnf);
        }
        std::thread::scope(|scope| {
            match std::thread::Builder::new()
                .name("ddnnf-compile".into())
                .stack_size(COMPILE_STACK_BYTES)
                .spawn_scoped(scope, || self.run(cnf))
            {
                Ok(handle) => handle.join().expect("compilation thread panicked"),
                // Thread spawn failed (resource limits): degrade to the
                // caller's stack rather than giving up.
                Err(_) => self.run(cnf),
            }
        })
    }

    fn run(&self, cnf: &Cnf) -> (Circuit, CompileStats) {
        // Phase split: setup (occurrence lists, watches), search (the
        // decision/propagation loop), emit (arena finalization). Four
        // clock reads per compilation — noise next to the search itself.
        let phase = Instant::now();
        let mut st = Compilation::new(cnf, *self);
        let setup = phase.elapsed();
        let phase = Instant::now();
        let root = st.compile_root();
        let search = phase.elapsed();
        let mut stats = st.stats;
        let phase = Instant::now();
        let circuit = st.builder.finish(root);
        let emit = phase.elapsed();
        stats.nodes = circuit.node_count();
        stats.edges = circuit.edge_count();
        record_compile_metrics(&stats, setup, search, emit);
        (circuit, stats)
    }
}

/// Publishes one finished compilation to the process-global metrics:
/// search counters accumulated as one batch of adds (the search loop
/// itself stays untouched), arena growth, and per-phase wall time.
fn record_compile_metrics(stats: &CompileStats, setup: Duration, search: Duration, emit: Duration) {
    trl_obs::counter!("compiler.compiles").inc();
    trl_obs::counter!("compiler.decisions").add(stats.decisions);
    trl_obs::counter!("compiler.conflicts").add(stats.conflicts);
    trl_obs::counter!("compiler.propagations").add(stats.propagations);
    trl_obs::counter!("compiler.cache_hits").add(stats.cache_hits);
    trl_obs::counter!("compiler.cache_misses").add(stats.cache_misses);
    trl_obs::counter!("compiler.arena_nodes").add(stats.nodes as u64);
    trl_obs::counter!("compiler.arena_edges").add(stats.edges as u64);
    trl_obs::histogram!("compiler.phase.setup_us").record(setup);
    trl_obs::histogram!("compiler.phase.search_us").record(search);
    trl_obs::histogram!("compiler.phase.emit_us").record(emit);
    trl_obs::histogram!("compiler.compile_us").record(setup + search + emit);
    trl_obs::record_span("compiler.setup", setup);
    trl_obs::record_span("compiler.search", search);
    trl_obs::record_span("compiler.emit", emit);
}

const UNSET: u8 = 0;
const FALSE: u8 = 1;
const TRUE: u8 = 2;

/// Exact component key: the sorted list of reduced clauses.
type ExactKey = Vec<Vec<Lit>>;

/// One packed-cache bucket: entries sharing a content hash, distinguished
/// by their exact clause-index lists.
type PackedBucket = Vec<(Box<[u32]>, NnfId)>;

struct Compilation<'a> {
    cnf: &'a Cnf,
    cfg: DecisionDnnfCompiler,
    builder: CircuitBuilder,
    /// Current variable values ([`UNSET`] / [`FALSE`] / [`TRUE`]).
    value: Vec<u8>,
    /// Assigned literals in assignment order.
    trail: Vec<Lit>,
    /// Flattened clause literals; the slice for clause `ci` is
    /// `lits[clause_start[ci]..clause_start[ci + 1]]`, and for clauses of
    /// length ≥ 2 its first two slots hold the watched literals.
    lits: Vec<Lit>,
    clause_start: Vec<u32>,
    /// Per literal code: indices of clauses watching that literal.
    watchers: Vec<Vec<u32>>,
    /// Var→clause adjacency, built once per compilation.
    occ: Occurrences,
    initial_units: Vec<Lit>,
    trivially_false: bool,
    /// Epoch counter for the stamped scratch arrays below; each discovery
    /// or scoring pass bumps it instead of clearing the arrays.
    stamp: u64,
    var_mark: Vec<u64>,
    clause_mark: Vec<u64>,
    var_stack: Vec<u32>,
    /// VSADS activity per variable.
    activity: Vec<f64>,
    score_mark: Vec<u64>,
    score_count: Vec<u32>,
    /// Packed cache: content hash → entries whose clause-index lists are
    /// compared exactly. Probes allocate nothing; inserts clone the
    /// component's index list once.
    packed_cache: FxHashMap<u64, PackedBucket>,
    exact_cache: FxHashMap<ExactKey, NnfId>,
    /// Debug shadow of the packed cache: every packed entry also records
    /// its exact key, so a signature collision trips an assertion instead
    /// of silently reusing the wrong component.
    #[cfg(debug_assertions)]
    shadow: FxHashMap<(u64, Vec<u32>), ExactKey>,
    stats: CompileStats,
}

impl<'a> Compilation<'a> {
    fn new(cnf: &'a Cnf, cfg: DecisionDnnfCompiler) -> Self {
        let n = cnf.num_vars();
        let m = cnf.clauses().len();
        let total: usize = cnf.clauses().iter().map(|c| c.len()).sum();
        let mut lits = Vec::with_capacity(total);
        let mut clause_start = Vec::with_capacity(m + 1);
        clause_start.push(0u32);
        for c in cnf.clauses() {
            lits.extend_from_slice(c.literals());
            clause_start.push(lits.len() as u32);
        }
        let mut watchers = vec![Vec::new(); 2 * n];
        let mut initial_units = Vec::new();
        let mut trivially_false = false;
        for ci in 0..m {
            let s = clause_start[ci] as usize;
            let e = clause_start[ci + 1] as usize;
            match e - s {
                0 => trivially_false = true,
                1 => initial_units.push(lits[s]),
                _ => {
                    watchers[lits[s].code() as usize].push(ci as u32);
                    watchers[lits[s + 1].code() as usize].push(ci as u32);
                }
            }
        }
        Compilation {
            cnf,
            cfg,
            builder: CircuitBuilder::new(n),
            value: vec![UNSET; n],
            trail: Vec::new(),
            lits,
            clause_start,
            watchers,
            occ: cnf.occurrences(),
            initial_units,
            trivially_false,
            stamp: 0,
            var_mark: vec![0; n],
            clause_mark: vec![0; m],
            var_stack: Vec::new(),
            activity: vec![0.0; n],
            score_mark: vec![0; n],
            score_count: vec![0; n],
            packed_cache: FxHashMap::default(),
            exact_cache: FxHashMap::default(),
            #[cfg(debug_assertions)]
            shadow: FxHashMap::default(),
            stats: CompileStats::default(),
        }
    }

    fn lit_value(&self, l: Lit) -> u8 {
        match self.value[l.var().index()] {
            UNSET => UNSET,
            v => {
                if (v == TRUE) == l.is_positive() {
                    TRUE
                } else {
                    FALSE
                }
            }
        }
    }

    fn assign(&mut self, l: Lit) {
        self.value[l.var().index()] = if l.is_positive() { TRUE } else { FALSE };
        self.trail.push(l);
    }

    fn backtrack_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let l = self.trail.pop().unwrap();
            self.value[l.var().index()] = UNSET;
        }
    }

    /// Watched-literal propagation of everything on the trail from `from`
    /// onward. Returns `false` on conflict (caller must backtrack).
    fn propagate(&mut self, from: usize) -> bool {
        let mut qhead = from;
        while qhead < self.trail.len() {
            let l = self.trail[qhead];
            qhead += 1;
            self.stats.propagations += 1;
            let fl = !l;
            let fcode = fl.code() as usize;
            let mut i = 0;
            'watch: while i < self.watchers[fcode].len() {
                let ci = self.watchers[fcode][i] as usize;
                let start = self.clause_start[ci] as usize;
                let end = self.clause_start[ci + 1] as usize;
                // Normalize: the falsified watch sits at `start + 1`.
                if self.lits[start] == fl {
                    self.lits.swap(start, start + 1);
                }
                let first = self.lits[start];
                if self.lit_value(first) == TRUE {
                    i += 1;
                    continue;
                }
                for k in (start + 2)..end {
                    let cand = self.lits[k];
                    if self.lit_value(cand) != FALSE {
                        // Move the new watch into position and transfer the
                        // clause to its watch list.
                        self.lits.swap(start + 1, k);
                        self.watchers[cand.code() as usize].push(ci as u32);
                        self.watchers[fcode].swap_remove(i);
                        continue 'watch;
                    }
                }
                // All other literals false: unit on `first`, or conflict.
                match self.lit_value(first) {
                    FALSE => {
                        self.on_conflict(ci);
                        return false;
                    }
                    UNSET => self.assign(first),
                    _ => unreachable!(),
                }
                i += 1;
            }
        }
        true
    }

    fn on_conflict(&mut self, ci: usize) {
        self.stats.conflicts += 1;
        if self.cfg.heuristic != Heuristic::Vsads {
            return;
        }
        let s = self.clause_start[ci] as usize;
        let e = self.clause_start[ci + 1] as usize;
        for k in s..e {
            let vi = self.lits[k].var().index();
            self.activity[vi] += 1.0;
        }
        if self.stats.conflicts.is_multiple_of(128) {
            for a in &mut self.activity {
                *a *= 0.5;
            }
        }
    }

    /// Partitions the still-active clauses of `parent` into connected
    /// components by a breadth-first sweep over the var→clause adjacency.
    /// Component clause lists come out sorted (canonical for caching).
    fn components(&mut self, parent: &[u32], out: &mut Vec<Vec<u32>>) {
        self.stamp += 1;
        let stamp = self.stamp;
        let Compilation {
            occ,
            var_stack,
            clause_mark,
            var_mark,
            lits,
            clause_start,
            value,
            ..
        } = self;
        let satisfied = |ci: usize| {
            lits[clause_start[ci] as usize..clause_start[ci + 1] as usize]
                .iter()
                .any(|&l| {
                    let v = value[l.var().index()];
                    v != UNSET && (v == TRUE) == l.is_positive()
                })
        };
        for &seed_ci in parent {
            let seed_ci = seed_ci as usize;
            if clause_mark[seed_ci] == stamp {
                continue;
            }
            clause_mark[seed_ci] = stamp;
            if satisfied(seed_ci) {
                continue;
            }
            let mut comp: Vec<u32> = vec![seed_ci as u32];
            var_stack.clear();
            let s = clause_start[seed_ci] as usize;
            let e = clause_start[seed_ci + 1] as usize;
            for &l in &lits[s..e] {
                let vi = l.var().index();
                if value[vi] == UNSET && var_mark[vi] != stamp {
                    var_mark[vi] = stamp;
                    var_stack.push(vi as u32);
                }
            }
            while let Some(v) = var_stack.pop() {
                for &cj in occ.of(Var(v)) {
                    let cj = cj as usize;
                    if clause_mark[cj] == stamp {
                        continue;
                    }
                    clause_mark[cj] = stamp;
                    if satisfied(cj) {
                        continue;
                    }
                    comp.push(cj as u32);
                    let s = clause_start[cj] as usize;
                    let e = clause_start[cj + 1] as usize;
                    for &l in &lits[s..e] {
                        let vi = l.var().index();
                        if value[vi] == UNSET && var_mark[vi] != stamp {
                            var_mark[vi] = stamp;
                            var_stack.push(vi as u32);
                        }
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
    }

    /// 64-bit content hash of a component: clause indices plus their
    /// unassigned literals. One pass, no allocation. Each clause's literal
    /// contribution is a commutative sum of per-literal mixes, because
    /// watch swaps permute the stored literal order between probes of the
    /// same logical component.
    fn signature(&self, comp: &[u32]) -> u64 {
        fn mix64(x: u64) -> u64 {
            let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut h = FxHasher::default();
        h.write_usize(comp.len());
        for &ci in comp {
            h.write_u32(ci);
            let s = self.clause_start[ci as usize] as usize;
            let e = self.clause_start[ci as usize + 1] as usize;
            let mut content: u64 = 0;
            for &l in &self.lits[s..e] {
                if self.value[l.var().index()] == UNSET {
                    content = content.wrapping_add(mix64(l.code() as u64 + 1));
                }
            }
            h.write_u64(content);
        }
        h.finish()
    }

    /// The exact key: the component's reduced clauses, each re-sorted
    /// (watch swaps permute stored literal order), then sorted and deduped.
    fn exact_key(&self, comp: &[u32]) -> ExactKey {
        let mut key: ExactKey = comp
            .iter()
            .map(|&ci| {
                let s = self.clause_start[ci as usize] as usize;
                let e = self.clause_start[ci as usize + 1] as usize;
                let mut reduced: Vec<Lit> = self.lits[s..e]
                    .iter()
                    .copied()
                    .filter(|&l| self.value[l.var().index()] == UNSET)
                    .collect();
                reduced.sort_unstable();
                reduced
            })
            .collect();
        key.sort();
        key.dedup();
        key
    }

    /// Picks the branching variable for a component according to the
    /// configured heuristic.
    fn pick_branch(&mut self, comp: &[u32]) -> Var {
        self.stamp += 1;
        let stamp = self.stamp;
        let heuristic = self.cfg.heuristic;
        let Compilation {
            var_stack,
            score_mark,
            score_count,
            lits,
            clause_start,
            value,
            activity,
            ..
        } = self;
        var_stack.clear();
        for &ci in comp {
            let s = clause_start[ci as usize] as usize;
            let e = clause_start[ci as usize + 1] as usize;
            for &l in &lits[s..e] {
                let vi = l.var().index();
                if value[vi] != UNSET {
                    continue;
                }
                if score_mark[vi] != stamp {
                    score_mark[vi] = stamp;
                    score_count[vi] = 0;
                    var_stack.push(vi as u32);
                }
                score_count[vi] += 1;
            }
        }
        debug_assert!(
            !var_stack.is_empty(),
            "component has no unassigned variable"
        );
        let v = match heuristic {
            Heuristic::FirstUnassigned => *var_stack.iter().min().unwrap(),
            Heuristic::MaxOccurrence => *var_stack
                .iter()
                .max_by_key(|&&v| (score_count[v as usize], std::cmp::Reverse(v)))
                .unwrap(),
            Heuristic::Vsads => {
                let mut best_v = u32::MAX;
                let mut best_s = f64::NEG_INFINITY;
                for &v in var_stack.iter() {
                    let s = activity[v as usize] + score_count[v as usize] as f64;
                    if s > best_s || (s == best_s && v < best_v) {
                        best_s = s;
                        best_v = v;
                    }
                }
                best_v
            }
        };
        Var(v)
    }

    fn compile_root(&mut self) -> NnfId {
        if self.trivially_false {
            return self.builder.false_();
        }
        for l in std::mem::take(&mut self.initial_units) {
            match self.lit_value(l) {
                FALSE => return self.builder.false_(),
                TRUE => {}
                _ => self.assign(l),
            }
        }
        let all: Vec<u32> = (0..self.cnf.clauses().len() as u32).collect();
        self.compile_component(&all, 0, 0)
    }

    /// Compiles the sub-CNF given by `comp` under the current partial
    /// assignment. `qfrom` is the trail index of the first literal not yet
    /// propagated; `imp_from` is the trail index from which assignments
    /// count as this call's implied cube (and to which it backtracks).
    fn compile_component(&mut self, comp: &[u32], qfrom: usize, imp_from: usize) -> NnfId {
        if !self.propagate(qfrom) {
            self.backtrack_to(imp_from);
            return self.builder.false_();
        }
        let implied: Vec<Lit> = self.trail[imp_from..].to_vec();
        let mut comps = Vec::new();
        self.components(comp, &mut comps);
        let result = if comps.is_empty() {
            self.builder.cube(implied.iter().copied())
        } else {
            let mut parts: Vec<NnfId> = Vec::with_capacity(comps.len() + 1);
            parts.push(self.builder.cube(implied.iter().copied()));
            let mut failed = false;
            for sub_comp in &comps {
                let sub = self.compile_one(sub_comp);
                if self.builder_is_false(sub) {
                    failed = true;
                    break;
                }
                parts.push(sub);
            }
            if failed {
                self.builder.false_()
            } else {
                self.builder.and(parts)
            }
        };
        self.backtrack_to(imp_from);
        result
    }

    fn builder_is_false(&mut self, id: NnfId) -> bool {
        id == self.builder.false_()
    }

    /// Compiles a single connected component (no propagation pending).
    fn compile_one(&mut self, comp: &[u32]) -> NnfId {
        let pending = match self.probe_cache(comp) {
            Probe::Hit(id) => return id,
            Probe::Miss(pending) => pending,
        };
        let v = self.pick_branch(comp);
        self.stats.decisions += 1;
        let mark = self.trail.len();

        self.assign(v.positive());
        let pos_body = self.compile_component(comp, mark, mark + 1);
        self.backtrack_to(mark);

        self.assign(v.negative());
        let neg_body = self.compile_component(comp, mark, mark + 1);
        self.backtrack_to(mark);

        let pos_lit = self.builder.lit(v.positive());
        let neg_lit = self.builder.lit(v.negative());
        let pos = self.builder.and([pos_lit, pos_body]);
        let neg = self.builder.and([neg_lit, neg_body]);
        let id = self.builder.or([pos, neg]);
        self.store_cache(comp, pending, id);
        id
    }

    fn probe_cache(&mut self, comp: &[u32]) -> Probe {
        if self.cfg.cache != CacheMode::Components {
            return Probe::Miss(PendingKey::None);
        }
        match self.cfg.signature {
            SignatureMode::Packed => {
                let sig = self.signature(comp);
                if let Some(bucket) = self.packed_cache.get(&sig) {
                    if let Some(&(_, id)) = bucket.iter().find(|(cl, _)| &cl[..] == comp) {
                        self.stats.cache_hits += 1;
                        #[cfg(debug_assertions)]
                        self.assert_no_collision(sig, comp);
                        return Probe::Hit(id);
                    }
                }
                self.stats.cache_misses += 1;
                Probe::Miss(PendingKey::Packed(sig))
            }
            SignatureMode::Exact => {
                let key = self.exact_key(comp);
                if let Some(&id) = self.exact_cache.get(&key) {
                    self.stats.cache_hits += 1;
                    return Probe::Hit(id);
                }
                self.stats.cache_misses += 1;
                Probe::Miss(PendingKey::Exact(key))
            }
        }
    }

    fn store_cache(&mut self, comp: &[u32], pending: PendingKey, id: NnfId) {
        match pending {
            PendingKey::None => {}
            PendingKey::Packed(sig) => {
                #[cfg(debug_assertions)]
                self.shadow
                    .insert((sig, comp.to_vec()), self.exact_key(comp));
                self.packed_cache
                    .entry(sig)
                    .or_default()
                    .push((comp.to_vec().into_boxed_slice(), id));
            }
            PendingKey::Exact(key) => {
                self.exact_cache.insert(key, id);
            }
        }
    }

    /// On a packed-cache hit, verify against the shadow exact key that the
    /// hit is not a content-hash collision.
    #[cfg(debug_assertions)]
    fn assert_no_collision(&self, sig: u64, comp: &[u32]) {
        if let Some(stored) = self.shadow.get(&(sig, comp.to_vec())) {
            assert_eq!(
                stored,
                &self.exact_key(comp),
                "packed component signature collision"
            );
        }
    }
}

enum Probe {
    Hit(NnfId),
    Miss(PendingKey),
}

enum PendingKey {
    None,
    Packed(u64),
    Exact(ExactKey),
}

/// A model counter in the compile-then-count architecture the paper
/// describes as the state of the art for (weighted) model counting.
#[derive(Default)]
pub struct ModelCounter {
    compiler: DecisionDnnfCompiler,
}

impl ModelCounter {
    /// A counter using the given compiler configuration.
    pub fn new(compiler: DecisionDnnfCompiler) -> Self {
        ModelCounter { compiler }
    }

    /// #SAT over the CNF's variable universe.
    pub fn count(&self, cnf: &Cnf) -> u128 {
        self.compiler.compile(cnf).model_count()
    }

    /// Weighted model count.
    pub fn wmc(&self, cnf: &Cnf, w: &LitWeights) -> f64 {
        self.compiler.compile(cnf).wmc(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trl_core::Assignment;
    use trl_nnf::properties;
    use trl_prop::Solver;

    fn lit(i: i32) -> Lit {
        Var(i.unsigned_abs() - 1).literal(i > 0)
    }

    #[test]
    fn compiles_equivalent_circuit() {
        let cnf = Cnf::parse_dimacs("p cnf 4 3\n1 2 0\n-1 3 0\n-2 -3 4 0\n").unwrap();
        let c = DecisionDnnfCompiler::default().compile(&cnf);
        for code in 0..16u64 {
            let a = Assignment::from_index(code, 4);
            assert_eq!(c.eval(&a), cnf.eval(&a), "at {code:04b}");
        }
    }

    #[test]
    fn output_is_decomposable_and_deterministic() {
        let cnf = Cnf::parse_dimacs("p cnf 5 4\n1 2 0\n-2 3 0\n4 5 0\n-4 -5 0\n").unwrap();
        let c = DecisionDnnfCompiler::default().compile(&cnf);
        assert!(properties::is_decomposable(&c));
        assert!(properties::is_deterministic_exhaustive(&c));
    }

    #[test]
    fn counts_match_dpll_baseline() {
        for dimacs in [
            "p cnf 3 2\n1 2 0\n-1 3 0\n",
            "p cnf 4 4\n1 2 0\n-1 -2 0\n3 4 0\n-3 -4 0\n",
            "p cnf 1 2\n1 0\n-1 0\n", // unsat
            "p cnf 3 0\n",            // valid
            "p cnf 6 3\n1 -2 3 0\n2 4 0\n-5 6 0\n",
        ] {
            let cnf = Cnf::parse_dimacs(dimacs).unwrap();
            let expected = Solver::new(&cnf).count_models() as u128;
            for mode in [CacheMode::Components, CacheMode::None] {
                let c = DecisionDnnfCompiler::new(mode).compile(&cnf);
                assert_eq!(c.model_count(), expected, "{dimacs:?} mode {mode:?}");
            }
        }
    }

    #[test]
    fn component_decomposition_produces_and_of_parts() {
        // Two independent blocks: (x0∨x1) and (x2∨x3). The compiler must
        // conjoin two separately compiled components rather than branching
        // across them — observable as a small circuit.
        let cnf = Cnf::parse_dimacs("p cnf 4 2\n1 2 0\n3 4 0\n").unwrap();
        let c = DecisionDnnfCompiler::default().compile(&cnf);
        assert_eq!(c.model_count(), 9);
        // With components, x0-branching never duplicates the x2/x3 block:
        // node count stays linear in the blocks.
        assert!(c.node_count() <= 14, "got {}", c.node_count());
    }

    #[test]
    fn caching_reuses_shared_components() {
        // A formula whose branches share a residual component.
        let mut cnf = Cnf::new(6);
        cnf.add_clause([lit(1), lit(2)]);
        cnf.add_clause([lit(-1), lit(2)]);
        cnf.add_clause([lit(3), lit(4)]);
        cnf.add_clause([lit(5), lit(6)]);
        let cached = DecisionDnnfCompiler::new(CacheMode::Components).compile(&cnf);
        let uncached = DecisionDnnfCompiler::new(CacheMode::None).compile(&cnf);
        assert_eq!(cached.model_count(), uncached.model_count());
        assert!(cached.node_count() <= uncached.node_count());
    }

    #[test]
    fn weighted_counting_through_the_counter() {
        let cnf = Cnf::parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        let mut w = LitWeights::unit(3);
        w.set(lit(1), 0.3);
        w.set(lit(-1), 0.7);
        let brute: f64 = (0..8u64)
            .map(|c| Assignment::from_index(c, 3))
            .filter(|a| cnf.eval(a))
            .map(|a| w.weight_of(&a))
            .sum();
        let got = ModelCounter::default().wmc(&cnf, &w);
        assert!((got - brute).abs() < 1e-12);
    }

    #[test]
    fn random_cnfs_agree_with_brute_force() {
        let mut state = 0x2468ace0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..40 {
            let n = 3 + (next() % 5) as usize;
            let m = 2 + (next() % 8) as usize;
            let mut cnf = Cnf::new(n);
            for _ in 0..m {
                let len = 1 + (next() % 3) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| Var((next() % n as u64) as u32).literal(next() % 2 == 0))
                    .collect();
                cnf.add_clause(lits);
            }
            let brute = (0..1u64 << n)
                .filter(|&c| cnf.eval(&Assignment::from_index(c, n)))
                .count() as u128;
            let circuit = DecisionDnnfCompiler::default().compile(&cnf);
            assert_eq!(circuit.model_count(), brute, "{}", cnf.to_dimacs());
            assert!(properties::is_decomposable(&circuit));
        }
    }

    #[test]
    fn tautological_clauses_are_harmless() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(1), lit(-1)]);
        cnf.add_clause([lit(2)]);
        let c = DecisionDnnfCompiler::default().compile(&cnf);
        assert_eq!(c.model_count(), 2);
    }

    #[test]
    fn signature_modes_agree() {
        let cnf =
            Cnf::parse_dimacs("p cnf 6 5\n1 2 0\n-1 3 0\n-2 -3 4 0\n4 5 0\n-5 6 0\n").unwrap();
        let expected = Solver::new(&cnf).count_models() as u128;
        for sig in [SignatureMode::Packed, SignatureMode::Exact] {
            let c = DecisionDnnfCompiler::default()
                .with_signature(sig)
                .compile(&cnf);
            assert_eq!(c.model_count(), expected, "signature {sig:?}");
        }
    }

    #[test]
    fn heuristics_agree_on_counts() {
        let cnf =
            Cnf::parse_dimacs("p cnf 6 5\n1 2 0\n-1 3 0\n-2 -3 4 0\n4 5 0\n-5 6 0\n").unwrap();
        let expected = Solver::new(&cnf).count_models() as u128;
        for h in [
            Heuristic::Vsads,
            Heuristic::MaxOccurrence,
            Heuristic::FirstUnassigned,
        ] {
            let c = DecisionDnnfCompiler::default()
                .with_heuristic(h)
                .compile(&cnf);
            assert_eq!(c.model_count(), expected, "heuristic {h:?}");
            assert!(properties::is_decomposable(&c), "heuristic {h:?}");
        }
    }

    #[test]
    fn stats_report_search_and_cache_activity() {
        // Branching on x0 implies x1 and x4 either way, so the clause
        // (¬x1∨x2∨x3) reduces to the same component {(x2∨x3)} — with the
        // same clause index — under both branches: a packed-cache hit.
        let cnf = Cnf::parse_dimacs("p cnf 5 5\n-1 2 0\n1 2 0\n-2 3 4 0\n1 5 0\n-1 5 0\n").unwrap();
        let expected = Solver::new(&cnf).count_models() as u128;
        let (circuit, stats) = DecisionDnnfCompiler::default().compile_with_stats(&cnf);
        assert_eq!(circuit.model_count(), expected);
        assert!(stats.decisions > 0);
        assert!(stats.cache_misses > 0);
        assert!(stats.propagations > 0);
        assert_eq!(stats.nodes, circuit.node_count());
        assert_eq!(stats.edges, circuit.edge_count());
        assert!(
            stats.cache_hits > 0,
            "shared component should hit: {stats:?}"
        );
    }

    #[test]
    fn unit_clause_conflicts_compile_to_false() {
        let cnf = Cnf::parse_dimacs("p cnf 2 3\n1 0\n-1 0\n2 0\n").unwrap();
        for mode in [CacheMode::Components, CacheMode::None] {
            let c = DecisionDnnfCompiler::new(mode).compile(&cnf);
            assert_eq!(c.model_count(), 0, "mode {mode:?}");
        }
    }
}
