//! Polytime queries on tractable NNF circuits.
//!
//! The table of §3: decomposability buys linear-time SAT; adding determinism
//! (and smoothness) buys linear-time model counting and weighted model
//! counting (Fig. 8), most-probable-explanation values, and — via one extra
//! derivative pass — *all* literal marginals at once \[23, 25\].
//!
//! Preconditions are the caller's responsibility and documented per query;
//! the compilers guarantee them by construction, and the `properties` module
//! can verify them for test-sized circuits.

use crate::circuit::{Circuit, NnfId, NnfNode};
use crate::properties::smooth;
use trl_core::{Assignment, Lit, PartialAssignment, Var};

/// Literal weights for weighted model counting: `W(x)` and `W(¬x)` per
/// variable. `#SAT` is the special case where every weight is 1 (§2.1).
/// Equality is bitwise per weight (IEEE semantics via `f64 == f64`), which
/// is what wire-protocol round-trip checks want.
#[derive(Clone, Debug, PartialEq)]
pub struct LitWeights {
    pos: Vec<f64>,
    neg: Vec<f64>,
}

impl LitWeights {
    /// Unit weights over `n` variables (WMC = model count).
    pub fn unit(n: usize) -> Self {
        LitWeights {
            pos: vec![1.0; n],
            neg: vec![1.0; n],
        }
    }

    /// Sets the weight of one literal.
    pub fn set(&mut self, lit: Lit, w: f64) {
        let i = lit.var().index();
        if lit.is_positive() {
            self.pos[i] = w;
        } else {
            self.neg[i] = w;
        }
    }

    /// The weight of a literal.
    pub fn get(&self, lit: Lit) -> f64 {
        let i = lit.var().index();
        if lit.is_positive() {
            self.pos[i]
        } else {
            self.neg[i]
        }
    }

    /// Number of variables covered.
    pub fn num_vars(&self) -> usize {
        self.pos.len()
    }

    /// The weight of a complete assignment: the product of its literal
    /// weights (`W(x) = W(x_1)⋯W(x_n)`, §2.1).
    pub fn weight_of(&self, a: &Assignment) -> f64 {
        (0..a.len())
            .map(|i| self.get(a.literal_of(Var(i as u32))))
            .product()
    }
}

impl Circuit {
    /// Linear-time satisfiability on a **decomposable** circuit (DNNF) \[22\].
    pub fn sat_dnnf(&self) -> bool {
        let mut sat = vec![false; self.node_count()];
        for id in self.ids() {
            sat[id.index()] = match self.node(id) {
                NnfNode::True | NnfNode::Lit(_) => true,
                NnfNode::False => false,
                NnfNode::And(xs) => xs.iter().all(|x| sat[x.index()]),
                NnfNode::Or(xs) => xs.iter().any(|x| sat[x.index()]),
            };
        }
        sat[self.root().index()]
    }

    /// Model count over `0..num_vars` on a **decomposable, deterministic**
    /// circuit. Smooths internally (Fig. 8's propagation then applies
    /// verbatim: literals and `⊤` count 1, `⊥` counts 0, and-gates multiply,
    /// or-gates sum).
    pub fn model_count(&self) -> u128 {
        smooth(self).model_count_presmoothed()
    }

    /// Model count assuming the circuit is **already smooth** with the root
    /// covering the full universe — one bottom-up pass, no copies. The
    /// batched query executor (`trl-engine`) smooths once per circuit and
    /// serves every count in a batch through this entry point.
    pub fn model_count_presmoothed(&self) -> u128 {
        let mut val = vec![0u128; self.node_count()];
        for id in self.ids() {
            val[id.index()] = match self.node(id) {
                NnfNode::True | NnfNode::Lit(_) => 1,
                NnfNode::False => 0,
                NnfNode::And(xs) => xs.iter().map(|x| val[x.index()]).product(),
                NnfNode::Or(xs) => xs.iter().map(|x| val[x.index()]).sum(),
            };
        }
        val[self.root().index()]
    }

    /// Model count under evidence: the number of models (over the full
    /// universe) consistent with the given partial assignment. Requires
    /// decomposability and determinism; smooths internally. This is WMC
    /// with 0/1 weights, kept in exact `u128` arithmetic.
    pub fn model_count_under(&self, pa: &PartialAssignment) -> u128 {
        smooth(self).model_count_under_presmoothed(pa)
    }

    /// [`Circuit::model_count_under`] assuming the circuit is **already
    /// smooth** with the root covering the full universe — one bottom-up
    /// pass, no copies. Evidence literals decided against by `pa` count 0;
    /// everything else counts 1.
    pub fn model_count_under_presmoothed(&self, pa: &PartialAssignment) -> u128 {
        debug_assert!(pa.len() >= self.num_vars());
        let mut val = vec![0u128; self.node_count()];
        for id in self.ids() {
            val[id.index()] = match self.node(id) {
                NnfNode::True => 1,
                NnfNode::False => 0,
                NnfNode::Lit(l) => (pa.eval(*l) != Some(false)) as u128,
                NnfNode::And(xs) => xs.iter().map(|x| val[x.index()]).product(),
                NnfNode::Or(xs) => xs.iter().map(|x| val[x.index()]).sum(),
            };
        }
        val[self.root().index()]
    }

    /// Weighted model count on a **decomposable, deterministic** circuit
    /// (smooths internally).
    pub fn wmc(&self, w: &LitWeights) -> f64 {
        let s = smooth(self);
        s.wmc_presmoothed(w)
    }

    /// Weighted model count assuming the circuit is **already smooth** with
    /// the root covering the full universe — one bottom-up pass, no copies.
    /// This is the inner loop of the repeated-query benchmarks.
    pub fn wmc_presmoothed(&self, w: &LitWeights) -> f64 {
        debug_assert!(w.num_vars() >= self.num_vars());
        let mut val = vec![0.0f64; self.node_count()];
        for id in self.ids() {
            val[id.index()] = match self.node(id) {
                NnfNode::True => 1.0,
                NnfNode::False => 0.0,
                NnfNode::Lit(l) => w.get(*l),
                NnfNode::And(xs) => xs.iter().map(|x| val[x.index()]).product(),
                NnfNode::Or(xs) => xs.iter().map(|x| val[x.index()]).sum(),
            };
        }
        val[self.root().index()]
    }

    /// Maximizer pass on a **decomposable, deterministic** circuit: the
    /// maximum over complete assignments of the assignment weight, restricted
    /// to satisfying assignments, together with one maximizing assignment
    /// (the MPE computation once weights encode probabilities).
    ///
    /// Returns `None` if the circuit is unsatisfiable.
    pub fn max_weight(&self, w: &LitWeights) -> Option<(f64, Assignment)> {
        smooth(self).max_weight_presmoothed(w)
    }

    /// [`Circuit::max_weight`] assuming the circuit is **already smooth**
    /// with the root covering the full universe — no smoothing copy.
    pub fn max_weight_presmoothed(&self, w: &LitWeights) -> Option<(f64, Assignment)> {
        let s = self;
        let n = s.num_vars();
        let mut val = vec![f64::NEG_INFINITY; s.node_count()];
        for id in s.ids() {
            val[id.index()] = match s.node(id) {
                NnfNode::True => 1.0,
                NnfNode::False => f64::NEG_INFINITY,
                NnfNode::Lit(l) => w.get(*l),
                NnfNode::And(xs) => {
                    if xs.iter().any(|x| val[x.index()] == f64::NEG_INFINITY) {
                        f64::NEG_INFINITY
                    } else {
                        xs.iter().map(|x| val[x.index()]).product()
                    }
                }
                NnfNode::Or(xs) => xs
                    .iter()
                    .map(|x| val[x.index()])
                    .fold(f64::NEG_INFINITY, f64::max),
            };
        }
        if val[s.root().index()] == f64::NEG_INFINITY {
            return None;
        }
        // Top-down argmax extraction.
        let mut a = Assignment::all_false(n);
        let mut stack = vec![s.root()];
        while let Some(id) = stack.pop() {
            match s.node(id) {
                NnfNode::Lit(l) => a.set(l.var(), l.is_positive()),
                NnfNode::And(xs) => stack.extend(xs.iter().copied()),
                NnfNode::Or(xs) => {
                    let best = xs
                        .iter()
                        .copied()
                        .max_by(|x, y| val[x.index()].total_cmp(&val[y.index()]))
                        .expect("or-gate with no inputs survived smoothing");
                    stack.push(best);
                }
                NnfNode::True | NnfNode::False => {}
            }
        }
        Some((val[s.root().index()], a))
    }

    /// One upward + one downward (derivative) pass computing the WMC
    /// **and** every literal's marginal `WMC(Δ ∧ ℓ)` simultaneously — the
    /// "all marginals in linear time" result of \[23, 25\] that §3 footnotes.
    ///
    /// Requires decomposability and determinism; smooths internally.
    /// Returns `(wmc, marginals)` where `marginals[v] = (WMC(Δ∧v), WMC(Δ∧¬v))`.
    pub fn wmc_marginals(&self, w: &LitWeights) -> (f64, Vec<(f64, f64)>) {
        smooth(self).wmc_marginals_presmoothed(w)
    }

    /// [`Circuit::wmc_marginals`] assuming the circuit is **already smooth**
    /// with the root covering the full universe — no smoothing copy.
    pub fn wmc_marginals_presmoothed(&self, w: &LitWeights) -> (f64, Vec<(f64, f64)>) {
        let s = self;
        let n = s.num_vars();
        let mut val = vec![0.0f64; s.node_count()];
        for id in s.ids() {
            val[id.index()] = match s.node(id) {
                NnfNode::True => 1.0,
                NnfNode::False => 0.0,
                NnfNode::Lit(l) => w.get(*l),
                NnfNode::And(xs) => xs.iter().map(|x| val[x.index()]).product(),
                NnfNode::Or(xs) => xs.iter().map(|x| val[x.index()]).sum(),
            };
        }
        let mut der = vec![0.0f64; s.node_count()];
        der[s.root().index()] = 1.0;
        for id in s.ids().collect::<Vec<_>>().into_iter().rev() {
            let d = der[id.index()];
            if d == 0.0 {
                continue;
            }
            match s.node(id) {
                NnfNode::Or(xs) => {
                    for x in xs {
                        der[x.index()] += d;
                    }
                }
                NnfNode::And(xs) => {
                    // ∂(∏ v_i)/∂v_j = ∏_{i≠j} v_i, computed with prefix and
                    // suffix products so zero factors are handled exactly.
                    let k = xs.len();
                    let mut prefix = vec![1.0; k + 1];
                    for (i, x) in xs.iter().enumerate() {
                        prefix[i + 1] = prefix[i] * val[x.index()];
                    }
                    let mut suffix = 1.0;
                    for i in (0..k).rev() {
                        der[xs[i].index()] += d * prefix[i] * suffix;
                        suffix *= val[xs[i].index()];
                    }
                }
                _ => {}
            }
        }
        let mut marginals = vec![(0.0, 0.0); n];
        for id in s.ids() {
            if let NnfNode::Lit(l) = s.node(id) {
                let m = w.get(*l) * der[id.index()];
                let slot = &mut marginals[l.var().index()];
                if l.is_positive() {
                    slot.0 += m;
                } else {
                    slot.1 += m;
                }
            }
        }
        (val[s.root().index()], marginals)
    }

    /// Enumerates all models over `0..num_vars` of a **decomposable,
    /// deterministic** circuit. Output size is the model count; intended for
    /// small circuits and tests.
    pub fn enumerate_models(&self) -> Vec<Assignment> {
        assert!(
            self.num_vars() <= 24,
            "model enumeration limited to 24 variables"
        );
        let s = smooth(self);
        // cubes[i]: the set of models of node i, as literal vectors over the
        // node's scope.
        let mut cubes: Vec<Vec<Vec<Lit>>> = Vec::with_capacity(s.node_count());
        for id in s.ids() {
            let c = match s.node(id) {
                NnfNode::True => vec![vec![]],
                NnfNode::False => vec![],
                NnfNode::Lit(l) => vec![vec![*l]],
                NnfNode::And(xs) => {
                    let mut acc: Vec<Vec<Lit>> = vec![vec![]];
                    for x in xs {
                        let mut next =
                            Vec::with_capacity(acc.len() * cubes[x.index()].len().max(1));
                        for base in &acc {
                            for ext in &cubes[x.index()] {
                                let mut m = base.clone();
                                m.extend_from_slice(ext);
                                next.push(m);
                            }
                        }
                        acc = next;
                    }
                    acc
                }
                NnfNode::Or(xs) => {
                    let mut acc = Vec::new();
                    for x in xs {
                        acc.extend(cubes[x.index()].iter().cloned());
                    }
                    acc
                }
            };
            cubes.push(c);
        }
        let mut out: Vec<Assignment> = cubes[s.root().index()]
            .iter()
            .map(|lits| {
                let mut a = Assignment::all_false(s.num_vars());
                for &l in lits {
                    a.set(l.var(), l.is_positive());
                }
                a
            })
            .collect();
        out.sort_by_key(|a| {
            (0..a.len())
                .map(|i| (a.value(Var(i as u32)) as u64) << i)
                .sum::<u64>()
        });
        out.dedup();
        out
    }

    /// Minimum cardinality (number of `true` variables) over the models of a
    /// **decomposable** circuit, or `None` if unsatisfiable. Runs on the
    /// smoothed circuit so cardinality is measured over the full universe.
    pub fn min_cardinality(&self) -> Option<u64> {
        let s = smooth(self);
        const INF: u64 = u64::MAX / 4;
        let mut val = vec![INF; s.node_count()];
        for id in s.ids() {
            val[id.index()] = match s.node(id) {
                NnfNode::True => 0,
                NnfNode::False => INF,
                NnfNode::Lit(l) => l.is_positive() as u64,
                NnfNode::And(xs) => xs.iter().map(|x| val[x.index()]).sum::<u64>().min(INF),
                NnfNode::Or(xs) => xs.iter().map(|x| val[x.index()]).min().unwrap_or(INF),
            };
        }
        let v = val[s.root().index()];
        (v < INF).then_some(v)
    }
}

/// Re-exported for use in doc examples and benches: the id type.
pub type NodeId = NnfId;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use trl_prop::Formula;

    fn v(i: u32) -> Var {
        Var(i)
    }

    /// The paper's running circuit (Figs. 5–9, 13): the course-prerequisite
    /// constraint (P∨L) ∧ (A⇒P) ∧ (K⇒(A∨L)) over L=0, K=1, P=2, A=3,
    /// built here directly as a decomposable + deterministic circuit shaped
    /// like the SDD of Fig. 9 (multiplexer or-gates over prime/sub pairs).
    fn figure_circuit() -> Circuit {
        let mut b = CircuitBuilder::new(4);
        let (l, k, p, a) = (0u32, 1u32, 2u32, 3u32);
        let pos = |b: &mut CircuitBuilder, i: u32| b.lit(v(i).positive());
        let neg = |b: &mut CircuitBuilder, i: u32| b.lit(v(i).negative());

        // Decision over {L,K} (primes) with subs over {P,A}.
        // Models: see Fig. 14 — 9 satisfying inputs.
        let lk = {
            let lpos = pos(&mut b, l);
            let kpos = pos(&mut b, k);
            let lneg = neg(&mut b, l);
            let kneg = neg(&mut b, k);
            [
                b.and([lpos, kpos]),
                b.and([lpos, kneg]),
                b.and([lneg, kpos]),
                b.and([lneg, kneg]),
            ]
        };
        // Subs over {P, A}: given L,K the constraint on P,A is:
        //  L K   : P∨L true; A⇒P; K⇒(A∨L) true (L) → A⇒P
        //  L ¬K  : A⇒P
        //  ¬L K  : P ∧ A   (P∨L→P; K→A∨L→A; A⇒P ok)
        //  ¬L ¬K : P ∧ (A⇒P) = P
        let a_implies_p = {
            let ppos = pos(&mut b, p);
            let aneg = neg(&mut b, a);
            let apos = pos(&mut b, a);
            let pa = b.and([ppos, apos]);
            let na = b.and([ppos, aneg]);
            let pneg = neg(&mut b, p);
            let nn = b.and([pneg, aneg]);
            b.or([pa, na, nn])
        };
        let p_and_a = {
            let ppos = pos(&mut b, p);
            let apos = pos(&mut b, a);
            b.and([ppos, apos])
        };
        let p_only = {
            let ppos = pos(&mut b, p);
            let aneg = neg(&mut b, a);
            let apos = pos(&mut b, a);
            let x = b.and([ppos, apos]);
            let y = b.and([ppos, aneg]);
            b.or([x, y])
        };
        let e0 = b.and([lk[0], a_implies_p]);
        let e1 = b.and([lk[1], a_implies_p]);
        let e2 = b.and([lk[2], p_and_a]);
        let e3 = b.and([lk[3], p_only]);
        let root = b.or([e0, e1, e2, e3]);
        b.finish(root)
    }

    fn constraint_formula() -> Formula {
        let (l, k, p, a) = (
            Formula::var(v(0)),
            Formula::var(v(1)),
            Formula::var(v(2)),
            Formula::var(v(3)),
        );
        Formula::conj([
            p.clone().or(l.clone()),
            a.clone().implies(p.clone()),
            k.implies(a.or(l)),
        ])
    }

    #[test]
    fn figure_circuit_matches_constraint() {
        let c = figure_circuit();
        let f = constraint_formula();
        for code in 0..16u64 {
            let asg = Assignment::from_index(code, 4);
            assert_eq!(c.eval(&asg), f.eval(&asg), "at {code:04b}");
        }
        assert!(crate::properties::is_decomposable(&c));
        assert!(crate::properties::is_deterministic_exhaustive(&c));
    }

    #[test]
    fn fig8_model_count_is_nine_of_sixteen() {
        // The paper: "the circuit has 9 satisfying inputs out of 16".
        assert_eq!(figure_circuit().model_count(), 9);
    }

    #[test]
    fn sat_dnnf_on_satisfiable_and_unsat() {
        let c = figure_circuit();
        assert!(c.sat_dnnf());
        let mut b = CircuitBuilder::new(1);
        let f = b.false_();
        let c = b.finish(f);
        assert!(!c.sat_dnnf());
    }

    #[test]
    fn wmc_reduces_to_count_with_unit_weights() {
        let c = figure_circuit();
        let w = LitWeights::unit(4);
        assert_eq!(c.wmc(&w), 9.0);
    }

    #[test]
    fn wmc_matches_brute_force_on_nonuniform_weights() {
        let c = figure_circuit();
        let mut w = LitWeights::unit(4);
        w.set(v(0).positive(), 0.3);
        w.set(v(0).negative(), 0.7);
        w.set(v(2).positive(), 0.9);
        w.set(v(2).negative(), 0.1);
        let brute: f64 = (0..16u64)
            .map(|code| Assignment::from_index(code, 4))
            .filter(|a| c.eval(a))
            .map(|a| w.weight_of(&a))
            .sum();
        assert!((c.wmc(&w) - brute).abs() < 1e-12);
    }

    #[test]
    fn counting_without_smoothing_would_be_wrong() {
        // x0 ∨ (¬x0 ∧ x1): deterministic, decomposable, NOT smooth.
        // Raw propagation would give 1 + 1 = 2, but the true count is 3.
        let mut b = CircuitBuilder::new(2);
        let x0 = b.var(v(0));
        let nx0 = b.lit(v(0).negative());
        let x1 = b.var(v(1));
        let rhs = b.and([nx0, x1]);
        let r = b.or_raw([x0, rhs]);
        let c = b.finish(r);
        assert!(!crate::properties::is_smooth(&c));
        assert_eq!(c.model_count(), 3);
    }

    #[test]
    fn max_weight_finds_best_model() {
        let c = figure_circuit();
        let mut w = LitWeights::unit(4);
        // Make ¬L,¬K,P,¬A the heaviest satisfying assignment.
        w.set(v(0).negative(), 5.0);
        w.set(v(1).negative(), 3.0);
        w.set(v(3).negative(), 2.0);
        let (val, a) = c.max_weight(&w).unwrap();
        assert!(c.eval(&a));
        let brute = (0..16u64)
            .map(|code| Assignment::from_index(code, 4))
            .filter(|x| c.eval(x))
            .map(|x| w.weight_of(&x))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((val - brute).abs() < 1e-12);
        assert!((w.weight_of(&a) - brute).abs() < 1e-12);
    }

    #[test]
    fn max_weight_none_on_unsat() {
        let mut b = CircuitBuilder::new(2);
        let f = b.false_();
        let c = b.finish(f);
        assert!(c.max_weight(&LitWeights::unit(2)).is_none());
    }

    #[test]
    fn marginals_match_conditioning() {
        let c = figure_circuit();
        let mut w = LitWeights::unit(4);
        w.set(v(1).positive(), 0.25);
        w.set(v(1).negative(), 0.75);
        let (total, marg) = c.wmc_marginals(&w);
        assert!((total - c.wmc(&w)).abs() < 1e-12);
        #[allow(clippy::needless_range_loop)] // i is a variable index into parallel tables
        for i in 0..4 {
            for (positive, got) in [(true, marg[i].0), (false, marg[i].1)] {
                let brute: f64 = (0..16u64)
                    .map(|code| Assignment::from_index(code, 4))
                    .filter(|a| c.eval(a) && a.value(v(i as u32)) == positive)
                    .map(|a| w.weight_of(&a))
                    .sum();
                assert!(
                    (got - brute).abs() < 1e-12,
                    "marginal x{i}={positive}: got {got}, brute {brute}"
                );
            }
            // Marginals of a variable's two literals sum to the total.
            assert!((marg[i].0 + marg[i].1 - total).abs() < 1e-12);
        }
    }

    #[test]
    fn presmoothed_variants_match_smoothing_entry_points() {
        let c = figure_circuit();
        let s = smooth(&c);
        let mut w = LitWeights::unit(4);
        w.set(v(0).positive(), 0.2);
        w.set(v(0).negative(), 0.8);
        w.set(v(3).positive(), 1.5);
        assert_eq!(c.model_count(), s.model_count_presmoothed());
        assert_eq!(c.wmc(&w), s.wmc_presmoothed(&w));
        let (total, marg) = c.wmc_marginals(&w);
        let (total2, marg2) = s.wmc_marginals_presmoothed(&w);
        assert_eq!(total, total2);
        assert_eq!(marg, marg2);
        let (mw, ma) = c.max_weight(&w).unwrap();
        let (mw2, ma2) = s.max_weight_presmoothed(&w).unwrap();
        assert_eq!(mw, mw2);
        assert_eq!(ma, ma2);
    }

    #[test]
    fn enumerate_models_matches_truth_table() {
        let c = figure_circuit();
        let models = c.enumerate_models();
        assert_eq!(models.len(), 9);
        let expected: Vec<Assignment> = (0..16u64)
            .map(|code| Assignment::from_index(code, 4))
            .filter(|a| c.eval(a))
            .collect();
        assert_eq!(models, expected);
    }

    #[test]
    fn min_cardinality_on_paper_circuit() {
        // The lightest valid course combination: P only (¬L,¬K,P,¬A) → 1.
        assert_eq!(figure_circuit().min_cardinality(), Some(1));
        let mut b = CircuitBuilder::new(2);
        let f = b.false_();
        assert_eq!(b.finish(f).min_cardinality(), None);
    }
}
