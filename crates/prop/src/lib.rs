//! Propositional logic substrate.
//!
//! The paper's first role for logic (§2) reduces probabilistic queries to
//! questions on Boolean formulas — SAT, MAJSAT, #SAT, weighted model
//! counting. This crate provides the formula layer those reductions target:
//!
//! * [`Formula`] — a Boolean formula AST with evaluation and CNF conversion
//!   (both equivalence-preserving distribution and Tseitin encoding).
//! * [`Cnf`] / [`Clause`] — clausal form with DIMACS I/O, conditioning, and
//!   unit propagation.
//! * [`solver`] — a DPLL satisfiability solver, model enumerator, and
//!   brute-force counter. These are the *baselines*; the compilers in
//!   `trl-compiler` are the systematic alternative the paper advocates.
//! * [`TruthTable`] — dense Boolean functions used as oracles in tests and
//!   as the ground truth for prime-implicant computation.
//! * [`prime`] — prime implicants via iterated merging (Quine–McCluskey),
//!   the semantic basis of sufficient reasons (§5.1).

pub mod cnf;
pub mod formula;
pub mod gen;
pub mod prime;
pub mod solver;
pub mod truthtable;

pub use cnf::{Clause, Cnf, Occurrences};
pub use formula::Formula;
pub use prime::{prime_implicants, sufficient_reasons};
pub use solver::Solver;
pub use truthtable::TruthTable;
