//! Shared primitives for the `three-roles` workspace.
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! * [`Var`] and [`Lit`] — propositional variables and literals with a
//!   compact `u32` representation (literals use the LSB for polarity, the
//!   classic SAT-solver encoding).
//! * [`Assignment`] — a total instantiation of a variable set; and
//!   [`PartialAssignment`] — a three-valued map used by solvers and
//!   conditioning operations.
//! * [`Cube`] — a consistent conjunction of literals (a *term*), the currency
//!   of prime implicants and explanations.
//! * [`VarSet`] — a growable bitset over variables, used for circuit scopes,
//!   decomposability checks, and smoothing gaps.
//! * [`hash`] — an FxHash-style hasher plus `HashMap`/`HashSet` aliases.
//!   Unique tables and apply caches hash tiny integer keys millions of times;
//!   SipHash is measurably the wrong default there (see the workspace
//!   DESIGN.md for the justification).
//! * [`rng`] — a tiny deterministic SplitMix64 stream so randomized tests
//!   and workload generators need no external dependency (the workspace
//!   builds air-gapped).
//! * [`semiring`] — the evaluation semirings that make one circuit traversal
//!   serve many queries: counting, weighted counting, and max-product (MPE).

pub mod bitset;
pub mod error;
pub mod hash;
pub mod lit;
pub mod rng;
pub mod semiring;

pub use bitset::VarSet;
pub use error::{Error, Result};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use lit::{Assignment, Cube, Lit, PartialAssignment, Var};
pub use rng::SplitMix64;
pub use semiring::{MaxProd, Real, Semiring};
