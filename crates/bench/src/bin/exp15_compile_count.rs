//! E15 — §3: compilers as the engine of (weighted) model counting, and
//! Fig. 1's "compile once, query many" amortization. Includes the
//! component-caching ablation called out in DESIGN.md.

use trl_bench::{banner, check, random_3cnf, row, section, timed, Rng};
use trl_compiler::{CacheMode, DecisionDnnfCompiler, Heuristic, SignatureMode};
use trl_core::Var;
use trl_nnf::properties::smooth;
use trl_nnf::LitWeights;
use trl_prop::Solver;

/// A chain-structured CNF (n blocks, loosely coupled): the component
/// machinery's best case.
fn chain_cnf(blocks: usize) -> trl_prop::Cnf {
    let n = blocks * 3;
    let mut cnf = trl_prop::Cnf::new(n);
    for b in 0..blocks {
        let x = |i: usize| Var((b * 3 + i) as u32);
        cnf.add_clause([x(0).positive(), x(1).positive()]);
        cnf.add_clause([x(1).negative(), x(2).positive()]);
        if b + 1 < blocks {
            cnf.add_clause([x(2).negative(), Var((b * 3 + 3) as u32).positive()]);
        }
    }
    cnf
}

fn main() {
    banner(
        "E15",
        "§3 (compilers for #SAT/WMC) + Fig. 1 (compile once, query many)",
        "compile-then-count matches search-based counting; caching and \
         amortization change the constants dramatically",
    );
    let mut all_ok = true;
    let mut rng = Rng::new(0xbeef);

    section("correctness sweep: compiled counts = DPLL counts (random 3-CNF)");
    let mut agree = true;
    for _ in 0..8 {
        let n = 10 + rng.below(5);
        let m = (n as f64 * 3.5) as usize;
        let cnf = random_3cnf(&mut rng, n, m);
        let circuit = DecisionDnnfCompiler::default().compile(&cnf);
        agree &= circuit.model_count() == Solver::new(&cnf).count_models() as u128;
    }
    all_ok &= check("8/8 random instances agree", agree);

    section("component caching ablation");
    // Structural hashing already merges identical subcircuits, so the
    // *size* of the output matches; the cache's win is avoiding repeated
    // exploration — i.e. compile time.
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "n", "cached time", "uncached time", "count"
    );
    let mut cached_total = 0.0;
    let mut uncached_total = 0.0;
    for n in [14usize, 16, 18] {
        let cnf = random_3cnf(
            &mut Rng::new(n as u64 * 3 + 1),
            n,
            (n as f64 * 2.2) as usize,
        );
        let (cached, t_cached) =
            timed(|| DecisionDnnfCompiler::new(CacheMode::Components).compile(&cnf));
        let (uncached, t_uncached) =
            timed(|| DecisionDnnfCompiler::new(CacheMode::None).compile(&cnf));
        println!(
            "{:>8} {:>13.4}s {:>13.4}s {:>14}",
            n,
            t_cached,
            t_uncached,
            cached.model_count()
        );
        all_ok &= cached.model_count() == uncached.model_count();
        cached_total += t_cached;
        uncached_total += t_uncached;
    }
    all_ok &= check(
        "caching does not slow compilation down overall",
        cached_total <= uncached_total * 1.5,
    );
    // Chain CNFs demonstrate the component split itself: counts stay exact.
    for blocks in [8usize, 16] {
        let cnf = chain_cnf(blocks);
        let cached = DecisionDnnfCompiler::new(CacheMode::Components).compile(&cnf);
        let uncached = DecisionDnnfCompiler::new(CacheMode::None).compile(&cnf);
        all_ok &= cached.model_count() == uncached.model_count();
    }
    all_ok &= check("chain-CNF counts agree across cache modes", all_ok);

    section("cache signature ablation: packed (hashed) vs exact keys");
    // The packed signature hashes reduced clause content instead of
    // materializing it; the count must be identical, and probe cost drops.
    let mut sig_agree = true;
    let mut t_packed = 0.0;
    let mut t_exact = 0.0;
    for n in [14usize, 16, 18] {
        let cnf = random_3cnf(
            &mut Rng::new(n as u64 * 5 + 2),
            n,
            (n as f64 * 3.0) as usize,
        );
        let (packed, tp) = timed(|| {
            DecisionDnnfCompiler::default()
                .with_signature(SignatureMode::Packed)
                .compile(&cnf)
        });
        let (exact, te) = timed(|| {
            DecisionDnnfCompiler::default()
                .with_signature(SignatureMode::Exact)
                .compile(&cnf)
        });
        sig_agree &= packed.model_count() == exact.model_count();
        t_packed += tp;
        t_exact += te;
    }
    row("packed signatures total", format!("{t_packed:.4}s"));
    row("exact keys total", format!("{t_exact:.4}s"));
    all_ok &= check("packed and exact signatures count identically", sig_agree);

    section("branching heuristic ablation: VSADS vs static orders");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>14}",
        "n", "vsads", "max-occ", "first-var", "count"
    );
    let mut heur_agree = true;
    for n in [14usize, 16, 18] {
        let cnf = random_3cnf(
            &mut Rng::new(n as u64 * 7 + 3),
            n,
            (n as f64 * 3.0) as usize,
        );
        let (vsads, tv) = timed(|| {
            DecisionDnnfCompiler::default()
                .with_heuristic(Heuristic::Vsads)
                .compile(&cnf)
        });
        let (maxocc, tm) = timed(|| {
            DecisionDnnfCompiler::default()
                .with_heuristic(Heuristic::MaxOccurrence)
                .compile(&cnf)
        });
        let (first, tf) = timed(|| {
            DecisionDnnfCompiler::default()
                .with_heuristic(Heuristic::FirstUnassigned)
                .compile(&cnf)
        });
        let count = vsads.model_count();
        println!("{n:>8} {tv:>11.4}s {tm:>11.4}s {tf:>11.4}s {count:>14}");
        heur_agree &= count == maxocc.model_count() && count == first.model_count();
    }
    all_ok &= check("all heuristics count identically", heur_agree);

    section("amortization: one compilation, many weighted queries (Fig. 1)");
    let n = 14;
    let cnf = random_3cnf(&mut Rng::new(7), n, 40);
    let queries = 200;
    // Route A: compile once, evaluate many WMC queries on the circuit.
    let ((), compile_and_query) = timed(|| {
        let circuit = smooth(&DecisionDnnfCompiler::default().compile(&cnf));
        for q in 0..queries {
            let mut w = LitWeights::unit(n);
            w.set(Var((q % n) as u32).positive(), 0.5);
            let _ = circuit.wmc_presmoothed(&w);
        }
    });
    // Route B: re-run the search-based counter per query (weighted DPLL is
    // approximated by recompiling, the honest search-per-query cost).
    let ((), search_per_query) = timed(|| {
        for q in 0..queries {
            let mut w = LitWeights::unit(n);
            w.set(Var((q % n) as u32).positive(), 0.5);
            let circuit = DecisionDnnfCompiler::default().compile(&cnf);
            let _ = circuit.wmc(&w);
        }
    });
    row(
        &format!("compile-once + {queries} queries"),
        format!("{compile_and_query:.4}s"),
    );
    row(
        &format!("search per query × {queries}"),
        format!("{search_per_query:.4}s"),
    );
    row(
        "speedup",
        format!("{:.1}×", search_per_query / compile_and_query.max(1e-9)),
    );
    all_ok &= check(
        "amortized querying wins by ≥ 5×",
        search_per_query > 5.0 * compile_and_query,
    );

    section("compile+count vs plain DPLL counting (single query)");
    println!("{:>6} {:>14} {:>14}", "n", "compile+count", "DPLL count");
    for n in [12usize, 14, 16] {
        let cnf = random_3cnf(&mut Rng::new(n as u64), n, (n as f64 * 3.0) as usize);
        let (c1, t1) = timed(|| DecisionDnnfCompiler::default().compile(&cnf).model_count());
        let (c2, t2) = timed(|| Solver::new(&cnf).count_models() as u128);
        println!("{n:>6} {t1:>13.4}s {t2:>13.4}s");
        all_ok &= c1 == c2;
    }
    all_ok &= check("single-query counts agree at every size", all_ok);

    println!();
    check("E15 overall", all_ok);
}
