//! Pipelined serving: many version-3 frames in flight on one connection,
//! responses matched by id as they complete (possibly out of order),
//! per-frame typed failures that never sink the connection, and answers
//! bit-identical to direct in-process execution.

use std::sync::Arc;
use std::time::Duration;

use trl_compiler::DecisionDnnfCompiler;
use trl_core::{PartialAssignment, Var};
use trl_engine::{Engine, Executor, PreparedCircuit, Query, QueryAnswer};
use trl_nnf::LitWeights;
use trl_prop::Cnf;
use trl_server::{Client, Server, ServerConfig, WireError};

fn acceptance_cnf() -> Cnf {
    Cnf::parse_dimacs("p cnf 6 7\n1 2 0\n-1 3 0\n-2 -4 0\n4 5 0\n-5 6 0\n2 -6 0\n1 -3 5 0\n")
        .unwrap()
}

fn weights(n_vars: usize, salt: u32) -> LitWeights {
    let mut w = LitWeights::unit(n_vars);
    for v in 0..n_vars as u32 {
        w.set(Var(v).positive(), 0.25 + 0.05 * ((salt + v) % 10) as f64);
        w.set(Var(v).negative(), 0.75 - 0.05 * ((salt + v) % 10) as f64);
    }
    w
}

/// One frame's worth of mixed-kind queries.
fn frame_queries(n_vars: usize, salt: u32) -> Vec<Query> {
    let mut pa = PartialAssignment::new(n_vars);
    pa.assign(Var(salt % n_vars as u32).literal(salt.is_multiple_of(2)));
    vec![
        Query::Sat,
        Query::ModelCount,
        Query::ModelCountUnder(pa),
        Query::Wmc(weights(n_vars, salt)),
        Query::Marginals(weights(n_vars, salt)),
        Query::MaxWeight(weights(n_vars, salt)),
    ]
}

/// 64 pipelined frames at depth 16 on one connection: every frame's
/// answers must be bit-identical to the direct in-process executor run,
/// regardless of the order responses came back in.
#[test]
fn pipelined_answers_are_bit_identical_to_in_process() {
    let cnf = acceptance_cnf();
    let direct = Arc::new(PreparedCircuit::new(
        DecisionDnnfCompiler::default().compile(&cnf),
    ));
    let direct_executor = Executor::new(2);

    let engine = Arc::new(Engine::new(1 << 22, Some(2)));
    let handle = Server::bind("127.0.0.1:0", engine, ServerConfig::default()).unwrap();

    let frames: Vec<Vec<Query>> = (0..64).map(|i| frame_queries(cnf.num_vars(), i)).collect();
    let expected: Vec<Vec<QueryAnswer>> = frames
        .iter()
        .map(|qs| {
            direct_executor
                .run_batch(&direct, qs.clone())
                .into_iter()
                .map(|o| o.answer)
                .collect()
        })
        .collect();

    let mut client = Client::connect(handle.addr()).unwrap();
    let key = client.compile(&cnf).unwrap().key;
    let results = client.pipelined(key, frames, 16).unwrap();

    assert_eq!(results.len(), expected.len());
    for (i, (got, want)) in results.into_iter().zip(expected).enumerate() {
        assert_eq!(got.expect("frame should succeed"), want, "frame {i}");
    }

    handle.shutdown();
}

/// Raw send/recv: fire all frames before reading anything, then match
/// whatever order the responses arrive in purely by id. Every id must
/// arrive exactly once and carry that frame's answers.
#[test]
fn out_of_order_responses_are_matched_by_id() {
    let cnf = acceptance_cnf();
    let engine = Arc::new(Engine::new(1 << 22, Some(2)));
    let handle = Server::bind("127.0.0.1:0", engine, ServerConfig::default()).unwrap();

    let mut client = Client::connect(handle.addr()).unwrap();
    let key = client.compile(&cnf).unwrap().key;

    // Distinct, non-contiguous ids so positional matching would fail.
    let ids: Vec<u64> = (0..32u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9) | 1)
        .collect();
    let mut want = std::collections::HashMap::new();
    for (i, &id) in ids.iter().enumerate() {
        // Frame size varies 1..=6 queries so completion times differ and
        // the executor is free to finish small frames first.
        let queries: Vec<Query> = frame_queries(cnf.num_vars(), i as u32)
            .into_iter()
            .take(1 + i % 6)
            .collect();
        client.pipeline_send(id, key, queries.clone()).unwrap();
        want.insert(id, queries.len());
    }

    let mut arrival = Vec::new();
    for _ in 0..ids.len() {
        let (id, result) = client.pipeline_recv().unwrap();
        let expected_len = want
            .remove(&id)
            .unwrap_or_else(|| panic!("unknown or duplicate id {id:#x}"));
        assert_eq!(result.expect("frame should succeed").len(), expected_len);
        arrival.push(id);
    }
    assert!(want.is_empty(), "some frames never answered: {want:?}");
    // The server is free to answer in any order; all we pin down is the
    // id contract above. Record the arrival permutation for debugging.
    assert_eq!(arrival.len(), ids.len());

    handle.shutdown();
}

/// A zero-length pipelined batch is a legal no-op: it answers `Ok([])`
/// without touching the executor, and the connection keeps working.
#[test]
fn zero_length_pipelined_batch_answers_empty() {
    let cnf = acceptance_cnf();
    let engine = Arc::new(Engine::new(1 << 22, Some(2)));
    let handle = Server::bind("127.0.0.1:0", engine, ServerConfig::default()).unwrap();

    let mut client = Client::connect(handle.addr()).unwrap();
    let key = client.compile(&cnf).unwrap().key;

    client.pipeline_send(5, key, Vec::new()).unwrap();
    let (id, result) = client.pipeline_recv().unwrap();
    assert_eq!(id, 5);
    assert_eq!(result.unwrap(), Vec::new());

    // Connection still serves real work afterwards.
    client.pipeline_send(6, key, vec![Query::Sat]).unwrap();
    let (id, result) = client.pipeline_recv().unwrap();
    assert_eq!(id, 6);
    assert_eq!(result.unwrap(), vec![QueryAnswer::Sat(true)]);

    handle.shutdown();
}

/// Per-frame failures are isolated: an unknown registry key and an
/// invalid query each fail their own frame with a typed error while the
/// surrounding frames on the same connection succeed.
#[test]
fn per_frame_errors_do_not_sink_the_connection() {
    let cnf = acceptance_cnf();
    let engine = Arc::new(Engine::new(1 << 22, Some(2)));
    let handle = Server::bind("127.0.0.1:0", engine, ServerConfig::default()).unwrap();

    let mut client = Client::connect(handle.addr()).unwrap();
    let key = client.compile(&cnf).unwrap().key;

    client.pipeline_send(1, key, vec![Query::Sat]).unwrap();
    // Unknown key: typed failure for this frame only.
    client
        .pipeline_send(2, key ^ 0xffff_ffff, vec![Query::Sat])
        .unwrap();
    // Wrong-universe weights: rejected by pre-validation, not executed.
    client
        .pipeline_send(3, key, vec![Query::Wmc(LitWeights::unit(2))])
        .unwrap();
    client
        .pipeline_send(4, key, vec![Query::ModelCount])
        .unwrap();

    let mut ok = 0;
    let mut failed = 0;
    for _ in 0..4 {
        let (id, result) = client.pipeline_recv().unwrap();
        match id {
            1 | 4 => {
                result.expect("healthy frame should succeed");
                ok += 1;
            }
            2 | 3 => {
                result.expect_err("bad frame should fail typed");
                failed += 1;
            }
            other => panic!("unexpected id {other}"),
        }
    }
    assert_eq!((ok, failed), (2, 2));

    handle.shutdown();
}

/// Overload on a pipelined connection surfaces as a typed
/// `WireError::Overloaded` on the frames that did not fit, the connection
/// survives, and later frames succeed once the queue drains.
#[test]
fn overload_is_typed_and_survivable_under_pipelining() {
    let cnf = acceptance_cnf();
    let engine = Arc::new(Engine::new(1 << 22, Some(1)));
    // Admission is all-or-nothing per frame: one 6-query frame fits, two
    // do not, so deep pipelining must shed load.
    let config = ServerConfig {
        queue_capacity: 8,
        ..ServerConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", engine, config).unwrap();

    let mut client = Client::connect(handle.addr()).unwrap();
    let key = client.compile(&cnf).unwrap().key;

    // Far more in-flight queries than the queue admits; some frames must
    // be rejected with the typed overload error carrying the capacity.
    let frames: Vec<Vec<Query>> = (0..64).map(|i| frame_queries(cnf.num_vars(), i)).collect();
    let results = client.pipelined(key, frames, 64).unwrap();

    let mut ok = 0;
    let mut overloaded = 0;
    for result in results {
        match result {
            Ok(answers) => {
                assert_eq!(answers.len(), 6);
                ok += 1;
            }
            Err(WireError::Overloaded { capacity, .. }) => {
                assert_eq!(capacity, 8);
                overloaded += 1;
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert!(ok >= 1, "at least one frame should be admitted");
    assert!(
        overloaded >= 1,
        "queue_capacity=2 under 64-deep pipelining should shed load"
    );

    // The connection is still healthy: a lone frame now succeeds.
    std::thread::sleep(Duration::from_millis(50));
    client.pipeline_send(999, key, vec![Query::Sat]).unwrap();
    let (id, result) = client.pipeline_recv().unwrap();
    assert_eq!(id, 999);
    assert_eq!(result.unwrap(), vec![QueryAnswer::Sat(true)]);

    handle.shutdown();
}

/// Pipelined frames interleaved with classic ordered requests on the same
/// connection: ordered responses keep strict submission order while
/// pipelined ids float freely around them.
#[test]
fn ordered_and_pipelined_traffic_interleave_on_one_connection() {
    let cnf = acceptance_cnf();
    let engine = Arc::new(Engine::new(1 << 22, Some(2)));
    let handle = Server::bind("127.0.0.1:0", engine, ServerConfig::default()).unwrap();

    let mut client = Client::connect(handle.addr()).unwrap();
    let key = client.compile(&cnf).unwrap().key;

    // Fire a pipelined frame, then a classic query (strict call), then
    // collect the pipelined response. The classic call must not swallow
    // the pipelined frame's response even if it completes first —
    // `query` reads exactly one frame, and the server answers ordered
    // requests in order relative to each other.
    client
        .pipeline_send(11, key, vec![Query::ModelCount])
        .unwrap();
    let (id, result) = client.pipeline_recv().unwrap();
    assert_eq!(id, 11);
    let pipelined_count = match result.unwrap().pop().unwrap() {
        QueryAnswer::ModelCount(n) => n,
        other => panic!("expected a model count, got {other:?}"),
    };

    let direct = client.query(key, Query::ModelCount).unwrap();
    assert_eq!(direct, QueryAnswer::ModelCount(pipelined_count));

    handle.shutdown();
}
