//! The space of total orderings (rankings), Fig. 17 of the paper.
//!
//! A ranking of `n` items uses `n²` Boolean variables `A_ij` — item `i` is
//! at position `j` — with the permutation constraints "each item takes
//! exactly one position" and "each position holds exactly one item". The
//! space compiles into an OBDD by a direct DP over the row-major variable
//! order whose states are the sets of occupied positions, again a frontier
//! construction; the circuit then hosts a PSDD over rankings.

use trl_core::{Assignment, FxHashMap, Var};
use trl_obdd::{BddRef, Obdd};

/// The ranking space over `n` items.
pub struct RankingSpace {
    n: usize,
}

impl RankingSpace {
    /// Creates the space of rankings of `n` items (`n² ≤ 64` variables for
    /// the brute-force oracles; the compiler itself scales further).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        RankingSpace { n }
    }

    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.n
    }

    /// Number of Boolean variables (`n²`).
    pub fn num_vars(&self) -> usize {
        self.n * self.n
    }

    /// The variable `A_ij`: item `i` at position `j`.
    pub fn var(&self, item: usize, position: usize) -> Var {
        assert!(item < self.n && position < self.n);
        Var((item * self.n + position) as u32)
    }

    /// Encodes a ranking (`ranking[i]` = position of item `i`) as an
    /// assignment.
    pub fn encode(&self, ranking: &[usize]) -> Assignment {
        assert_eq!(ranking.len(), self.n);
        let mut a = Assignment::all_false(self.num_vars());
        for (item, &pos) in ranking.iter().enumerate() {
            a.set(self.var(item, pos), true);
        }
        a
    }

    /// Decodes an assignment into a ranking, if it is valid.
    pub fn decode(&self, a: &Assignment) -> Option<Vec<usize>> {
        let mut ranking = vec![usize::MAX; self.n];
        let mut used = vec![false; self.n];
        for (item, slot) in ranking.iter_mut().enumerate() {
            for (pos, used_slot) in used.iter_mut().enumerate() {
                if a.value(self.var(item, pos)) {
                    if *slot != usize::MAX || *used_slot {
                        return None;
                    }
                    *slot = pos;
                    *used_slot = true;
                }
            }
            if *slot == usize::MAX {
                return None;
            }
        }
        Some(ranking)
    }

    /// Compiles the space of valid rankings into an OBDD over the
    /// row-major variable order. DP state: the set of positions already
    /// taken by earlier items (plus whether the current item has placed).
    pub fn compile(&self) -> (Obdd, BddRef) {
        let n = self.n;
        let mut obdd = Obdd::with_num_vars(n * n);
        let mut memo: FxHashMap<(usize, u64, bool), BddRef> = FxHashMap::default();
        let root = Self::build(n, &mut obdd, &mut memo, 0, 0, false);
        (obdd, root)
    }

    fn build(
        n: usize,
        obdd: &mut Obdd,
        memo: &mut FxHashMap<(usize, u64, bool), BddRef>,
        level: usize,
        used: u64,
        placed: bool,
    ) -> BddRef {
        if level == n * n {
            return Obdd::TRUE; // all rows checked; `used` is necessarily full
        }
        if let Some(&r) = memo.get(&(level, used, placed)) {
            return r;
        }
        let pos = level % n;
        let end_of_row = pos == n - 1;
        // Variable false: the item is not at this position.
        let lo = if end_of_row && !placed {
            Obdd::FALSE // the item took no position
        } else {
            Self::build(n, obdd, memo, level + 1, used, placed && !end_of_row)
        };
        // Variable true: the item sits at `pos`.
        let hi = if placed || used >> pos & 1 == 1 {
            Obdd::FALSE // second position for the item, or position taken
        } else if end_of_row {
            Self::build(n, obdd, memo, level + 1, used | 1 << pos, false)
        } else {
            Self::build(n, obdd, memo, level + 1, used | 1 << pos, true)
        };
        let r = obdd.mk(level as u32, lo, hi);
        memo.insert((level, used, placed), r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_factorials() {
        for (n, expected) in [(1usize, 1u128), (2, 2), (3, 6), (4, 24), (5, 120)] {
            let space = RankingSpace::new(n);
            let (obdd, root) = space.compile();
            assert_eq!(obdd.count_models(root), expected, "n = {n}");
        }
    }

    #[test]
    fn circuit_recognizes_exactly_valid_rankings() {
        let space = RankingSpace::new(3);
        let (obdd, root) = space.compile();
        for code in 0..1u64 << 9 {
            let a = Assignment::from_index(code, 9);
            assert_eq!(
                obdd.eval(root, &a),
                space.decode(&a).is_some(),
                "at {code:09b}"
            );
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let space = RankingSpace::new(4);
        let ranking = vec![2, 0, 3, 1];
        let a = space.encode(&ranking);
        assert_eq!(space.decode(&a), Some(ranking));
    }

    #[test]
    fn fig17_invalid_example_rejected() {
        // "item 2 appears in two positions" — the orange case of Fig. 17.
        let space = RankingSpace::new(3);
        let mut a = space.encode(&[0, 1, 2]);
        a.set(space.var(2, 0), true); // item 2 now at positions 0 and 2
        assert_eq!(space.decode(&a), None);
        let (obdd, root) = space.compile();
        assert!(!obdd.eval(root, &a));
    }
}
