//! Variables, literals, assignments, and cubes.

use std::fmt;

/// A propositional variable, identified by a dense index starting at 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The variable's dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }

    /// The literal of this variable with the given polarity.
    #[inline]
    pub fn literal(self, positive: bool) -> Lit {
        Lit::new(self, positive)
    }
}

impl From<u32> for Var {
    fn from(i: u32) -> Self {
        Var(i)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded as `var << 1 | polarity` so that a literal and its negation are
/// adjacent integers (`lit ^ 1` negates), the layout used by CDCL solvers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal for `var` with the given polarity (`true` = positive).
    #[inline]
    pub fn new(var: Var, positive: bool) -> Self {
        Lit(var.0 << 1 | positive as u32)
    }

    /// Reconstructs a literal from its raw code (see [`Lit::code`]).
    #[inline]
    pub fn from_code(code: u32) -> Self {
        Lit(code)
    }

    /// The raw code: `var << 1 | polarity`.
    #[inline]
    pub fn code(self) -> u32 {
        self.0
    }

    /// The literal's variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 1
    }

    /// The opposite-polarity literal of the same variable.
    #[inline]
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Evaluates the literal under a truth value for its variable.
    #[inline]
    pub fn eval(self, value: bool) -> bool {
        self.is_positive() == value
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        self.negated()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.var().0)
        } else {
            write!(f, "~x{}", self.var().0)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A total truth assignment over variables `0..n`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Assignment {
    values: Vec<bool>,
}

impl Assignment {
    /// An all-false assignment over `n` variables.
    pub fn all_false(n: usize) -> Self {
        Assignment {
            values: vec![false; n],
        }
    }

    /// Builds an assignment from a slice of truth values (index = variable).
    pub fn from_values(values: &[bool]) -> Self {
        Assignment {
            values: values.to_vec(),
        }
    }

    /// Decodes the `code`-th assignment over `n` variables: bit `i` of `code`
    /// is the value of variable `i`. This is the enumeration order used by
    /// all brute-force oracles in the workspace.
    pub fn from_index(code: u64, n: usize) -> Self {
        Assignment {
            values: (0..n).map(|i| code >> i & 1 == 1).collect(),
        }
    }

    /// The number of variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the assignment covers zero variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The truth value of `var`.
    #[inline]
    pub fn value(&self, var: Var) -> bool {
        self.values[var.index()]
    }

    /// Sets the truth value of `var`.
    #[inline]
    pub fn set(&mut self, var: Var, value: bool) {
        self.values[var.index()] = value;
    }

    /// Whether the given literal is true under this assignment.
    #[inline]
    pub fn satisfies(&self, lit: Lit) -> bool {
        lit.eval(self.value(lit.var()))
    }

    /// The literal of `var` that holds under this assignment.
    #[inline]
    pub fn literal_of(&self, var: Var) -> Lit {
        var.literal(self.value(var))
    }

    /// Iterates over the values, in variable order.
    pub fn values(&self) -> &[bool] {
        &self.values
    }

    /// Returns a copy with variable `var` flipped.
    pub fn flipped(&self, var: Var) -> Assignment {
        let mut out = self.clone();
        out.set(var, !out.value(var));
        out
    }

    /// The Hamming distance to another assignment over the same variables.
    pub fn hamming_distance(&self, other: &Assignment) -> usize {
        assert_eq!(self.len(), other.len(), "assignments over different sets");
        self.values
            .iter()
            .zip(&other.values)
            .filter(|(a, b)| a != b)
            .count()
    }
}

/// A three-valued (partial) assignment.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PartialAssignment {
    values: Vec<Option<bool>>,
}

impl PartialAssignment {
    /// An empty partial assignment over `n` variables.
    pub fn new(n: usize) -> Self {
        PartialAssignment {
            values: vec![None; n],
        }
    }

    /// Builds a partial assignment over `n` variables from a cube of literals.
    pub fn from_cube(cube: &Cube, n: usize) -> Self {
        let mut pa = PartialAssignment::new(n);
        for &lit in cube.literals() {
            pa.assign(lit);
        }
        pa
    }

    /// The number of variables in scope (assigned or not).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the scope is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value of `var`, if assigned.
    #[inline]
    pub fn value(&self, var: Var) -> Option<bool> {
        self.values[var.index()]
    }

    /// Asserts `lit` (sets its variable to the satisfying value).
    #[inline]
    pub fn assign(&mut self, lit: Lit) {
        self.values[lit.var().index()] = Some(lit.is_positive());
    }

    /// Clears the value of `var`.
    #[inline]
    pub fn unassign(&mut self, var: Var) {
        self.values[var.index()] = None;
    }

    /// Three-valued evaluation of a literal: `Some(b)` if decided, else `None`.
    #[inline]
    pub fn eval(&self, lit: Lit) -> Option<bool> {
        self.value(lit.var()).map(|v| lit.eval(v))
    }

    /// The number of assigned variables.
    pub fn assigned_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// Iterates over the assigned literals in variable order.
    pub fn literals(&self) -> impl Iterator<Item = Lit> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|b| Var(i as u32).literal(b)))
    }
}

/// A *cube* (term): a consistent set of literals over distinct variables,
/// kept sorted by variable for canonical comparison.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cube {
    lits: Vec<Lit>,
}

impl Cube {
    /// The empty cube (the constant `true` term).
    pub fn empty() -> Self {
        Cube::default()
    }

    /// Builds a cube from literals. Panics if two literals share a variable
    /// with opposite polarity (an inconsistent term is not a cube).
    pub fn from_lits(lits: impl IntoIterator<Item = Lit>) -> Self {
        let mut v: Vec<Lit> = lits.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        for w in v.windows(2) {
            assert!(
                w[0].var() != w[1].var(),
                "inconsistent cube: {:?} and {:?}",
                w[0],
                w[1]
            );
        }
        Cube { lits: v }
    }

    /// The literals of the cube, sorted by variable.
    pub fn literals(&self) -> &[Lit] {
        &self.lits
    }

    /// The number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether this is the empty (true) cube.
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// The polarity of `var` in this cube, if mentioned.
    pub fn value(&self, var: Var) -> Option<bool> {
        self.lits
            .binary_search_by_key(&var, |l| l.var())
            .ok()
            .map(|i| self.lits[i].is_positive())
    }

    /// Whether every literal of this cube appears in `other`
    /// (i.e. `other ⇒ self` as terms).
    pub fn subsumes(&self, other: &Cube) -> bool {
        // Both sorted: linear merge.
        let mut it = other.lits.iter().peekable();
        'outer: for &l in &self.lits {
            for &o in it.by_ref() {
                if o == l {
                    continue 'outer;
                }
                if o.var() >= l.var() {
                    return false;
                }
            }
            return false;
        }
        true
    }

    /// Whether the cube is consistent with a total assignment
    /// (every literal of the cube holds under it).
    pub fn consistent_with(&self, a: &Assignment) -> bool {
        self.lits.iter().all(|&l| a.satisfies(l))
    }

    /// Returns the cube extended with `lit`. Panics on inconsistency.
    pub fn with(&self, lit: Lit) -> Cube {
        let mut lits = self.lits.clone();
        lits.push(lit);
        Cube::from_lits(lits)
    }

    /// The set of variables mentioned by the cube.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.lits.iter().map(|l| l.var())
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lits.is_empty() {
            return write!(f, "⊤");
        }
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, "∧")?;
            }
            write!(f, "{l:?}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var(i)
    }

    #[test]
    fn literal_encoding_round_trips() {
        let l = v(7).positive();
        assert_eq!(l.var(), v(7));
        assert!(l.is_positive());
        assert_eq!(!l, v(7).negative());
        assert_eq!(!!l, l);
        assert_eq!(Lit::from_code(l.code()), l);
    }

    #[test]
    fn literal_eval_matches_polarity() {
        assert!(v(0).positive().eval(true));
        assert!(!v(0).positive().eval(false));
        assert!(v(0).negative().eval(false));
        assert!(!v(0).negative().eval(true));
    }

    #[test]
    fn assignment_from_index_enumerates_all() {
        let mut seen = std::collections::HashSet::new();
        for code in 0..8u64 {
            seen.insert(Assignment::from_index(code, 3));
        }
        assert_eq!(seen.len(), 8);
        let a = Assignment::from_index(0b101, 3);
        assert!(a.value(v(0)) && !a.value(v(1)) && a.value(v(2)));
    }

    #[test]
    fn assignment_satisfies_literals() {
        let a = Assignment::from_index(0b01, 2);
        assert!(a.satisfies(v(0).positive()));
        assert!(a.satisfies(v(1).negative()));
        assert!(!a.satisfies(v(1).positive()));
        assert_eq!(a.literal_of(v(0)), v(0).positive());
        assert_eq!(a.literal_of(v(1)), v(1).negative());
    }

    #[test]
    fn hamming_distance_counts_flips() {
        let a = Assignment::from_index(0b0000, 4);
        let b = Assignment::from_index(0b1010, 4);
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
        assert_eq!(a.flipped(v(0)).hamming_distance(&a), 1);
    }

    #[test]
    fn partial_assignment_three_valued_eval() {
        let mut pa = PartialAssignment::new(3);
        assert_eq!(pa.eval(v(1).positive()), None);
        pa.assign(v(1).negative());
        assert_eq!(pa.eval(v(1).positive()), Some(false));
        assert_eq!(pa.eval(v(1).negative()), Some(true));
        pa.unassign(v(1));
        assert_eq!(pa.eval(v(1).positive()), None);
        assert_eq!(pa.assigned_count(), 0);
    }

    #[test]
    fn cube_is_sorted_and_deduped() {
        let c = Cube::from_lits([v(3).positive(), v(1).negative(), v(3).positive()]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.literals()[0], v(1).negative());
        assert_eq!(c.value(v(3)), Some(true));
        assert_eq!(c.value(v(2)), None);
    }

    #[test]
    #[should_panic(expected = "inconsistent cube")]
    fn inconsistent_cube_panics() {
        let _ = Cube::from_lits([v(0).positive(), v(0).negative()]);
    }

    #[test]
    fn cube_subsumption() {
        let ab = Cube::from_lits([v(0).positive(), v(1).positive()]);
        let a = Cube::from_lits([v(0).positive()]);
        let abc = Cube::from_lits([v(0).positive(), v(1).positive(), v(2).negative()]);
        assert!(a.subsumes(&ab));
        assert!(ab.subsumes(&abc));
        assert!(!ab.subsumes(&a));
        assert!(Cube::empty().subsumes(&a));
        let nb = Cube::from_lits([v(1).negative()]);
        assert!(!nb.subsumes(&ab));
    }

    #[test]
    fn cube_consistency_with_assignment() {
        let c = Cube::from_lits([v(0).positive(), v(2).negative()]);
        assert!(c.consistent_with(&Assignment::from_index(0b001, 3)));
        assert!(c.consistent_with(&Assignment::from_index(0b011, 3)));
        assert!(!c.consistent_with(&Assignment::from_index(0b100, 3)));
    }
}
