//! Boolean formula ASTs and CNF conversion.

use crate::cnf::{Clause, Cnf};
use trl_core::{Assignment, Lit, Var, VarSet};

/// A Boolean formula over variables `Var(0..)`.
///
/// This is the front-end representation for knowledge that is later
/// *compiled* into tractable circuits: course prerequisites (§4), route
/// constraints (§4.1), classifier encodings (§5) are all authored as
/// `Formula`s and lowered to [`Cnf`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Formula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// A literal.
    Lit(Lit),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction (empty = true).
    And(Vec<Formula>),
    /// N-ary disjunction (empty = false).
    Or(Vec<Formula>),
    /// Material implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Biconditional.
    Iff(Box<Formula>, Box<Formula>),
    /// Exclusive or.
    Xor(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// A positive-literal atom.
    pub fn var(v: Var) -> Formula {
        Formula::Lit(v.positive())
    }

    /// A literal atom.
    pub fn lit(l: Lit) -> Formula {
        Formula::Lit(l)
    }

    /// Conjunction of two formulas.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(vec![self, other])
    }

    /// Disjunction of two formulas.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(vec![self, other])
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Implication `self ⇒ other`.
    pub fn implies(self, other: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(other))
    }

    /// Biconditional `self ⇔ other`.
    pub fn iff(self, other: Formula) -> Formula {
        Formula::Iff(Box::new(self), Box::new(other))
    }

    /// Exclusive or.
    pub fn xor(self, other: Formula) -> Formula {
        Formula::Xor(Box::new(self), Box::new(other))
    }

    /// Conjunction of many formulas.
    pub fn conj(fs: impl IntoIterator<Item = Formula>) -> Formula {
        Formula::And(fs.into_iter().collect())
    }

    /// Disjunction of many formulas.
    pub fn disj(fs: impl IntoIterator<Item = Formula>) -> Formula {
        Formula::Or(fs.into_iter().collect())
    }

    /// "Exactly one of the given literals is true."
    ///
    /// The workhorse constraint of the ranking encodings (Fig. 17) and of the
    /// indicator clauses in the Bayesian-network reduction (§2.2).
    pub fn exactly_one(lits: &[Lit]) -> Formula {
        let at_least = Formula::Or(lits.iter().map(|&l| Formula::Lit(l)).collect());
        let mut parts = vec![at_least];
        for i in 0..lits.len() {
            for j in i + 1..lits.len() {
                parts.push(Formula::Or(vec![
                    Formula::Lit(!lits[i]),
                    Formula::Lit(!lits[j]),
                ]));
            }
        }
        Formula::And(parts)
    }

    /// Evaluates the formula under a total assignment.
    pub fn eval(&self, a: &Assignment) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Lit(l) => a.satisfies(*l),
            Formula::Not(f) => !f.eval(a),
            Formula::And(fs) => fs.iter().all(|f| f.eval(a)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval(a)),
            Formula::Implies(p, q) => !p.eval(a) || q.eval(a),
            Formula::Iff(p, q) => p.eval(a) == q.eval(a),
            Formula::Xor(p, q) => p.eval(a) != q.eval(a),
        }
    }

    /// The set of variables mentioned.
    pub fn vars(&self) -> VarSet {
        let mut out = VarSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut VarSet) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Lit(l) => {
                out.insert(l.var());
            }
            Formula::Not(f) => f.collect_vars(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_vars(out);
                }
            }
            Formula::Implies(p, q) | Formula::Iff(p, q) | Formula::Xor(p, q) => {
                p.collect_vars(out);
                q.collect_vars(out);
            }
        }
    }

    /// Pushes negations to the literals and expands `⇒`, `⇔`, `⊕`,
    /// returning a formula built from literals, `And`, and `Or` only.
    pub fn to_nnf(&self) -> Formula {
        self.nnf(false)
    }

    fn nnf(&self, negate: bool) -> Formula {
        match self {
            Formula::True => {
                if negate {
                    Formula::False
                } else {
                    Formula::True
                }
            }
            Formula::False => {
                if negate {
                    Formula::True
                } else {
                    Formula::False
                }
            }
            Formula::Lit(l) => Formula::Lit(if negate { !*l } else { *l }),
            Formula::Not(f) => f.nnf(!negate),
            Formula::And(fs) => {
                let parts = fs.iter().map(|f| f.nnf(negate)).collect();
                if negate {
                    Formula::Or(parts)
                } else {
                    Formula::And(parts)
                }
            }
            Formula::Or(fs) => {
                let parts = fs.iter().map(|f| f.nnf(negate)).collect();
                if negate {
                    Formula::And(parts)
                } else {
                    Formula::Or(parts)
                }
            }
            Formula::Implies(p, q) => {
                // p ⇒ q ≡ ¬p ∨ q
                Formula::Or(vec![p.nnf(true), q.nnf(false)]).nnf(negate)
            }
            Formula::Iff(p, q) => {
                // p ⇔ q ≡ (p ∧ q) ∨ (¬p ∧ ¬q)
                Formula::Or(vec![
                    Formula::And(vec![p.nnf(false), q.nnf(false)]),
                    Formula::And(vec![p.nnf(true), q.nnf(true)]),
                ])
                .nnf(negate)
            }
            Formula::Xor(p, q) => Formula::Iff(p.clone(), q.clone()).nnf(!negate),
        }
    }

    /// Equivalence-preserving CNF by distribution over the NNF.
    ///
    /// Exponential in the worst case — use for the hand-sized constraints of
    /// the examples and tests; use [`Formula::to_cnf_tseitin`] for anything
    /// large.
    pub fn to_cnf(&self, num_vars: usize) -> Cnf {
        let nnf = self.to_nnf();
        let mut clauses = Vec::new();
        distribute(&nnf, &mut clauses);
        // Drop tautologies and subsumed clauses for tidiness.
        clauses.retain(|c| !c.is_tautology());
        clauses.sort();
        clauses.dedup();
        let reduced: Vec<Clause> = clauses
            .iter()
            .filter(|c| {
                !clauses
                    .iter()
                    .any(|d| d != *c && d.literals().iter().all(|l| c.contains(*l)))
            })
            .cloned()
            .collect();
        Cnf::from_clauses(num_vars, reduced)
    }

    /// Tseitin encoding: equisatisfiable CNF with one fresh variable per
    /// internal gate, starting at `Var(num_vars)`.
    ///
    /// Every model of the original formula extends to exactly one model of
    /// the encoding, so *model counts are preserved* (and weighted counts,
    /// when the fresh literals get weight 1) — the property the WMC
    /// reductions of §2.2 rely on.
    ///
    /// Returns the CNF (whose variable universe includes the fresh
    /// variables) together with the literal asserting the root.
    pub fn to_cnf_tseitin(&self, num_vars: usize) -> (Cnf, Lit) {
        let nnf = self.to_nnf();
        let mut enc = Tseitin {
            cnf: Cnf::new(num_vars),
            next: num_vars as u32,
        };
        let root = enc.encode(&nnf);
        enc.cnf.add_clause([root]);
        (enc.cnf, root)
    }
}

struct Tseitin {
    cnf: Cnf,
    next: u32,
}

impl Tseitin {
    fn fresh(&mut self) -> Var {
        let v = Var(self.next);
        self.next += 1;
        // Grow the clause universe.
        let clauses: Vec<Clause> = self.cnf.clauses().to_vec();
        self.cnf = Cnf::from_clauses(self.next as usize, clauses);
        v
    }

    fn encode(&mut self, f: &Formula) -> Lit {
        match f {
            Formula::Lit(l) => *l,
            Formula::True => {
                let v = self.fresh();
                self.cnf.add_clause([v.positive()]);
                v.positive()
            }
            Formula::False => {
                let v = self.fresh();
                self.cnf.add_clause([v.negative()]);
                v.positive()
            }
            Formula::And(fs) => {
                let parts: Vec<Lit> = fs.iter().map(|g| self.encode(g)).collect();
                let v = self.fresh();
                // v ⇔ ∧ parts
                for &p in &parts {
                    self.cnf.add_clause([v.negative(), p]);
                }
                let mut big: Vec<Lit> = parts.iter().map(|&p| !p).collect();
                big.push(v.positive());
                self.cnf.add_clause(big);
                v.positive()
            }
            Formula::Or(fs) => {
                let parts: Vec<Lit> = fs.iter().map(|g| self.encode(g)).collect();
                let v = self.fresh();
                // v ⇔ ∨ parts
                for &p in &parts {
                    self.cnf.add_clause([v.positive(), !p]);
                }
                let mut big: Vec<Lit> = parts.clone();
                big.push(v.negative());
                self.cnf.add_clause(big);
                v.positive()
            }
            // `to_nnf` leaves only literals / And / Or.
            other => unreachable!("non-NNF node after to_nnf: {other:?}"),
        }
    }
}

fn distribute(f: &Formula, out: &mut Vec<Clause>) {
    match f {
        Formula::True => {}
        Formula::False => out.push(Clause::empty()),
        Formula::Lit(l) => out.push(Clause::new([*l])),
        Formula::And(fs) => {
            for g in fs {
                distribute(g, out);
            }
        }
        Formula::Or(fs) => {
            // Cross product of the clause sets of the disjuncts.
            let mut acc: Vec<Vec<Lit>> = vec![Vec::new()];
            for g in fs {
                let mut sub = Vec::new();
                distribute(g, &mut sub);
                if sub.is_empty() {
                    // disjunct is valid → whole disjunction is valid
                    return;
                }
                let mut next = Vec::with_capacity(acc.len() * sub.len());
                for base in &acc {
                    for c in &sub {
                        let mut lits = base.clone();
                        lits.extend_from_slice(c.literals());
                        next.push(lits);
                    }
                }
                acc = next;
            }
            for lits in acc {
                out.push(Clause::new(lits));
            }
        }
        other => unreachable!("non-NNF node in distribute: {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn assert_equiv(f: &Formula, n: usize, cnf: &Cnf) {
        for code in 0..1u64 << n {
            let a = Assignment::from_index(code, n);
            assert_eq!(f.eval(&a), cnf.eval(&a), "differ at {code:b}");
        }
    }

    #[test]
    fn eval_connectives() {
        let a = Assignment::from_index(0b01, 2); // x0=1, x1=0
        let p = Formula::var(v(0));
        let q = Formula::var(v(1));
        assert!(p.clone().or(q.clone()).eval(&a));
        assert!(!p.clone().and(q.clone()).eval(&a));
        assert!(!p.clone().implies(q.clone()).eval(&a));
        assert!(q.clone().implies(p.clone()).eval(&a));
        assert!(!p.clone().iff(q.clone()).eval(&a));
        assert!(p.xor(q).eval(&a));
    }

    #[test]
    fn nnf_eliminates_connectives_and_preserves_semantics() {
        let f = Formula::var(v(0))
            .iff(Formula::var(v(1)))
            .xor(Formula::var(v(2)).implies(Formula::var(v(0))))
            .not();
        let g = f.to_nnf();
        fn only_basic(f: &Formula) -> bool {
            match f {
                Formula::Lit(_) | Formula::True | Formula::False => true,
                Formula::And(fs) | Formula::Or(fs) => fs.iter().all(only_basic),
                _ => false,
            }
        }
        assert!(only_basic(&g));
        for code in 0..8 {
            let a = Assignment::from_index(code, 3);
            assert_eq!(f.eval(&a), g.eval(&a));
        }
    }

    #[test]
    fn distribution_cnf_is_equivalent() {
        // The paper's course-prerequisite constraint from Fig. 15 with
        // L=0, K=1, P=2, A=3: (P∨L) ∧ (A⇒P) ∧ (K⇒(A∨L)).
        let f = Formula::conj([
            Formula::var(v(2)).or(Formula::var(v(0))),
            Formula::var(v(3)).implies(Formula::var(v(2))),
            Formula::var(v(1)).implies(Formula::var(v(3)).or(Formula::var(v(0)))),
        ]);
        let cnf = f.to_cnf(4);
        assert_equiv(&f, 4, &cnf);
        // The paper reports this space has 9 valid course combinations.
        let count = (0..16u64)
            .filter(|&c| f.eval(&Assignment::from_index(c, 4)))
            .count();
        assert_eq!(count, 9);
    }

    #[test]
    fn tseitin_preserves_model_count() {
        let f = Formula::var(v(0))
            .iff(Formula::var(v(1)))
            .or(Formula::var(v(2)).xor(Formula::var(v(0))));
        let brute = (0..8u64)
            .filter(|&c| f.eval(&Assignment::from_index(c, 3)))
            .count() as u64;
        let (cnf, _root) = f.to_cnf_tseitin(3);
        let count = Solver::new(&cnf).count_models();
        assert_eq!(count, brute);
    }

    #[test]
    fn exactly_one_semantics() {
        let lits = [v(0).positive(), v(1).positive(), v(2).positive()];
        let f = Formula::exactly_one(&lits);
        for code in 0..8u64 {
            let a = Assignment::from_index(code, 3);
            assert_eq!(f.eval(&a), code.count_ones() == 1, "code {code:b}");
        }
    }

    #[test]
    fn constants_behave() {
        let a = Assignment::from_index(0, 1);
        assert!(Formula::True.eval(&a));
        assert!(!Formula::False.eval(&a));
        assert!(Formula::False.not().eval(&a));
        let cnf = Formula::False.to_cnf(1);
        assert!(cnf.has_empty_clause());
        let cnf = Formula::True.to_cnf(1);
        assert!(cnf.is_empty());
    }

    #[test]
    fn vars_collects_mentioned() {
        let f = Formula::var(v(0)).implies(Formula::var(v(5)));
        let vs = f.vars();
        assert!(vs.contains(v(0)) && vs.contains(v(5)) && !vs.contains(v(3)));
    }
}
