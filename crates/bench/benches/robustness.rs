//! Criterion bench: decision robustness (linear in the OBDD, \[81\]) and the
//! exact model-robustness computation behind Fig. 29.

use criterion::{criterion_group, criterion_main, Criterion};
use trl_xai::images::{digit_dataset, one_prototype, PIXELS};
use trl_xai::robustness::{decision_robustness, robustness_profile};
use trl_xai::Bnn;

fn bench_robustness(c: &mut Criterion) {
    let train = digit_dataset(50, 0.1, 2024);
    let (net, _) = Bnn::train(PIXELS, 3, &train, 11, 4);
    let (m, f, _) = net.compile();
    let x = one_prototype();
    let mut group = c.benchmark_group("robustness");
    group.bench_function("decision-robustness", |b| {
        b.iter(|| decision_robustness(&m, f, &x))
    });
    group.sample_size(10);
    group.bench_function("model-robustness-2^16", |b| {
        b.iter(|| {
            let (mut m2, f2, _) = net.compile();
            robustness_profile(&mut m2, f2)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500)).sample_size(20);
    targets = bench_robustness
}
criterion_main!(benches);
