//! The TCP serving frontend: a readiness-driven multiplexed server over
//! nonblocking sockets, with admission control and graceful shutdown.
//!
//! Architecture (all std, no external deps — the workspace builds
//! air-gapped; the epoll wrapper lives in [`crate::reactor`]):
//!
//! * an **accept thread** owns the listener. Before each `accept` it takes
//!   a permit from a bounded connection gate ([`ServerConfig::max_connections`]),
//!   so excess clients queue in the kernel backlog instead of piling into
//!   the reactors — no connection is ever dropped by admission. Accepted
//!   sockets are handed round-robin to the reactors;
//! * **N reactor threads** ([`ServerConfig::reactors`]) each run an epoll
//!   event loop over their shard of connections. Every socket is
//!   nonblocking and registered edge-triggered; a per-connection state
//!   machine accumulates partial frames in a read buffer, peels complete
//!   frames off with [`crate::protocol::scan_frame`], and stages encoded
//!   responses in a write buffer flushed as the socket allows. Idle
//!   connections cost **zero** wakeups — the old 25 ms idle-poll loop (and
//!   its `server.idle_wakeups` counter) is gone; shutdown and completed
//!   work arrive through a per-reactor eventfd [`crate::reactor::Waker`];
//! * **pipelining**: a connection may have any number of frames in
//!   flight. Pre-version-3 request kinds are answered strictly in arrival
//!   order (a reorder buffer holds responses that complete early);
//!   [`Request::PipelinedBatch`] frames carry a client-chosen id and are
//!   answered the moment they complete, out of order. All pipelined
//!   frames that arrive in one readiness drain for the same registry key
//!   are **coalesced into a single executor submission**, so the engine's
//!   lane-batched kernels see one big batch instead of many small ones;
//! * a **bounded submission queue** guards the shared [`Engine`]: each
//!   admitted query holds one unit of [`ServerConfig::queue_capacity`]
//!   until answered. A frame that would exceed the bound is rejected with
//!   a typed [`WireError::Overloaded`] response — backpressure, not
//!   buffering — and the connection stays usable;
//! * **graceful shutdown** ([`ServerHandle::shutdown`], or a wire
//!   [`Request::Shutdown`]) stops accepting, stops reading, lets every
//!   in-flight request finish and flush its response, then joins the
//!   accept thread, every reactor, and any outstanding compile threads.
//!
//! Protocol-level failures (corrupt frame, oversized length prefix,
//! version skew) are answered with a typed [`Response::Error`] frame where
//! the stream still permits one, and the connection is closed — a broken
//! framing layer cannot be resynchronized.

use std::collections::BTreeMap;
use std::io;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::protocol::{
    scan_frame, write_response_versioned, FrameScan, Request, Response, WireError,
    DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use crate::reactor::{Event, Reactor, Waker};
use trl_engine::{Artifact, Engine, EngineError, Query, QueryOutcome};
use trl_obs::{TraceContext, TraceSpanData};

/// Tunables for a [`Server`]. The defaults suit tests and small
/// deployments; serving real traffic wants them set explicitly.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum concurrently served connections; further clients wait in
    /// the kernel accept backlog.
    pub max_connections: usize,
    /// Maximum queries admitted into the engine at once, across all
    /// connections. A request pushing past this is answered with
    /// [`WireError::Overloaded`].
    pub queue_capacity: usize,
    /// Cap on a mid-frame stall: a connection holding a partial frame
    /// longer than this is closed.
    pub read_timeout: Duration,
    /// Cap on a write stall: a connection that cannot absorb its staged
    /// responses for this long is closed.
    pub write_timeout: Duration,
    /// Ceiling on an inbound frame's payload length.
    pub max_frame_len: u32,
    /// Reactor (event-loop) threads the connections are sharded across.
    /// Zero means "pick from available parallelism".
    pub reactors: usize,
    /// When set, any request whose handling time exceeds this threshold
    /// is logged to stderr as one JSON line with its span breakdown.
    pub slow_query: Option<Duration>,
    /// Probability in `[0, 1]` that a request is traced into the flight
    /// recorder (`--trace-sample`). Zero disables sampling; explicit
    /// [`Request::Trace`] frames are always traced regardless.
    pub trace_sample: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            queue_capacity: 1024,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            reactors: 0,
            slow_query: None,
            trace_sample: 0.0,
        }
    }
}

impl ServerConfig {
    /// The reactor count after resolving `0` to a hardware-derived
    /// default (capped: reactors are I/O multiplexers, not compute).
    fn effective_reactors(&self) -> usize {
        if self.reactors > 0 {
            return self.reactors;
        }
        std::thread::available_parallelism().map_or(1, |p| p.get().min(4))
    }
}

/// Counters the server keeps about its own traffic (monotonic since bind).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerCounters {
    /// Response frames enqueued (answers and typed errors alike).
    pub served: u64,
    /// Requests rejected with [`WireError::Overloaded`].
    pub overloaded: u64,
    /// Connections accepted.
    pub connections: u64,
}

/// A semaphore built from a mutex and condvar (std has no semaphore).
struct Gate {
    held: Mutex<usize>,
    freed: Condvar,
}

impl Gate {
    fn new() -> Self {
        Gate {
            held: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// Blocks until a permit is free or `cancel` turns true; returns
    /// whether a permit was taken. Cancellation is wakeup-driven
    /// ([`Gate::cancel_wake`]), not polled.
    fn acquire(&self, max: usize, cancel: &AtomicBool) -> bool {
        let mut held = self.held.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if cancel.load(Ordering::Acquire) {
                return false;
            }
            if *held < max {
                *held += 1;
                return true;
            }
            held = self.freed.wait(held).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn release(&self) {
        let mut held = self.held.lock().unwrap_or_else(|p| p.into_inner());
        *held = held.saturating_sub(1);
        drop(held);
        self.freed.notify_all();
    }

    /// Wakes every waiter so it can observe a cancellation flag. Taking
    /// the lock first closes the check-then-wait race: a waiter between
    /// its flag check and its park holds the lock, so the notification
    /// cannot slip past it.
    fn cancel_wake(&self) {
        drop(self.held.lock().unwrap_or_else(|p| p.into_inner()));
        self.freed.notify_all();
    }
}

/// One encoded response frame headed back to a connection.
///
/// `seq` is `Some` for pre-version-3 request kinds, which the server
/// answers strictly in arrival order (the sequence number is the
/// request's arrival index on its connection); `None` for pipelined
/// responses, which are written the moment they complete.
type ResponseFrame = (Option<u64>, Vec<u8>);

/// A completed piece of offloaded work (an executor batch or a compile),
/// routed back to the owning reactor through its inbox.
struct Completion {
    /// The connection's registration token; stale tokens (the connection
    /// died first) are dropped.
    token: u64,
    frames: Vec<ResponseFrame>,
}

/// What other threads hand a reactor: fresh connections from the accept
/// thread, completions from executor workers and compile threads.
#[derive(Default)]
struct Inbox {
    conns: Vec<TcpStream>,
    completions: Vec<Completion>,
}

/// The cross-thread half of one reactor: its inbox and the eventfd that
/// interrupts its epoll wait.
struct ReactorShared {
    waker: Waker,
    inbox: Mutex<Inbox>,
}

impl ReactorShared {
    fn push_completion(&self, completion: Completion) {
        let was_empty = {
            let mut inbox = self.inbox.lock().unwrap_or_else(|p| p.into_inner());
            let was_empty = inbox.conns.is_empty() && inbox.completions.is_empty();
            inbox.completions.push(completion);
            was_empty
        };
        // A non-empty inbox already has an undrained wake pending (the
        // reactor drains its eventfd before it empties the inbox), so
        // only the emptiness edge needs the syscall.
        if was_empty {
            self.waker.wake();
        }
    }
}

/// State shared by the accept thread, the reactors, and the
/// [`ServerHandle`].
struct Shared {
    engine: Arc<Engine>,
    config: ServerConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
    /// Pair used to block [`ServerHandle::wait`] until shutdown.
    shutdown_signal: (Mutex<bool>, Condvar),
    conn_gate: Gate,
    /// Queries admitted into the engine and not yet answered.
    admitted: AtomicUsize,
    reactors: Vec<Arc<ReactorShared>>,
    /// Reactor threads plus any in-flight compile threads.
    threads: Mutex<Vec<JoinHandle<()>>>,
    served: AtomicU64,
    overloaded: AtomicU64,
    connections: AtomicU64,
    /// Connections currently being served (accepted, not yet closed).
    active: AtomicU64,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        let (lock, cv) = &self.shutdown_signal;
        *lock.lock().unwrap_or_else(|p| p.into_inner()) = true;
        cv.notify_all();
        // Wake the accept thread if it is parked waiting for a permit…
        self.conn_gate.cancel_wake();
        // …wake every reactor so it starts draining…
        for r in &self.reactors {
            r.waker.wake();
        }
        // …and unblock an accept() parked in the kernel: a throwaway
        // connection to ourselves makes it return, after which it sees
        // the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }

    /// Admits `n` queries against the bounded submission queue, or reports
    /// the typed overload. Admission is all-or-nothing per frame.
    fn try_admit(&self, n: usize) -> Result<(), WireError> {
        let cap = self.config.queue_capacity;
        let admit = self
            .admitted
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                (cur + n <= cap).then_some(cur + n)
            });
        match admit {
            Ok(_) => Ok(()),
            Err(cur) => {
                self.overloaded.fetch_add(1, Ordering::Relaxed);
                trl_obs::counter!("server.overloaded").inc();
                Err(WireError::Overloaded {
                    queue_depth: cur as u64,
                    capacity: cap as u64,
                })
            }
        }
    }

    fn release_admitted(&self, n: usize) {
        self.admitted.fetch_sub(n, Ordering::AcqRel);
    }

    /// Tracks a spawned thread (reactor or offloaded compile), reaping
    /// finished handles so a long-lived server's list stays bounded.
    fn track_thread(&self, handle: JoinHandle<()>) {
        let mut threads = self.threads.lock().unwrap_or_else(|p| p.into_inner());
        threads.retain(|h| !h.is_finished());
        threads.push(handle);
    }
}

/// A running server. Bind with [`Server::bind`]; the returned
/// [`ServerHandle`] is the only way to address or stop it.
pub struct Server;

/// Handle to a bound, accepting server: its address, a shutdown trigger,
/// and the join points for every thread it spawned.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), spawns
    /// the reactors and the accept thread, and returns the handle. The
    /// engine is shared — several servers (or in-process callers) may
    /// serve one engine.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: Arc<Engine>,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Only a nonzero rate touches the process-global sampling knob:
        // a default-config server must not stomp a rate the embedding
        // process (or another server on the same engine) already set.
        if config.trace_sample > 0.0 {
            trl_obs::set_trace_sampling(config.trace_sample);
        }
        let num_reactors = config.effective_reactors();
        let mut reactors = Vec::with_capacity(num_reactors);
        for _ in 0..num_reactors {
            reactors.push(Arc::new(ReactorShared {
                waker: Waker::new()?,
                inbox: Mutex::new(Inbox::default()),
            }));
        }
        let shared = Arc::new(Shared {
            engine,
            config,
            addr,
            shutdown: AtomicBool::new(false),
            shutdown_signal: (Mutex::new(false), Condvar::new()),
            conn_gate: Gate::new(),
            admitted: AtomicUsize::new(0),
            reactors,
            threads: Mutex::new(Vec::new()),
            served: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            active: AtomicU64::new(0),
        });
        for idx in 0..num_reactors {
            let reactor_shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("trl-server-reactor-{idx}"))
                .spawn(move || reactor_loop(idx, &reactor_shared))?;
            shared.track_thread(handle);
        }
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("trl-server-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(ServerHandle {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Traffic counters so far.
    pub fn counters(&self) -> ServerCounters {
        ServerCounters {
            served: self.shared.served.load(Ordering::Relaxed),
            overloaded: self.shared.overloaded.load(Ordering::Relaxed),
            connections: self.shared.connections.load(Ordering::Relaxed),
        }
    }

    /// Whether shutdown has been triggered (locally or over the wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Triggers graceful shutdown and joins every server thread: stops
    /// accepting, drains in-flight requests, then returns final counters.
    pub fn shutdown(mut self) -> ServerCounters {
        self.shared.begin_shutdown();
        self.join_all()
    }

    /// Blocks until something triggers shutdown (a wire
    /// [`Request::Shutdown`], or [`ServerHandle::shutdown`] from another
    /// thread via a clone — there is none, so in practice the wire), then
    /// joins every server thread.
    pub fn wait(mut self) -> ServerCounters {
        let (lock, cv) = &self.shared.shutdown_signal;
        {
            let mut down = lock.lock().unwrap_or_else(|p| p.into_inner());
            while !*down {
                down = cv.wait(down).unwrap_or_else(|p| p.into_inner());
            }
        }
        self.join_all()
    }

    fn join_all(&mut self) -> ServerCounters {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let threads = std::mem::take(
            &mut *self
                .shared
                .threads
                .lock()
                .unwrap_or_else(|p| p.into_inner()),
        );
        for t in threads {
            let _ = t.join();
        }
        self.counters()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // A dropped handle still stops the server; shutdown()/wait() only
        // add the explicit join-and-report path.
        if self.accept_thread.is_some() {
            self.shared.begin_shutdown();
            self.join_all();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut next_reactor = 0usize;
    loop {
        // Gate wait is the server-side queue delay a connection pays
        // before it can even be accepted — the counterpart of the
        // per-request service time recorded at completion.
        let gate_wait = Instant::now();
        if !shared
            .conn_gate
            .acquire(shared.config.max_connections, &shared.shutdown)
        {
            return; // shutdown while waiting for a permit
        }
        trl_obs::histogram!("server.gate_wait_us").record(gate_wait.elapsed());
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                shared.conn_gate.release();
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            // The wake-up connection from begin_shutdown, or a client that
            // raced shutdown; either way, stop accepting.
            shared.conn_gate.release();
            return;
        }
        shared.connections.fetch_add(1, Ordering::Relaxed);
        shared.active.fetch_add(1, Ordering::Relaxed);
        trl_obs::counter!("server.connections_accepted").inc();
        trl_obs::gauge!("server.connections_active").inc();
        // Shard round-robin: the permit travels with the connection and
        // is released by the owning reactor when it closes.
        let reactor = &shared.reactors[next_reactor % shared.reactors.len()];
        next_reactor = next_reactor.wrapping_add(1);
        let was_empty = {
            let mut inbox = reactor.inbox.lock().unwrap_or_else(|p| p.into_inner());
            let was_empty = inbox.conns.is_empty() && inbox.completions.is_empty();
            inbox.conns.push(stream);
            was_empty
        };
        if was_empty {
            reactor.waker.wake();
        }
    }
}

// ---------------------------------------------------------- reactor side

/// The inbox token reserved for the reactor's own waker eventfd.
const WAKER_TOKEN: u64 = u64::MAX;

/// Write buffer backlog beyond which the flushed prefix is compacted away
/// instead of waiting for the buffer to drain completely.
const OUTBUF_COMPACT: usize = 64 * 1024;

/// Per-connection state machine: partial-frame read buffer, staged write
/// buffer, pipelining bookkeeping.
struct Conn {
    stream: TcpStream,
    /// Registration token: `generation << 32 | slot`.
    token: u64,
    /// Accumulated inbound bytes; `inpos` marks the consumed prefix.
    inbuf: Vec<u8>,
    inpos: usize,
    /// Staged outbound bytes; `outpos` marks the flushed prefix.
    outbuf: Vec<u8>,
    outpos: usize,
    /// Version stamped on the most recent request frame; responses echo
    /// it so a version-2 client never sees a version-3 header.
    version: u16,
    /// Offloaded work items (executor batches, compiles) not yet
    /// delivered back as completions.
    in_flight: usize,
    /// Arrival index handed to the next ordered (pre-v3) request.
    next_seq: u64,
    /// The ordered sequence number allowed to enter `outbuf` next.
    next_enqueue: u64,
    /// Ordered responses that completed before their turn.
    held: BTreeMap<u64, Vec<u8>>,
    /// No more requests will be read (peer EOF, protocol error, or
    /// shutdown drain); the connection closes once quiescent.
    read_closed: bool,
    /// Unrecoverable transport failure; close immediately, discarding
    /// any staged output.
    broken: bool,
    /// When the current partial frame started stalling.
    partial_since: Option<Instant>,
    /// When the current write backlog started stalling.
    blocked_since: Option<Instant>,
    /// When the readiness drain that produced the frame currently being
    /// dispatched began — the closest observable proxy for "the request's
    /// bytes arrived", and the start instant of a traced request's root
    /// span (so the root duration tracks client-observed latency).
    drain_start: Instant,
}

impl Conn {
    /// Stages an ordered response, releasing any held successors that
    /// become eligible.
    fn enqueue_ordered(&mut self, seq: u64, bytes: Vec<u8>) {
        self.held.insert(seq, bytes);
        while let Some(bytes) = self.held.remove(&self.next_enqueue) {
            self.outbuf.extend_from_slice(&bytes);
            self.next_enqueue += 1;
        }
    }

    /// Whether the connection has nothing left to do and can close.
    fn drained(&self) -> bool {
        self.broken
            || (self.read_closed
                && self.in_flight == 0
                && self.held.is_empty()
                && self.outpos == self.outbuf.len())
    }
}

/// One reactor's slab of connections. Tokens carry a generation so a
/// completion for a closed connection can never be misdelivered to the
/// slot's next tenant.
struct Slab {
    slots: Vec<Option<Conn>>,
    generations: Vec<u64>,
    free: Vec<usize>,
    live: usize,
}

impl Slab {
    fn new() -> Self {
        Slab {
            slots: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    fn insert(&mut self, make: impl FnOnce(u64) -> Conn) -> usize {
        let slot = self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.generations.push(0);
            self.slots.len() - 1
        });
        let token = (self.generations[slot] << 32) | slot as u64;
        self.slots[slot] = Some(make(token));
        self.live += 1;
        slot
    }

    /// The connection registered under `token`, if it still exists.
    fn get_mut(&mut self, token: u64) -> Option<&mut Conn> {
        let slot = (token & 0xffff_ffff) as usize;
        self.slots
            .get_mut(slot)
            .and_then(|s| s.as_mut())
            .filter(|c| c.token == token)
    }

    fn remove(&mut self, slot: usize) -> Option<Conn> {
        let conn = self.slots.get_mut(slot)?.take()?;
        self.generations[slot] += 1;
        self.free.push(slot);
        self.live -= 1;
        Some(conn)
    }
}

/// Pipelined frames from one readiness drain, grouped per registry key so
/// the executor sees one submission per (connection, key) instead of one
/// per frame.
struct PipelineGroup {
    artifact: Artifact,
    /// `(request id, that frame's queries)` in arrival order.
    segments: Vec<(u64, Vec<Query>)>,
}

fn reactor_loop(idx: usize, shared: &Arc<Shared>) {
    let rshared = Arc::clone(&shared.reactors[idx]);
    let reactor = match Reactor::new() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trl-server: reactor {idx} failed to create epoll instance: {e}");
            return;
        }
    };
    if let Err(e) = reactor.register_read(rshared.waker.raw_fd(), WAKER_TOKEN) {
        eprintln!("trl-server: reactor {idx} failed to register waker: {e}");
        return;
    }
    let conn_gauge = trl_obs::gauge(&format!("server.reactor.{idx}.connections"));
    let mut slab = Slab::new();
    let mut events: Vec<Event> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut draining = false;

    loop {
        // 1. Take in what other threads handed over.
        let (new_conns, completions) = {
            let mut inbox = rshared.inbox.lock().unwrap_or_else(|p| p.into_inner());
            (
                std::mem::take(&mut inbox.conns),
                std::mem::take(&mut inbox.completions),
            )
        };
        for stream in new_conns {
            conn_gauge.inc();
            register_conn(
                stream,
                &reactor,
                &mut slab,
                shared,
                &rshared,
                conn_gauge,
                &mut scratch,
            );
        }
        for completion in completions {
            let Some(conn) = slab.get_mut(completion.token) else {
                continue; // connection died before its work finished
            };
            conn.in_flight -= 1;
            shared
                .served
                .fetch_add(completion.frames.len() as u64, Ordering::Relaxed);
            for (seq, bytes) in completion.frames {
                match seq {
                    Some(seq) => conn.enqueue_ordered(seq, bytes),
                    None => conn.outbuf.extend_from_slice(&bytes),
                }
            }
            flush(conn);
            let slot = (completion.token & 0xffff_ffff) as usize;
            close_if_drained(&mut slab, slot, &reactor, shared, conn_gauge);
        }

        // 2. Shutdown turns every connection into drain mode: stop
        // reading, finish in-flight work, flush, close. The sweep runs
        // every iteration while draining so connections that raced the
        // flag (or finished their last completion) are reaped.
        if shared.shutdown.load(Ordering::Acquire) {
            draining = true;
        }
        if draining {
            for slot in 0..slab.slots.len() {
                if let Some(conn) = slab.slots[slot].as_mut() {
                    if !conn.read_closed {
                        conn.read_closed = true;
                    }
                    flush(conn);
                }
                close_if_drained(&mut slab, slot, &reactor, shared, conn_gauge);
            }
            if slab.live == 0 {
                return;
            }
        }

        // 3. Park. With no deadlines pending the wait is indefinite —
        // idle connections cost zero wakeups; the waker interrupts for
        // new connections, completions, and shutdown.
        let has_deadlines = slab
            .slots
            .iter()
            .flatten()
            .any(|c| c.partial_since.is_some() || c.blocked_since.is_some());
        let timeout = if has_deadlines || draining {
            Some(Duration::from_millis(100))
        } else {
            None
        };
        let n = match reactor.wait(&mut events, timeout) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("trl-server: reactor {idx} wait failed: {e}");
                break;
            }
        };
        trl_obs::counter!("server.reactor.wakeups").inc();
        trl_obs::histogram!("server.reactor.ready_events").record_us(n as u64);

        // 4. Service readiness.
        for &event in &events {
            if event.token == WAKER_TOKEN {
                rshared.waker.drain();
                continue;
            }
            let Some(conn) = slab.get_mut(event.token) else {
                continue;
            };
            if event.writable {
                flush(conn);
            }
            if event.readable || event.hangup {
                read_drain(conn, shared, &rshared, &mut scratch);
            }
            let slot = (event.token & 0xffff_ffff) as usize;
            close_if_drained(&mut slab, slot, &reactor, shared, conn_gauge);
        }

        // 5. Enforce stall deadlines (only armed connections pay).
        if has_deadlines {
            let now = Instant::now();
            for slot in 0..slab.slots.len() {
                if let Some(conn) = slab.slots[slot].as_mut() {
                    let read_stalled = conn
                        .partial_since
                        .is_some_and(|t| now.duration_since(t) > shared.config.read_timeout);
                    let write_stalled = conn
                        .blocked_since
                        .is_some_and(|t| now.duration_since(t) > shared.config.write_timeout);
                    if read_stalled || write_stalled {
                        conn.broken = true;
                    }
                }
                close_if_drained(&mut slab, slot, &reactor, shared, conn_gauge);
            }
        }
    }

    // Abnormal exit (epoll failure): release what we still hold so the
    // accept gate cannot wedge.
    for slot in 0..slab.slots.len() {
        if slab.slots[slot].is_some() {
            if let Some(conn) = slab.remove(slot) {
                let _ = reactor.deregister(conn.stream.as_raw_fd());
                release_conn(shared, conn_gauge);
            }
        }
    }
}

/// Registers a fresh connection with the reactor and performs its initial
/// read/flush (readiness present before registration would otherwise
/// never deliver an edge).
fn register_conn(
    stream: TcpStream,
    reactor: &Reactor,
    slab: &mut Slab,
    shared: &Arc<Shared>,
    rshared: &Arc<ReactorShared>,
    conn_gauge: &'static trl_obs::Gauge,
    scratch: &mut [u8],
) {
    if stream.set_nonblocking(true).is_err() {
        release_conn(shared, conn_gauge);
        return;
    }
    let _ = stream.set_nodelay(true);
    let fd = stream.as_raw_fd();
    let slot = slab.insert(|token| Conn {
        stream,
        token,
        inbuf: Vec::new(),
        inpos: 0,
        outbuf: Vec::new(),
        outpos: 0,
        version: PROTOCOL_VERSION,
        in_flight: 0,
        next_seq: 0,
        next_enqueue: 0,
        held: BTreeMap::new(),
        read_closed: false,
        broken: false,
        partial_since: None,
        blocked_since: None,
        drain_start: Instant::now(),
    });
    let token = slab.slots[slot].as_ref().map(|c| c.token).unwrap_or(0);
    if reactor.register_edge(fd, token).is_err() {
        slab.remove(slot);
        release_conn(shared, conn_gauge);
        return;
    }
    let conn = slab.slots[slot].as_mut().expect("just inserted");
    if shared.shutdown.load(Ordering::Acquire) {
        conn.read_closed = true;
    } else {
        read_drain(conn, shared, rshared, scratch);
        flush(conn);
    }
}

/// Undoes the accept-side accounting for one connection.
fn release_conn(shared: &Arc<Shared>, conn_gauge: &'static trl_obs::Gauge) {
    conn_gauge.dec();
    shared.active.fetch_sub(1, Ordering::Relaxed);
    trl_obs::gauge!("server.connections_active").dec();
    shared.conn_gate.release();
}

/// Closes the connection in `slot` if it has fully drained.
fn close_if_drained(
    slab: &mut Slab,
    slot: usize,
    reactor: &Reactor,
    shared: &Arc<Shared>,
    conn_gauge: &'static trl_obs::Gauge,
) {
    let done = matches!(
        slab.slots.get(slot),
        Some(Some(conn)) if conn.drained()
    );
    if done {
        if let Some(conn) = slab.remove(slot) {
            let _ = reactor.deregister(conn.stream.as_raw_fd());
            release_conn(shared, conn_gauge);
            // The stream drops (and closes) here; pending completions for
            // this token are dropped by the generation check.
        }
    }
}

/// Drains the socket into the connection's read buffer (edge-triggered
/// discipline: read until `WouldBlock`), then processes every complete
/// frame that arrived.
fn read_drain(
    conn: &mut Conn,
    shared: &Arc<Shared>,
    rshared: &Arc<ReactorShared>,
    scratch: &mut [u8],
) {
    if conn.read_closed || conn.broken {
        return;
    }
    conn.drain_start = Instant::now();
    let mut total = 0u64;
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                total += n as u64;
                conn.inbuf.extend_from_slice(&scratch[..n]);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.broken = true;
                return;
            }
        }
    }
    if total > 0 {
        trl_obs::counter!("server.bytes_read").add(total);
    }
    process_frames(conn, shared, rshared);
}

/// Peels complete frames off the read buffer, dispatches each, and
/// submits the drain's coalesced pipelined groups to the executor.
fn process_frames(conn: &mut Conn, shared: &Arc<Shared>, rshared: &Arc<ReactorShared>) {
    let mut groups: Vec<(u64, PipelineGroup)> = Vec::new();
    while !conn.read_closed && !conn.broken {
        match scan_frame(&conn.inbuf[conn.inpos..], shared.config.max_frame_len) {
            Ok(FrameScan::Incomplete { .. }) => break,
            Ok(FrameScan::Frame {
                version,
                kind,
                payload,
                consumed,
            }) => {
                conn.inpos += consumed;
                conn.version = version;
                match Request::decode(kind, &payload) {
                    Ok(request) => dispatch(conn, request, &mut groups, shared, rshared),
                    Err(e) => protocol_reject(conn, &e.to_string()),
                }
            }
            Err(e) => {
                protocol_reject(conn, &e.to_string());
                break;
            }
        }
    }
    // Compact the consumed prefix away.
    if conn.inpos == conn.inbuf.len() {
        conn.inbuf.clear();
        conn.inpos = 0;
    } else if conn.inpos > 0 {
        conn.inbuf.drain(..conn.inpos);
        conn.inpos = 0;
    }
    // A leftover partial frame arms the read deadline; an empty buffer
    // (or a closed read side) disarms it.
    conn.partial_since = if conn.inbuf.is_empty() || conn.read_closed {
        None
    } else if conn.partial_since.is_some() {
        conn.partial_since
    } else {
        Some(Instant::now())
    };
    for (_key, group) in groups {
        submit_pipeline_group(conn, group, shared, rshared);
    }
    flush(conn);
}

/// Typed rejection, then drain-and-close: framing cannot resync.
fn protocol_reject(conn: &mut Conn, message: &str) {
    let seq = conn.next_seq;
    conn.next_seq += 1;
    let resp = Response::Error(WireError::Invalid(message.to_string()));
    conn.enqueue_ordered(seq, encode_response(&resp, conn.version));
    conn.read_closed = true;
}

/// Encodes a response stamped with the connection's negotiated version.
fn encode_response(resp: &Response, version: u16) -> Vec<u8> {
    let mut bytes = Vec::new();
    // Writing into a Vec cannot fail.
    let _ = write_response_versioned(&mut bytes, resp, version);
    bytes
}

/// Handles one decoded request. Inline kinds (ping, stats, shutdown,
/// rejections) answer immediately; compiles offload to a thread; queries
/// go to the executor — pre-v3 kinds individually and in order, pipelined
/// batches out-of-order and coalesced per key via `groups`.
fn dispatch(
    conn: &mut Conn,
    request: Request,
    groups: &mut Vec<(u64, PipelineGroup)>,
    shared: &Arc<Shared>,
    rshared: &Arc<ReactorShared>,
) {
    trl_obs::counter!("server.requests").inc();
    match request {
        Request::Ping => {
            trl_obs::counter!("server.requests.ping").inc();
            respond_inline(conn, shared, &Response::Pong);
        }
        Request::Stats => {
            trl_obs::counter!("server.requests.stats").inc();
            let started = Instant::now();
            // The engine fills everything it can see; the connection
            // counters are the server's to overlay.
            let mut snapshot = shared.engine.stats();
            snapshot.connections_accepted = shared.connections.load(Ordering::Relaxed);
            snapshot.connections_active = shared.active.load(Ordering::Relaxed);
            let resp = Response::Stats(snapshot);
            trl_obs::histogram!("server.service_us").record(started.elapsed());
            respond_inline(conn, shared, &resp);
        }
        Request::Shutdown => {
            trl_obs::counter!("server.requests.shutdown").inc();
            respond_inline(conn, shared, &Response::ShuttingDown);
            conn.read_closed = true;
            shared.begin_shutdown();
        }
        Request::Compile(cnf) => {
            trl_obs::counter!("server.requests.compile").inc();
            let seq = conn.next_seq;
            conn.next_seq += 1;
            match shared.try_admit(1) {
                Err(e) => {
                    let bytes = encode_response(&Response::Error(e), conn.version);
                    enqueue_seq(conn, shared, seq, bytes);
                }
                Ok(()) => {
                    conn.in_flight += 1;
                    spawn_compile(conn.token, seq, conn.version, cnf, shared, rshared);
                }
            }
        }
        Request::Query { key, query } => {
            trl_obs::counter!("server.requests.query").inc();
            submit_ordered(conn, key, vec![query], true, shared, rshared);
        }
        Request::Batch { key, queries } => {
            trl_obs::counter!("server.requests.batch").inc();
            submit_ordered(conn, key, queries, false, shared, rshared);
        }
        Request::PipelinedBatch { id, key, queries } => {
            trl_obs::counter!("server.requests.pipeline").inc();
            trl_obs::histogram!("server.pipeline.batch_size").record_us(queries.len() as u64);
            stage_pipelined(conn, id, key, queries, groups, shared);
        }
        Request::LearnPsdd { cnf, alpha, data } => {
            trl_obs::counter!("server.requests.learn").inc();
            let seq = conn.next_seq;
            conn.next_seq += 1;
            match shared.try_admit(1) {
                Err(e) => {
                    let bytes = encode_response(&Response::Error(e), conn.version);
                    enqueue_seq(conn, shared, seq, bytes);
                }
                Ok(()) => {
                    conn.in_flight += 1;
                    spawn_learn(
                        conn.token,
                        seq,
                        conn.version,
                        cnf,
                        alpha,
                        data,
                        shared,
                        rshared,
                    );
                }
            }
        }
        Request::CompileSpace {
            num_nodes,
            edges,
            s,
            t,
        } => {
            trl_obs::counter!("server.requests.space").inc();
            let seq = conn.next_seq;
            conn.next_seq += 1;
            match shared.try_admit(1) {
                Err(e) => {
                    let bytes = encode_response(&Response::Error(e), conn.version);
                    enqueue_seq(conn, shared, seq, bytes);
                }
                Ok(()) => {
                    conn.in_flight += 1;
                    spawn_space(
                        conn.token,
                        seq,
                        conn.version,
                        num_nodes,
                        edges,
                        s,
                        t,
                        shared,
                        rshared,
                    );
                }
            }
        }
        Request::CompileClassifier(cnf) => {
            trl_obs::counter!("server.requests.classifier").inc();
            let seq = conn.next_seq;
            conn.next_seq += 1;
            match shared.try_admit(1) {
                Err(e) => {
                    let bytes = encode_response(&Response::Error(e), conn.version);
                    enqueue_seq(conn, shared, seq, bytes);
                }
                Ok(()) => {
                    conn.in_flight += 1;
                    spawn_classifier(conn.token, seq, conn.version, cnf, shared, rshared);
                }
            }
        }
        Request::Trace { ctx, key, query } => {
            trl_obs::counter!("server.requests.trace").inc();
            submit_traced(conn, ctx, key, query, shared, rshared);
        }
        Request::Optimize { key } => {
            trl_obs::counter!("server.requests.optimize").inc();
            let seq = conn.next_seq;
            conn.next_seq += 1;
            // Reject an unknown key on the reactor thread: no admission
            // slot or build thread for a request that cannot do work.
            if shared.engine.get(key).is_none() {
                let bytes =
                    encode_response(&Response::Error(WireError::UnknownKey(key)), conn.version);
                enqueue_seq(conn, shared, seq, bytes);
                return;
            }
            match shared.try_admit(1) {
                Err(e) => {
                    let bytes = encode_response(&Response::Error(e), conn.version);
                    enqueue_seq(conn, shared, seq, bytes);
                }
                Ok(()) => {
                    conn.in_flight += 1;
                    spawn_optimize(conn.token, seq, conn.version, key, shared, rshared);
                }
            }
        }
    }
}

/// Stages an inline (order-preserving) response produced on the reactor
/// thread itself.
fn respond_inline(conn: &mut Conn, shared: &Arc<Shared>, resp: &Response) {
    let seq = conn.next_seq;
    conn.next_seq += 1;
    let bytes = encode_response(resp, conn.version);
    enqueue_seq(conn, shared, seq, bytes);
}

fn enqueue_seq(conn: &mut Conn, shared: &Arc<Shared>, seq: u64, bytes: Vec<u8>) {
    shared.served.fetch_add(1, Ordering::Relaxed);
    conn.enqueue_ordered(seq, bytes);
}

/// Stages an out-of-order pipelined response.
fn enqueue_pipelined(
    conn: &mut Conn,
    shared: &Arc<Shared>,
    id: u64,
    result: Result<Vec<trl_engine::QueryAnswer>, WireError>,
) {
    shared.served.fetch_add(1, Ordering::Relaxed);
    let resp = Response::PipelinedBatch { id, result };
    let bytes = encode_response(&resp, conn.version);
    conn.outbuf.extend_from_slice(&bytes);
}

/// Validates, admits, and stages one pipelined frame into this drain's
/// coalesced groups; failures answer immediately without touching the
/// rest of the drain.
fn stage_pipelined(
    conn: &mut Conn,
    id: u64,
    key: u64,
    queries: Vec<Query>,
    groups: &mut Vec<(u64, PipelineGroup)>,
    shared: &Arc<Shared>,
) {
    if queries.is_empty() {
        enqueue_pipelined(conn, shared, id, Ok(Vec::new()));
        return;
    }
    if let Err(e) = shared.try_admit(queries.len()) {
        enqueue_pipelined(conn, shared, id, Err(e));
        return;
    }
    let artifact = match groups.iter().find(|(k, _)| *k == key) {
        Some((_, g)) => g.artifact.clone(),
        None => match shared.engine.get(key) {
            Some(a) => a,
            None => {
                shared.release_admitted(queries.len());
                enqueue_pipelined(conn, shared, id, Err(WireError::UnknownKey(key)));
                return;
            }
        },
    };
    // Per-frame validation up front (kind match and universe cover), so
    // one malformed frame cannot poison the coalesced submission its
    // neighbors ride in.
    if let Err(e) = queries.iter().try_for_each(|q| artifact.validate(q)) {
        shared.release_admitted(queries.len());
        enqueue_pipelined(conn, shared, id, Err(engine_error_to_wire(e)));
        return;
    }
    match groups.iter_mut().find(|(k, _)| *k == key) {
        Some((_, g)) => g.segments.push((id, queries)),
        None => groups.push((
            key,
            PipelineGroup {
                artifact,
                segments: vec![(id, queries)],
            },
        )),
    }
}

fn engine_error_to_wire(e: EngineError) -> WireError {
    match e {
        EngineError::Structure(m) => WireError::Invalid(m),
        other => WireError::Engine(other.to_string()),
    }
}

/// Submits one coalesced pipelined group: every staged frame's queries as
/// a single executor batch, split back per frame on completion.
fn submit_pipeline_group(
    conn: &mut Conn,
    group: PipelineGroup,
    shared: &Arc<Shared>,
    rshared: &Arc<ReactorShared>,
) {
    let token = conn.token;
    let version = conn.version;
    let lens: Vec<(u64, usize)> = group
        .segments
        .iter()
        .map(|(id, q)| (*id, q.len()))
        .collect();
    let ids: Vec<u64> = lens.iter().map(|(id, _)| *id).collect();
    let total: usize = lens.iter().map(|(_, n)| n).sum();
    let queries: Vec<Query> = group.segments.into_iter().flat_map(|(_, q)| q).collect();
    let cb_shared = Arc::clone(shared);
    let cb_rshared = Arc::clone(rshared);
    let submitted = Instant::now();
    let slow_query = shared.config.slow_query;
    let drain_start = conn.drain_start;
    let ctx = trl_obs::maybe_sample();
    if let Some(ctx) = ctx {
        trl_obs::record_span_under(ctx, "reactor.drain", drain_start, drain_start.elapsed());
    }
    let result = shared.engine.submit_artifact_batch_traced(
        &group.artifact,
        queries,
        ctx,
        move |outcomes| {
            cb_shared.release_admitted(total);
            let handle_time = submitted.elapsed();
            trl_obs::record_span("server.handle", handle_time);
            let mut frames = Vec::with_capacity(lens.len());
            let mut outcomes = outcomes.into_iter();
            for &(id, len) in &lens {
                let answers: Vec<_> = outcomes.by_ref().take(len).map(|o| o.answer).collect();
                trl_obs::histogram!("server.service_us").record(handle_time);
                trl_obs::histogram!("server.request_us").record(handle_time);
                let resp = Response::PipelinedBatch {
                    id,
                    result: Ok(answers),
                };
                frames.push((None, encode_response(&resp, version)));
            }
            if let Some(ctx) = ctx {
                trl_obs::record_root_span(
                    ctx,
                    0,
                    "server.request",
                    drain_start,
                    drain_start.elapsed(),
                );
            }
            if let Some(threshold) = slow_query {
                if handle_time > threshold {
                    let spans = ctx.map_or_else(Vec::new, |c| trl_obs::collect_trace(c.trace_id));
                    log_slow_query("pipeline", handle_time, &spans);
                }
            }
            cb_rshared.push_completion(Completion { token, frames });
        },
    );
    match result {
        Ok(()) => conn.in_flight += 1,
        Err(e) => {
            // Should be unreachable (frames were pre-validated), but a
            // defensive rejection keeps every staged frame answered.
            shared.release_admitted(total);
            let wire = engine_error_to_wire(e);
            for id in ids {
                enqueue_pipelined(conn, shared, id, Err(wire.clone()));
            }
        }
    }
}

/// Submits a pre-v3 `Query`/`Batch` request: one executor submission, one
/// ordered response.
fn submit_ordered(
    conn: &mut Conn,
    key: u64,
    queries: Vec<Query>,
    single: bool,
    shared: &Arc<Shared>,
    rshared: &Arc<ReactorShared>,
) {
    let seq = conn.next_seq;
    conn.next_seq += 1;
    let n = queries.len();
    let reject = |conn: &mut Conn, e: WireError| {
        let bytes = encode_response(&Response::Error(e), conn.version);
        enqueue_seq(conn, shared, seq, bytes);
    };
    if n > 0 {
        if let Err(e) = shared.try_admit(n) {
            reject(conn, e);
            return;
        }
    }
    let artifact = match shared.engine.get(key) {
        Some(a) => a,
        None => {
            if n > 0 {
                shared.release_admitted(n);
            }
            reject(conn, WireError::UnknownKey(key));
            return;
        }
    };
    let token = conn.token;
    let version = conn.version;
    let cb_shared = Arc::clone(shared);
    let cb_rshared = Arc::clone(rshared);
    let submitted = Instant::now();
    let slow_query = shared.config.slow_query;
    let drain_start = conn.drain_start;
    let ctx = trl_obs::maybe_sample();
    if let Some(ctx) = ctx {
        trl_obs::record_span_under(ctx, "reactor.drain", drain_start, drain_start.elapsed());
    }
    let result = shared.engine.submit_artifact_batch_traced(
        &artifact,
        queries,
        ctx,
        move |outcomes: Vec<QueryOutcome>| {
            if n > 0 {
                cb_shared.release_admitted(n);
            }
            let handle_time = submitted.elapsed();
            trl_obs::record_span("server.handle", handle_time);
            trl_obs::histogram!("server.service_us").record(handle_time);
            trl_obs::histogram!("server.request_us").record(handle_time);
            let mut answers = outcomes.into_iter().map(|o| o.answer);
            let resp = if single {
                match answers.next() {
                    Some(a) => Response::Answer(a),
                    // A single query always yields one outcome; guard
                    // anyway rather than panic on a worker thread.
                    None => Response::Error(WireError::Engine("empty batch result".into())),
                }
            } else {
                Response::Batch(answers.collect())
            };
            let bytes = match ctx {
                Some(ctx) => {
                    let wstart = Instant::now();
                    let bytes = encode_response(&resp, version);
                    trl_obs::record_span_under(ctx, "server.write", wstart, wstart.elapsed());
                    trl_obs::record_root_span(
                        ctx,
                        0,
                        "server.request",
                        drain_start,
                        drain_start.elapsed(),
                    );
                    bytes
                }
                None => encode_response(&resp, version),
            };
            if let Some(threshold) = slow_query {
                if handle_time > threshold {
                    let spans = ctx.map_or_else(Vec::new, |c| trl_obs::collect_trace(c.trace_id));
                    log_slow_query(if single { "query" } else { "batch" }, handle_time, &spans);
                }
            }
            cb_rshared.push_completion(Completion {
                token,
                frames: vec![(Some(seq), bytes)],
            });
        },
    );
    match result {
        Ok(()) => conn.in_flight += 1,
        Err(e) => {
            if n > 0 {
                shared.release_admitted(n);
            }
            reject(conn, engine_error_to_wire(e));
        }
    }
}

/// Submits a [`Request::Trace`] query: a force-sampled single query whose
/// answer comes back with the server-side span tree attached. The answer
/// travels the exact same executor path as [`Request::Query`], so it is
/// byte-identical to the untraced one; only the response framing differs.
fn submit_traced(
    conn: &mut Conn,
    client_ctx: TraceContext,
    key: u64,
    query: Query,
    shared: &Arc<Shared>,
    rshared: &Arc<ReactorShared>,
) {
    let seq = conn.next_seq;
    conn.next_seq += 1;
    let reject = |conn: &mut Conn, e: WireError| {
        let bytes = encode_response(&Response::Error(e), conn.version);
        enqueue_seq(conn, shared, seq, bytes);
    };
    if let Err(e) = shared.try_admit(1) {
        reject(conn, e);
        return;
    }
    let artifact = match shared.engine.get(key) {
        Some(a) => a,
        None => {
            shared.release_admitted(1);
            reject(conn, WireError::UnknownKey(key));
            return;
        }
    };
    // Recording stays forced for this request's whole lifetime regardless
    // of the sampling rate: the guard rides in the completion closure and
    // drops after collection.
    let forced = trl_obs::force_tracing();
    // Adopt the client's trace id with a fresh root span for the server's
    // subtree; the client's span id becomes that root's parent, so the
    // client can splice the subtree under its own request span.
    let ctx = TraceContext::adopt(client_ctx.trace_id);
    let drain_start = conn.drain_start;
    trl_obs::record_span_under(ctx, "reactor.drain", drain_start, drain_start.elapsed());
    let token = conn.token;
    let version = conn.version;
    let cb_shared = Arc::clone(shared);
    let cb_rshared = Arc::clone(rshared);
    let submitted = Instant::now();
    let slow_query = shared.config.slow_query;
    let result = shared.engine.submit_artifact_batch_traced(
        &artifact,
        vec![query],
        Some(ctx),
        move |outcomes: Vec<QueryOutcome>| {
            cb_shared.release_admitted(1);
            let handle_time = submitted.elapsed();
            trl_obs::record_span("server.handle", handle_time);
            trl_obs::histogram!("server.service_us").record(handle_time);
            trl_obs::histogram!("server.request_us").record(handle_time);
            let resp = match outcomes.into_iter().map(|o| o.answer).next() {
                Some(answer) => {
                    // The traced response cannot contain the cost of its
                    // own final encode, so probe-encode the plain answer
                    // frame — what an untraced request would write — and
                    // record that as the tree's response-write span.
                    let wstart = Instant::now();
                    let probe = encode_response(&Response::Answer(answer.clone()), version);
                    trl_obs::record_span_under(ctx, "server.write", wstart, wstart.elapsed());
                    drop(probe);
                    trl_obs::record_root_span(
                        ctx,
                        client_ctx.span_id,
                        "server.request",
                        drain_start,
                        drain_start.elapsed(),
                    );
                    let spans = trl_obs::collect_trace(ctx.trace_id);
                    if let Some(threshold) = slow_query {
                        if handle_time > threshold {
                            log_slow_query("trace", handle_time, &spans);
                        }
                    }
                    Response::Traced { answer, spans }
                }
                None => Response::Error(WireError::Engine("empty batch result".into())),
            };
            drop(forced);
            cb_rshared.push_completion(Completion {
                token,
                frames: vec![(Some(seq), encode_response(&resp, version))],
            });
        },
    );
    match result {
        Ok(()) => conn.in_flight += 1,
        Err(e) => {
            shared.release_admitted(1);
            reject(conn, engine_error_to_wire(e));
        }
    }
}

/// Offloads an artifact build (compile, learn, space) to its own thread:
/// construction can take arbitrarily long and must not stall the
/// reactor's event loop. `build` runs on the spawned thread and returns
/// the ordered response for `seq`.
fn spawn_build<F>(
    token: u64,
    seq: u64,
    version: u16,
    kind: &'static str,
    shared: &Arc<Shared>,
    rshared: &Arc<ReactorShared>,
    build: F,
) where
    F: FnOnce(&Engine) -> Response + Send + 'static,
{
    let cb_shared = Arc::clone(shared);
    let cb_rshared = Arc::clone(rshared);
    let slow_query = shared.config.slow_query;
    let ctx = trl_obs::maybe_sample();
    let spawned = std::thread::Builder::new()
        .name(format!("trl-server-{kind}"))
        .spawn(move || {
            let started = Instant::now();
            // Installing the sampled context means registry hit/compile
            // and minimize-pass spans inside `build` land in the tree.
            let resp = trl_obs::with_current_trace(ctx, || build(&cb_shared.engine));
            cb_shared.release_admitted(1);
            let handle_time = started.elapsed();
            trl_obs::record_span("server.handle", handle_time);
            trl_obs::histogram!("server.service_us").record(handle_time);
            trl_obs::histogram!("server.request_us").record(handle_time);
            if let Some(ctx) = ctx {
                trl_obs::record_root_span(ctx, 0, "server.request", started, handle_time);
            }
            if let Some(threshold) = slow_query {
                if handle_time > threshold {
                    let spans = ctx.map_or_else(Vec::new, |c| trl_obs::collect_trace(c.trace_id));
                    log_slow_query(kind, handle_time, &spans);
                }
            }
            cb_rshared.push_completion(Completion {
                token,
                frames: vec![(Some(seq), encode_response(&resp, version))],
            });
        });
    match spawned {
        Ok(handle) => shared.track_thread(handle),
        Err(_) => {
            // Could not spawn a thread (resource exhaustion): the request
            // still gets an answer, just a typed failure.
            shared.release_admitted(1);
            let resp = Response::Error(WireError::Engine(format!(
                "server could not spawn a {kind} thread"
            )));
            rshared.push_completion(Completion {
                token,
                frames: vec![(Some(seq), encode_response(&resp, version))],
            });
        }
    }
}

/// Offloads a circuit compile to its own thread.
fn spawn_compile(
    token: u64,
    seq: u64,
    version: u16,
    cnf: trl_prop::Cnf,
    shared: &Arc<Shared>,
    rshared: &Arc<ReactorShared>,
) {
    spawn_build(token, seq, version, "compile", shared, rshared, move |e| {
        let (key, circuit) = e.compile(&cnf);
        Response::Compiled {
            key,
            num_vars: circuit.num_vars() as u32,
            nodes: circuit.raw().node_count() as u32,
            edges: circuit.raw().edge_count() as u32,
        }
    });
}

/// Offloads a PSDD learning job to its own thread. Progress is
/// wire-visible through the stats frame: the engine bumps
/// `engine.learn.jobs` / `engine.learn.examples` counters and the
/// `engine.learn.train_us` histogram as the job runs.
#[allow(clippy::too_many_arguments)]
fn spawn_learn(
    token: u64,
    seq: u64,
    version: u16,
    cnf: trl_prop::Cnf,
    alpha: f64,
    data: Vec<(trl_core::Assignment, f64)>,
    shared: &Arc<Shared>,
    rshared: &Arc<ReactorShared>,
) {
    spawn_build(
        token,
        seq,
        version,
        "learn",
        shared,
        rshared,
        move |e| match e.learn_psdd(&cnf, &data, alpha) {
            Ok((key, psdd)) => Response::Learned {
                key,
                num_vars: psdd.num_vars() as u32,
                nodes: psdd.node_count() as u32,
                log_likelihood: psdd.train_log_likelihood(),
            },
            Err(err) => Response::Error(engine_error_to_wire(err)),
        },
    );
}

/// Offloads a structured-space compile to its own thread.
#[allow(clippy::too_many_arguments)]
fn spawn_space(
    token: u64,
    seq: u64,
    version: u16,
    num_nodes: u32,
    edges: Vec<(u32, u32)>,
    s: u32,
    t: u32,
    shared: &Arc<Shared>,
    rshared: &Arc<ReactorShared>,
) {
    spawn_build(
        token,
        seq,
        version,
        "space",
        shared,
        rshared,
        move |e| match e.compile_space(num_nodes as usize, &edges, s, t) {
            Ok((key, space)) => Response::SpaceCompiled {
                key,
                num_edge_vars: space.num_edge_vars() as u32,
                nodes: space.node_count() as u32,
                paths: space.path_count(),
            },
            Err(err) => Response::Error(engine_error_to_wire(err)),
        },
    );
}

/// Offloads a classifier compile to its own thread.
fn spawn_classifier(
    token: u64,
    seq: u64,
    version: u16,
    cnf: trl_prop::Cnf,
    shared: &Arc<Shared>,
    rshared: &Arc<ReactorShared>,
) {
    spawn_build(
        token,
        seq,
        version,
        "classifier",
        shared,
        rshared,
        move |e| {
            let (key, clf) = e.compile_classifier(&cnf);
            Response::ClassifierCompiled {
                key,
                num_vars: clf.num_vars() as u32,
                nodes: clf.node_count() as u32,
            }
        },
    );
}

/// Offloads a registry minimization pass to its own thread: sifting and
/// vtree search can take the schedule's whole time budget, and in-flight
/// queries keep serving from the original circuit throughout.
fn spawn_optimize(
    token: u64,
    seq: u64,
    version: u16,
    key: u64,
    shared: &Arc<Shared>,
    rshared: &Arc<ReactorShared>,
) {
    spawn_build(
        token,
        seq,
        version,
        "optimize",
        shared,
        rshared,
        move |e| match e.optimize(key) {
            Ok(r) => Response::Optimized {
                key: r.key,
                nodes_before: r.nodes_before as u32,
                nodes_after: r.nodes_after as u32,
                swapped: r.swapped,
                wall_us: r.wall_us,
            },
            Err(err) => Response::Error(engine_error_to_wire(err)),
        },
    );
}

/// One JSON line on stderr describing a request that blew the
/// [`ServerConfig::slow_query`] threshold. A sampled request logs its
/// full collected span tree under `"spans"`; an unsampled one logs a
/// synthesized root-only tree so the line's shape is uniform either way.
fn log_slow_query(kind: &'static str, total: Duration, spans: &[TraceSpanData]) {
    let spans_json = if spans.is_empty() {
        trl_obs::tree_json(&[TraceSpanData {
            span_id: 0,
            parent_id: 0,
            name: "server.request".into(),
            start_us: 0,
            dur_us: total.as_micros() as u64,
        }])
    } else {
        trl_obs::tree_json(spans)
    };
    // A failed stderr write has no recovery path worth taking.
    let _ = writeln!(
        io::stderr().lock(),
        "{{\"slow_query\":\"{kind}\",\"total_us\":{},\"spans\":{spans_json}}}",
        total.as_micros(),
    );
}

/// Writes staged response bytes until the socket stops accepting them
/// (edge-triggered discipline).
fn flush(conn: &mut Conn) {
    if conn.broken {
        return;
    }
    let mut total = 0u64;
    while conn.outpos < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[conn.outpos..]) {
            Ok(0) => {
                conn.broken = true;
                break;
            }
            Ok(n) => {
                conn.outpos += n;
                total += n as u64;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.broken = true;
                break;
            }
        }
    }
    if total > 0 {
        trl_obs::counter!("server.bytes_written").add(total);
    }
    if conn.outpos == conn.outbuf.len() {
        conn.outbuf.clear();
        conn.outpos = 0;
        conn.blocked_since = None;
    } else {
        if conn.outpos > OUTBUF_COMPACT {
            conn.outbuf.drain(..conn.outpos);
            conn.outpos = 0;
        }
        if conn.blocked_since.is_none() {
            conn.blocked_since = Some(Instant::now());
        }
    }
}
